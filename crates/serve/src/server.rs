//! The multi-tenant suggest/report server.
//!
//! A bounded pool of acceptor threads (mirroring `gptune-runtime`'s fixed
//! worker groups) shares one `TcpListener`; each thread accepts a
//! connection and serves it inline, so at most `workers` connections are
//! live at once and the rest queue in the kernel backlog. Every
//! tenant/problem pair maps to one [`TunerSession`] in a shared session
//! table; connections are stateless beyond the frames they carry, so a
//! client can disconnect and re-attach to its session at will.
//!
//! # Durability
//!
//! With [`ServeOptions::archive`] set, sessions are durable server-side:
//! every report is appended to the session's sharded `gptune-db` journal
//! *before* it is acknowledged, and the session meta (spec, options,
//! suggest/refit counters) is written at lifecycle points (open, evict,
//! drain). Idle sessions are evicted once the table exceeds
//! [`ServeOptions::max_resident_sessions`] and restored transparently on
//! the next request that names them — so the table stops being
//! memory-bound and a restarted server recovers every session without
//! client WAL replay.
//!
//! # Overload control
//!
//! Each connection gets read/write deadlines ([`ServeOptions::io_timeout`])
//! so a stalled peer cannot pin an acceptor forever. Each tenant gets an
//! in-flight request cap; beyond it the server sheds load with a typed
//! `overloaded` error carrying a `retry_after_ms` hint instead of queueing
//! unboundedly. A `health` request reports readiness and session-table
//! pressure; a `drain` request (or [`ServerHandle::drain`]) flushes every
//! session to the archive and answers further work with a typed
//! `draining` error that clients treat as reconnect-with-backoff.
//!
//! # Lock discipline (GX302)
//!
//! The session table mutex guards *only* table lookups: handlers lock the
//! table, clone the session's `Arc`, and drop the guard before doing any
//! work — never blocking I/O or a surrogate refit while the table is
//! locked. LRU bookkeeping reads per-slot atomics under the table lock;
//! eviction flushes the victim *after* it has left the table. Per-session
//! mutexes serialize work within one session while leaving other tenants
//! untouched.

use crate::protocol::{
    err_response, err_with_code, error_code, ok_response, read_json, write_json, Request,
    SessionOptions, CODE_DRAINING, CODE_OVERLOADED,
};
use crate::spec::{config_to_json, ProblemSpec};
use crate::store::SessionStore;
use gptune_core::{MlaOptions, RefitSchedule, ReportError, SessionSnapshot, TunerSession};
use gptune_db::json::Json;
use std::collections::BTreeMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Acceptor-pool size — the concurrent-connection bound.
    pub workers: usize,
    /// Maximum live sessions across all tenants. Without an archive this
    /// is a hard cap (opens beyond it are shed); with one it only bounds
    /// the table between eviction sweeps.
    pub max_sessions: usize,
    /// Initial-design size per task when the client doesn't pick one.
    pub default_n_initial: usize,
    /// Archive directory for durable sessions. `None` (the default) keeps
    /// sessions memory-only, as before.
    pub archive: Option<PathBuf>,
    /// Resident-session target when an archive is configured: beyond this
    /// many in-memory sessions, the least-recently-used are flushed to the
    /// archive and dropped from the table.
    pub max_resident_sessions: usize,
    /// Per-connection read/write deadline. A peer that stays silent (or
    /// unwritable) this long has its connection closed. `None` disables
    /// deadlines (tests only — production sockets must be bounded).
    pub io_timeout: Option<Duration>,
    /// In-flight request cap per tenant; requests beyond it are shed with
    /// a typed `overloaded` error.
    pub max_inflight_per_tenant: usize,
    /// Retry hint attached to `overloaded` / `draining` errors.
    pub retry_after_ms: u64,
    /// Per-request latency budget for SLO accounting: requests handled
    /// slower than this increment the tenant's `over_budget` counter
    /// (surfaced by the `metrics` scrape). Purely observational — nothing
    /// is rejected for running over.
    pub latency_budget: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 8,
            max_sessions: 4096,
            default_n_initial: 4,
            archive: None,
            max_resident_sessions: 256,
            io_timeout: Some(Duration::from_secs(30)),
            max_inflight_per_tenant: 32,
            retry_after_ms: 100,
            latency_budget: Duration::from_millis(250),
        }
    }
}

/// Maps the client-visible [`SessionOptions`] onto serving-appropriate
/// tuner options: single-start LCM fits, a small acquisition search, and
/// an incremental refit schedule (hyperparameters re-optimized every 8th
/// refit or on NLL drift; rank-1 factor extension in between), so a
/// suggest call stays interactive even as histories grow.
pub fn serving_mla_options(opts: &SessionOptions, defaults: &ServeOptions) -> MlaOptions {
    let mut mla = MlaOptions::default().with_seed(opts.seed);
    mla.n_initial = Some(opts.n_initial.unwrap_or(defaults.default_n_initial).max(1));
    mla.lcm.n_starts = 1;
    mla.refit = RefitSchedule {
        full_every: 8,
        nll_drift: 0.25,
    };
    mla.pso.particles = 12;
    mla.pso.iters = 15;
    mla.eval_workers = 1;
    mla.model_workers = 1;
    mla.search_workers = 1;
    mla
}

/// Arms the per-connection read/write deadlines (GX303: every serve-side
/// socket is bounded).
fn arm_deadlines(stream: &TcpStream, opts: &ServeOptions) {
    let _ = stream.set_read_timeout(opts.io_timeout);
    let _ = stream.set_write_timeout(opts.io_timeout);
}

struct SessionEntry {
    tenant: String,
    spec: ProblemSpec,
    opts: SessionOptions,
    session: TunerSession,
    /// History rows already appended to the archive journal.
    persisted: usize,
}

/// One table slot. The LRU stamp lives outside the entry mutex so the
/// eviction scan can read it under the table lock alone (GX302: no
/// per-session lock is ever taken while the table is locked).
struct SessionSlot {
    touch: AtomicU64,
    entry: Mutex<SessionEntry>,
}

struct ServerState {
    sessions: Mutex<BTreeMap<String, Arc<SessionSlot>>>,
    conns: Mutex<Vec<TcpStream>>,
    inflight: Mutex<BTreeMap<String, usize>>,
    stop: AtomicBool,
    draining: AtomicBool,
    /// Monotonic LRU clock; each session access stamps its slot.
    clock: AtomicU64,
    store: Option<SessionStore>,
    opts: ServeOptions,
    /// Server start time, for uptime reporting in `health` / `metrics`.
    started: Instant,
}

impl ServerState {
    fn session_gauge(&self) {
        let n = self.sessions.lock().unwrap().len();
        gptune_trace::global()
            .gauge("gptune.serve.sessions")
            .set(n as f64);
    }

    fn resident_cap(&self) -> usize {
        if self.store.is_some() {
            self.opts
                .max_resident_sessions
                .max(1)
                .min(self.opts.max_sessions)
        } else {
            self.opts.max_sessions
        }
    }

    fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// Decrements the tenant's in-flight count on drop.
struct InflightGuard<'a> {
    state: &'a ServerState,
    tenant: Option<String>,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if let Some(tenant) = &self.tenant {
            let mut map = self.state.inflight.lock().unwrap();
            if let Some(n) = map.get_mut(tenant) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    map.remove(tenant);
                }
            }
        }
    }
}

/// Admits (or sheds) one request for `tenant`.
fn admit<'a>(state: &'a ServerState, tenant: Option<&str>) -> Result<InflightGuard<'a>, Json> {
    let Some(tenant) = tenant else {
        return Ok(InflightGuard {
            state,
            tenant: None,
        });
    };
    let mut map = state.inflight.lock().unwrap();
    let n = map.entry(tenant.to_string()).or_insert(0);
    if *n >= state.opts.max_inflight_per_tenant.max(1) {
        drop(map);
        gptune_trace::global().counter("gptune.serve.sheds").add(1);
        return Err(err_with_code(
            CODE_OVERLOADED,
            format!("tenant {tenant:?} over its in-flight cap"),
            state.opts.retry_after_ms,
        ));
    }
    *n += 1;
    drop(map);
    Ok(InflightGuard {
        state,
        tenant: Some(tenant.to_string()),
    })
}

/// The tenant a request is accounted to (session keys are `tenant/name`).
fn tenant_of(req: &Request) -> Option<&str> {
    match req {
        Request::OpenSession { tenant, .. } => Some(tenant),
        Request::Suggest { session, .. }
        | Request::Report { session, .. }
        | Request::History { session }
        | Request::Close { session } => session.split('/').next(),
        Request::Ping | Request::Health | Request::Metrics | Request::Drain => None,
    }
}

/// Per-op latency histogram, resolved through a closed table of literal
/// names — GX602: metric names are static strings, never formatted, so
/// the scrape's name set is knowable from the source.
fn latency_histogram(tracer: &gptune_trace::Tracer, op: &str) -> gptune_trace::HistogramHandle {
    match op {
        "ping" => tracer.histogram("gptune.serve.latency_us.ping"),
        "open_session" => tracer.histogram("gptune.serve.latency_us.open_session"),
        "suggest" => tracer.histogram("gptune.serve.latency_us.suggest"),
        "report" => tracer.histogram("gptune.serve.latency_us.report"),
        "history" => tracer.histogram("gptune.serve.latency_us.history"),
        "close" => tracer.histogram("gptune.serve.latency_us.close"),
        "health" => tracer.histogram("gptune.serve.latency_us.health"),
        "metrics" => tracer.histogram("gptune.serve.latency_us.metrics"),
        "drain" => tracer.histogram("gptune.serve.latency_us.drain"),
        _ => tracer.histogram("gptune.serve.latency_us.parse_error"),
    }
}

/// A running server: its bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of resident (in-memory) sessions.
    pub fn n_sessions(&self) -> usize {
        self.state.sessions.lock().unwrap().len()
    }

    /// Stops accepting, severs live connections, and joins the pool
    /// *without* flushing — the kill path. With no archive, sessions die
    /// with the server and durability is the client's WAL; with one,
    /// per-report journaling means only unsaved suggest counters are at
    /// stake. Prefer [`ServerHandle::drain`] for orderly restarts.
    pub fn shutdown(self) {
        self.stop_and_join();
    }

    /// Graceful drain: flush every session to the archive, then stop
    /// accepting, sever connections, and join the pool. In-flight
    /// requests racing the drain get typed `draining` errors.
    pub fn drain(self) {
        begin_drain(&self.state);
        self.stop_and_join();
    }

    fn stop_and_join(self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Sever in-flight connections mid-frame. Take the registry out of
        // the lock first: shutdown() can block on a wedged peer, and no
        // guard may be held across it (GX702) — workers racing us just
        // see an already-emptied registry.
        let conns = std::mem::take(&mut *self.state.conns.lock().unwrap());
        for c in &conns {
            let _ = c.shutdown(Shutdown::Both);
        }
        // …and poke every acceptor blocked in accept(). The poke sockets
        // are deadline-armed like any other serve-side socket (GX303).
        for _ in 0..self.threads.len() {
            if let Ok(poke) = TcpStream::connect(self.addr) {
                let _ = poke.set_read_timeout(Some(Duration::from_secs(1)));
                let _ = poke.set_write_timeout(Some(Duration::from_secs(1)));
            }
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Flushes one session's unsent rows and meta to the archive. Called with
/// the slot *out of* (or never in) the table lock.
fn flush_slot(store: &SessionStore, slot: &SessionSlot) -> io::Result<()> {
    let mut entry = slot.entry.lock().unwrap();
    flush_entry(store, &mut entry)
}

fn flush_entry(store: &SessionStore, entry: &mut SessionEntry) -> io::Result<()> {
    let rows: Vec<(usize, Vec<gptune_space::Value>, Vec<f64>)> = entry
        .session
        .history()
        .skip(entry.persisted)
        .map(|(t, c, o)| (t, c.clone(), o.to_vec()))
        .collect();
    store.append_reports(&entry.tenant, &entry.spec, &entry.opts, &rows)?;
    entry.persisted += rows.len();
    let snap = entry.session.snapshot();
    store.save_meta(
        &entry.tenant,
        &entry.spec,
        &entry.opts,
        snap.n_suggested,
        snap.n_refits,
        snap.model_state.as_ref(),
    )
}

/// Marks the server draining and flushes every resident session.
fn begin_drain(state: &ServerState) {
    if state.draining.swap(true, Ordering::SeqCst) {
        return; // already draining
    }
    gptune_trace::global().counter("gptune.serve.drains").add(1);
    let Some(store) = &state.store else { return };
    let slots: Vec<Arc<SessionSlot>> = state.sessions.lock().unwrap().values().cloned().collect();
    for slot in slots {
        if flush_slot(store, &slot).is_err() {
            gptune_trace::global()
                .counter("gptune.serve.archive_errors")
                .add(1);
        }
    }
}

/// Evicts least-recently-used sessions until the table fits the resident
/// cap. `protect` (the key just inserted or touched) is never evicted.
fn evict_to_cap(state: &ServerState, protect: &str) {
    let Some(store) = &state.store else { return };
    let cap = state.resident_cap();
    loop {
        // Pick a victim under the table lock, reading only atomics.
        let victim = {
            let mut table = state.sessions.lock().unwrap();
            if table.len() <= cap {
                return;
            }
            let key = table
                .iter()
                .filter(|(k, _)| k.as_str() != protect)
                .min_by_key(|(_, slot)| slot.touch.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            key.and_then(|k| table.remove(&k).map(|slot| (k, slot)))
        };
        let Some((_key, slot)) = victim else { return };
        // Flush outside the table lock (GX302).
        if flush_slot(store, &slot).is_err() {
            gptune_trace::global()
                .counter("gptune.serve.archive_errors")
                .add(1);
        }
        gptune_trace::global()
            .counter("gptune.serve.evictions")
            .add(1);
        state.session_gauge();
    }
}

/// Binds `addr` and starts the acceptor pool. `addr` may use port 0 to
/// let the OS choose; read the result back via
/// [`ServerHandle::local_addr`].
pub fn serve(addr: impl ToSocketAddrs, opts: ServeOptions) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let store = match &opts.archive {
        Some(root) => Some(SessionStore::new(root)?),
        None => None,
    };
    let state = Arc::new(ServerState {
        sessions: Mutex::new(BTreeMap::new()),
        conns: Mutex::new(Vec::new()),
        inflight: Mutex::new(BTreeMap::new()),
        stop: AtomicBool::new(false),
        draining: AtomicBool::new(false),
        clock: AtomicU64::new(0),
        store,
        opts: opts.clone(),
        started: Instant::now(),
    });
    let mut threads = Vec::with_capacity(opts.workers.max(1));
    for worker in 0..opts.workers.max(1) {
        let listener = listener.try_clone()?;
        let state = Arc::clone(&state);
        threads.push(
            std::thread::Builder::new()
                .name(format!("gptune-serve-{worker}"))
                .spawn(move || acceptor_loop(&listener, &state))
                .expect("spawn acceptor"),
        );
    }
    Ok(ServerHandle {
        addr,
        state,
        threads,
    })
}

fn acceptor_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        let mut stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if state.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        arm_deadlines(&stream, &state.opts);
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(clone) = stream.try_clone() {
            state.conns.lock().unwrap().push(clone);
        }
        let _ = handle_conn(&mut stream, state);
        // A clone of this stream sits in `conns` for shutdown-severing;
        // dropping our half would leave the socket open through it, so
        // close explicitly — shutdown(2) applies to the socket, not the fd.
        let _ = stream.shutdown(Shutdown::Both);
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Serves one connection until clean EOF, a transport error, an expired
/// deadline, or a drain.
fn handle_conn(stream: &mut TcpStream, state: &Arc<ServerState>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    loop {
        let frame = match read_json(stream) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Deadline expired: the peer is too slow. Close.
                gptune_trace::global()
                    .counter("gptune.serve.timeouts")
                    .add(1);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if state.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let response = handle_frame(&frame, state);
        write_json(stream, &response)?;
        // A draining response is the connection's last word: close so the
        // client falls into its reconnect-with-backoff path.
        if error_code(&response).as_deref() == Some(CODE_DRAINING) {
            return Ok(());
        }
    }
}

fn handle_frame(frame: &Json, state: &Arc<ServerState>) -> Json {
    let tracer = gptune_trace::global();
    // The request id rides the frame header, not the request body: the
    // client mints it, retries and WAL replays reuse it, and every span
    // the request touches (here and inside the session) carries it, so
    // `trace_tool correlate` can stitch client and server timelines.
    let rid = crate::protocol::rid_of(frame).map(str::to_string);
    let start = Instant::now();
    let (op, tenant, response) = match Request::from_json(frame) {
        Ok(req) => {
            let op = req.op();
            let tenant = tenant_of(&req).map(str::to_string);
            (op, tenant, gate(req, rid.as_deref(), state))
        }
        Err(e) => ("parse_error", None, err_response(e)),
    };
    let micros = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    latency_histogram(&tracer, op).record(micros);
    tracer.counter("gptune.serve.requests").add(1);
    if !crate::protocol::is_ok(&response) {
        tracer.counter("gptune.serve.errors").add(1);
    }
    if let Some(tenant) = &tenant {
        crate::tenant_metrics::record(
            &tracer,
            tenant,
            micros,
            state.opts.latency_budget,
            &response,
        );
    }
    let mut span = tracer.span("gptune.serve.request");
    span.add("op", op);
    span.add("us", micros as i64);
    if let Some(rid) = rid {
        span.add("rid", rid);
    }
    drop(span);
    response
}

/// Admission control in front of [`dispatch`]: drain rejection first,
/// then the per-tenant in-flight cap. Observability ops (`health`,
/// `metrics`) are never gated — a draining or overloaded server must
/// still be scrapeable.
fn gate(req: Request, rid: Option<&str>, state: &Arc<ServerState>) -> Json {
    if state.draining.load(Ordering::SeqCst)
        && !matches!(
            req,
            Request::Ping | Request::Health | Request::Metrics | Request::Drain
        )
    {
        return err_with_code(
            CODE_DRAINING,
            "server is draining; reconnect later",
            state.opts.retry_after_ms,
        );
    }
    let _guard = match admit(state, tenant_of(&req)) {
        Ok(g) => g,
        Err(shed) => return shed,
    };
    dispatch(req, rid, state)
}

/// Looks up a session by key: lock the table, clone the `Arc`, stamp the
/// LRU clock, drop the guard. All real work happens outside the table
/// lock. A key absent from the table is restored from the archive when
/// one is configured — this is how a restarted or post-eviction server
/// serves `suggest`/`report` without the client re-opening.
fn lookup(state: &ServerState, key: &str) -> Result<Arc<SessionSlot>, Json> {
    {
        let table = state.sessions.lock().unwrap();
        if let Some(slot) = table.get(key) {
            let slot = Arc::clone(slot);
            drop(table);
            slot.touch.store(state.now(), Ordering::Relaxed);
            return Ok(slot);
        }
    }
    let miss = || err_response(format!("no such session {key:?}"));
    let Some(store) = &state.store else {
        return Err(miss());
    };
    let Some((tenant, name)) = key.split_once('/') else {
        return Err(miss());
    };
    let stored = match store.load(tenant, name) {
        Ok(Some(s)) => s,
        Ok(None) => return Err(miss()),
        Err(e) => {
            gptune_trace::global()
                .counter("gptune.serve.archive_errors")
                .add(1);
            return Err(err_response(format!("archive load failed: {e}")));
        }
    };
    let entry = match restore_entry(state, tenant.to_string(), stored) {
        Ok(e) => e,
        Err(resp) => return Err(resp),
    };
    Ok(adopt(state, key, entry))
}

/// Rebuilds a [`SessionEntry`] from its archived form (compute-heavy; no
/// locks held).
fn restore_entry(
    state: &ServerState,
    tenant: String,
    stored: crate::store::StoredSession,
) -> Result<SessionEntry, Json> {
    let problem = stored.spec.to_problem().map_err(err_response)?;
    let snapshot = SessionSnapshot {
        n_suggested: stored.n_suggested,
        n_refits: stored.n_refits,
        history: stored.history,
        model_state: stored.model_state,
    };
    let session = TunerSession::restore(
        problem,
        serving_mla_options(&stored.opts, &state.opts),
        &snapshot,
    )
    .map_err(|e| err_response(format!("archive replay rejected: {e}")))?;
    gptune_trace::global()
        .counter("gptune.serve.restores")
        .add(1);
    Ok(SessionEntry {
        tenant,
        spec: stored.spec,
        opts: stored.opts,
        persisted: snapshot.history.len(),
        session,
    })
}

/// Inserts a freshly built entry, adopting a concurrent winner if one
/// raced us in, then evicts down to the resident cap.
fn adopt(state: &ServerState, key: &str, entry: SessionEntry) -> Arc<SessionSlot> {
    let slot = Arc::new(SessionSlot {
        touch: AtomicU64::new(state.now()),
        entry: Mutex::new(entry),
    });
    let adopted = {
        let mut table = state.sessions.lock().unwrap();
        match table.get(key) {
            Some(winner) => Arc::clone(winner),
            None => {
                table.insert(key.to_string(), Arc::clone(&slot));
                Arc::clone(&slot)
            }
        }
    };
    state.session_gauge();
    evict_to_cap(state, key);
    adopted
}

fn dispatch(req: Request, rid: Option<&str>, state: &Arc<ServerState>) -> Json {
    let tracer = gptune_trace::global();
    match req {
        Request::Ping => ok_response(vec![("pong".into(), Json::Bool(true))]),

        Request::Health => {
            let resident = state.sessions.lock().unwrap().len();
            let cap = state.resident_cap();
            let draining = state.draining.load(Ordering::SeqCst);
            let snap = tracer.metrics();
            // Windowed per-op p99s: walk the snapshot's histogram list by
            // prefix rather than formatting lookup names (GX602).
            let per_op: Vec<(String, Json)> = snap
                .windowed
                .histograms
                .iter()
                .filter_map(|(name, h)| {
                    name.strip_prefix("gptune.serve.latency_us.")
                        .map(|op| (op.to_string(), Json::from_u64(h.p99())))
                })
                .collect();
            ok_response(vec![
                ("ready".into(), Json::Bool(!draining)),
                ("draining".into(), Json::Bool(draining)),
                ("sessions".into(), Json::from_u64(resident as u64)),
                ("resident_cap".into(), Json::from_u64(cap as u64)),
                (
                    "pressure".into(),
                    Json::from_f64(resident as f64 / cap.max(1) as f64),
                ),
                ("archive".into(), Json::Bool(state.store.is_some())),
                (
                    "uptime_secs".into(),
                    Json::from_u64(state.started.elapsed().as_secs()),
                ),
                (
                    "requests_total".into(),
                    Json::from_u64(snap.counter("gptune.serve.requests").unwrap_or(0)),
                ),
                (
                    "request_rate".into(),
                    Json::from_f64(
                        snap.windowed
                            .rate_per_sec("gptune.serve.requests")
                            .unwrap_or(0.0),
                    ),
                ),
                ("windowed_p99_us".into(), Json::Obj(per_op)),
            ])
        }

        Request::Metrics => {
            // Just-in-time gauges so a scrape always carries the current
            // values even when no recent request has updated them.
            tracer
                .gauge("gptune.serve.sessions")
                .set(state.sessions.lock().unwrap().len() as f64);
            tracer
                .gauge("gptune.serve.uptime_secs")
                .set(state.started.elapsed().as_secs_f64());
            tracer
                .gauge("gptune.serve.draining")
                .set(f64::from(u8::from(state.draining.load(Ordering::SeqCst))));
            let text = gptune_trace::expo::encode(&tracer.metrics());
            ok_response(vec![("exposition".into(), Json::Str(text))])
        }

        Request::Drain => {
            begin_drain(state);
            ok_response(vec![("draining".into(), Json::Bool(true))])
        }

        Request::OpenSession { tenant, spec, opts } => {
            if tenant.is_empty() || tenant.contains('/') {
                return err_response("tenant must be non-empty and slash-free");
            }
            let key = format!("{tenant}/{}", spec.name);
            // Re-attach to an existing session first — replayed
            // open_session frames after a reconnect are idempotent.
            {
                let table = state.sessions.lock().unwrap();
                let existing = table.get(&key).cloned();
                drop(table);
                if let Some(slot) = existing {
                    slot.touch.store(state.now(), Ordering::Relaxed);
                    let guard = slot.entry.lock().unwrap();
                    if guard.tenant != tenant {
                        return err_response("session key collision across tenants");
                    }
                    if guard.spec != spec {
                        return err_response(format!(
                            "session {key:?} already open with a different spec"
                        ));
                    }
                    return open_ok(&key, guard.session.n_reports(), true);
                }
            }
            // Not resident. Restore from the archive if it knows the key —
            // a restarted server re-attaches exactly like a live one.
            if let Some(store) = &state.store {
                match store.load(&tenant, &spec.name) {
                    Ok(Some(stored)) => {
                        if stored.spec != spec {
                            return err_response(format!(
                                "session {key:?} archived with a different spec"
                            ));
                        }
                        let entry = match restore_entry(state, tenant.clone(), stored) {
                            Ok(e) => e,
                            Err(resp) => return resp,
                        };
                        let n_reports = entry.session.n_reports();
                        adopt(state, &key, entry);
                        return open_ok(&key, n_reports, true);
                    }
                    Ok(None) => {}
                    Err(e) => {
                        gptune_trace::global()
                            .counter("gptune.serve.archive_errors")
                            .add(1);
                        return err_response(format!("archive load failed: {e}"));
                    }
                }
            }
            // Genuinely new. Without an archive the table is a hard cap
            // (nothing can be evicted); shed with a typed error.
            if state.store.is_none()
                && state.sessions.lock().unwrap().len() >= state.opts.max_sessions
            {
                gptune_trace::global().counter("gptune.serve.sheds").add(1);
                return err_with_code(
                    CODE_OVERLOADED,
                    "session table full",
                    state.opts.retry_after_ms,
                );
            }
            // Build the session with no locks held (initial-design
            // sampling is compute, but still not table-lock work).
            let problem = match spec.to_problem() {
                Ok(p) => p,
                Err(e) => return err_response(e),
            };
            let session = TunerSession::new(problem, serving_mla_options(&opts, &state.opts));
            let entry = SessionEntry {
                tenant: tenant.clone(),
                spec: spec.clone(),
                opts: opts.clone(),
                session,
                persisted: 0,
            };
            let slot = adopt(state, &key, entry);
            // Stamp the meta now so a kill before the first drain/evict
            // still leaves a restorable session on disk.
            if let Some(store) = &state.store {
                if flush_slot(store, &slot).is_err() {
                    gptune_trace::global()
                        .counter("gptune.serve.archive_errors")
                        .add(1);
                }
            }
            let guard = slot.entry.lock().unwrap();
            let n_reports = guard.session.n_reports();
            let reattached = n_reports > 0; // adopted a racing winner
            open_ok(&key, n_reports, reattached)
        }

        Request::Suggest { session, task } => {
            let slot = match lookup(state, &session) {
                Ok(s) => s,
                Err(resp) => return resp,
            };
            let mut guard = slot.entry.lock().unwrap();
            guard.session.set_request_id(rid.map(str::to_string));
            match guard.session.suggest(task) {
                Some(config) => ok_response(vec![("config".into(), config_to_json(&config))]),
                None => err_response(format!("task {task} out of range")),
            }
        }

        Request::Report {
            session,
            task,
            config,
            outputs,
        } => {
            let slot = match lookup(state, &session) {
                Ok(s) => s,
                Err(resp) => return resp,
            };
            let mut guard = slot.entry.lock().unwrap();
            guard.session.set_request_id(rid.map(str::to_string));
            let duplicate = match guard.session.report(task, config, outputs) {
                Ok(()) => false,
                // Duplicates are a *success* for the protocol: replays
                // after a disconnect (client WAL or retry loop) must be
                // absorbed silently for at-least-once delivery to look
                // exactly-once.
                Err(ReportError::Duplicate) => true,
                Err(e) => return err_response(format!("report rejected: {e}")),
            };
            // Journal-before-acknowledge: the report is durable before the
            // client hears "ok", so an acknowledged report survives any
            // later crash. On append failure the client gets an error and
            // retries; the in-memory duplicate is then absorbed while the
            // journal catches up via the `persisted` cursor.
            if let Some(store) = &state.store {
                let rows: Vec<(usize, Vec<gptune_space::Value>, Vec<f64>)> = guard
                    .session
                    .history()
                    .skip(guard.persisted)
                    .map(|(t, c, o)| (t, c.clone(), o.to_vec()))
                    .collect();
                if !rows.is_empty() {
                    match store.append_reports(&guard.tenant, &guard.spec, &guard.opts, &rows) {
                        Ok(()) => guard.persisted += rows.len(),
                        Err(e) => {
                            gptune_trace::global()
                                .counter("gptune.serve.archive_errors")
                                .add(1);
                            return err_response(format!("archive append failed: {e}"));
                        }
                    }
                }
            }
            let mut fields = vec![(
                "n".to_string(),
                Json::from_u64(guard.session.n_reports() as u64),
            )];
            if duplicate {
                fields.push(("duplicate".into(), Json::Bool(true)));
            }
            ok_response(fields)
        }

        Request::History { session } => {
            let slot = match lookup(state, &session) {
                Ok(s) => s,
                Err(resp) => return resp,
            };
            let guard = slot.entry.lock().unwrap();
            let rows: Vec<Json> = guard
                .session
                .history()
                .map(|(t, c, o)| {
                    Json::Obj(vec![
                        ("task".into(), Json::from_u64(t as u64)),
                        ("config".into(), config_to_json(c)),
                        (
                            "outputs".into(),
                            Json::Arr(o.iter().map(|y| Json::from_f64(*y)).collect()),
                        ),
                    ])
                })
                .collect();
            ok_response(vec![
                ("n".into(), Json::from_u64(rows.len() as u64)),
                ("history".into(), Json::Arr(rows)),
            ])
        }

        Request::Close { session } => {
            let removed = {
                let mut table = state.sessions.lock().unwrap();
                table.remove(&session)
            };
            state.session_gauge();
            // Close drops *all* state, archive included: a later open of
            // the same key starts genuinely fresh.
            let mut purged = false;
            if let Some(store) = &state.store {
                if let Some((tenant, name)) = session.split_once('/') {
                    purged = matches!(store.load(tenant, name), Ok(Some(_)));
                    if purged && store.purge(tenant, name).is_err() {
                        gptune_trace::global()
                            .counter("gptune.serve.archive_errors")
                            .add(1);
                    }
                }
            }
            if removed.is_some() || purged {
                ok_response(vec![("closed".into(), Json::Bool(true))])
            } else {
                err_response(format!("no such session {session:?}"))
            }
        }
    }
}

fn open_ok(key: &str, n_reports: usize, reattached: bool) -> Json {
    ok_response(vec![
        ("session".into(), Json::Str(key.to_string())),
        ("n_reports".into(), Json::from_u64(n_reports as u64)),
        ("reattached".into(), Json::Bool(reattached)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{error_of, is_ok, is_retryable_error, retry_after_of};
    use gptune_space::{Param, Value};

    fn spec(name: &str) -> ProblemSpec {
        ProblemSpec {
            name: name.into(),
            task_params: vec![Param::real("t", 0.0, 1.0)],
            tuning_params: vec![Param::real("x", 0.0, 1.0)],
            tasks: vec![vec![Value::Real(0.25)], vec![Value::Real(0.75)]],
            n_objectives: 1,
        }
    }

    fn roundtrip(stream: &mut TcpStream, req: &Request) -> Json {
        write_json(stream, &req.to_json()).unwrap();
        read_json(stream).unwrap().expect("response")
    }

    fn start() -> ServerHandle {
        serve(
            "127.0.0.1:0",
            ServeOptions {
                workers: 2,
                ..ServeOptions::default()
            },
        )
        .unwrap()
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "gptune_serve_server_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn open(c: &mut TcpStream, tenant: &str, sp: ProblemSpec) -> Json {
        roundtrip(
            c,
            &Request::OpenSession {
                tenant: tenant.into(),
                spec: sp,
                opts: SessionOptions {
                    seed: 7,
                    n_initial: Some(2),
                },
            },
        )
    }

    #[test]
    fn ping_and_full_session_lifecycle() {
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();

        assert!(is_ok(&roundtrip(&mut c, &Request::Ping)));

        let open = open(&mut c, "acme", spec("toy"));
        assert!(is_ok(&open), "{open}");
        let key = open.get("session").unwrap().as_str().unwrap().to_string();
        assert_eq!(key, "acme/toy");
        assert_eq!(server.n_sessions(), 1);

        // Suggest → report → history for both tasks.
        for task in 0..2usize {
            let s = roundtrip(
                &mut c,
                &Request::Suggest {
                    session: key.clone(),
                    task,
                },
            );
            assert!(is_ok(&s), "{s}");
            let config = crate::spec::config_from_json(s.get("config").unwrap()).unwrap();
            let r = roundtrip(
                &mut c,
                &Request::Report {
                    session: key.clone(),
                    task,
                    config,
                    outputs: vec![1.0 + task as f64],
                },
            );
            assert!(is_ok(&r), "{r}");
        }
        let h = roundtrip(
            &mut c,
            &Request::History {
                session: key.clone(),
            },
        );
        assert!(is_ok(&h));
        assert_eq!(h.get("n").unwrap().as_u64(), Some(2));
        assert_eq!(h.get("history").unwrap().as_arr().unwrap().len(), 2);

        let cl = roundtrip(
            &mut c,
            &Request::Close {
                session: key.clone(),
            },
        );
        assert!(is_ok(&cl));
        assert_eq!(server.n_sessions(), 0);
        // Requests against a closed session fail cleanly.
        let s = roundtrip(
            &mut c,
            &Request::Suggest {
                session: key,
                task: 0,
            },
        );
        assert!(!is_ok(&s));
        assert!(error_of(&s).contains("no such session"));

        server.shutdown();
    }

    #[test]
    fn duplicate_reports_are_absorbed() {
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        let open = open(&mut c, "t", spec("p"));
        let key = open.get("session").unwrap().as_str().unwrap().to_string();
        let report = Request::Report {
            session: key.clone(),
            task: 0,
            config: vec![Value::Real(0.5)],
            outputs: vec![3.0],
        };
        let first = roundtrip(&mut c, &report);
        assert!(is_ok(&first));
        assert!(first.get("duplicate").is_none());
        let second = roundtrip(&mut c, &report);
        assert!(is_ok(&second), "replayed report must succeed: {second}");
        assert_eq!(second.get("duplicate").unwrap().as_bool(), Some(true));
        assert_eq!(
            second.get("n").unwrap().as_u64(),
            Some(1),
            "not double-counted"
        );
        // A genuinely bad report still fails.
        let bad = roundtrip(
            &mut c,
            &Request::Report {
                session: key,
                task: 99,
                config: vec![Value::Real(0.5)],
                outputs: vec![3.0],
            },
        );
        assert!(!is_ok(&bad));
        server.shutdown();
    }

    #[test]
    fn reopen_reattaches_and_mismatched_spec_is_rejected() {
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        let first = open(&mut c, "t", spec("p"));
        assert!(is_ok(&first));
        assert_eq!(first.get("reattached").unwrap().as_bool(), Some(false));
        let key = first.get("session").unwrap().as_str().unwrap().to_string();
        roundtrip(
            &mut c,
            &Request::Report {
                session: key,
                task: 0,
                config: vec![Value::Real(0.5)],
                outputs: vec![1.0],
            },
        );
        // Same spec from a new connection: re-attach, history intact.
        let mut c2 = TcpStream::connect(server.local_addr()).unwrap();
        let again = open(&mut c2, "t", spec("p"));
        assert!(is_ok(&again));
        assert_eq!(again.get("reattached").unwrap().as_bool(), Some(true));
        assert_eq!(again.get("n_reports").unwrap().as_u64(), Some(1));
        // Same name, different structure: reject.
        let mut other = spec("p");
        other.n_objectives = 2;
        let clash = open(&mut c2, "t", other);
        assert!(!is_ok(&clash));
        assert!(error_of(&clash).contains("different spec"));
        server.shutdown();
    }

    #[test]
    fn tenants_are_isolated() {
        let server = start();
        let mut a = TcpStream::connect(server.local_addr()).unwrap();
        let mut b = TcpStream::connect(server.local_addr()).unwrap();
        for (c, tenant) in [(&mut a, "alpha"), (&mut b, "beta")] {
            let o = open(c, tenant, spec("shared"));
            assert!(is_ok(&o));
        }
        assert_eq!(server.n_sessions(), 2);
        roundtrip(
            &mut a,
            &Request::Report {
                session: "alpha/shared".into(),
                task: 0,
                config: vec![Value::Real(0.1)],
                outputs: vec![1.0],
            },
        );
        let h = roundtrip(
            &mut b,
            &Request::History {
                session: "beta/shared".into(),
            },
        );
        assert_eq!(
            h.get("n").unwrap().as_u64(),
            Some(0),
            "no cross-tenant leak"
        );
        server.shutdown();
    }

    #[test]
    fn malformed_frames_get_error_responses() {
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        crate::protocol::write_frame(&mut c, b"{\"op\":\"warp\"}").unwrap();
        let resp = read_json(&mut c).unwrap().unwrap();
        assert!(!is_ok(&resp));
        // The connection survives a bad request.
        assert!(is_ok(&roundtrip(&mut c, &Request::Ping)));
        server.shutdown();
    }

    #[test]
    fn shutdown_severs_live_connections() {
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        assert!(is_ok(&roundtrip(&mut c, &Request::Ping)));
        server.shutdown();
        // The next exchange on the severed stream fails or hits EOF.
        let dead = write_json(&mut c, &Request::Ping.to_json())
            .and_then(|()| read_json(&mut c))
            .map(|r| r.is_none());
        assert!(matches!(dead, Ok(true) | Err(_)));
    }

    /// Regression test for the GX702 teardown fix: `stop_and_join` used to
    /// iterate the connection registry *inside* its lock while severing,
    /// so a `shutdown(2)` stalled on a wedged peer kept every worker from
    /// registering or deregistering forever. The fixed path takes the
    /// whole registry out of the lock first — a concurrent lock holder
    /// delays the take but can never deadlock against severing, and the
    /// registry is observably emptied.
    #[test]
    fn shutdown_takes_the_conn_registry_instead_of_severing_under_its_lock() {
        let server = start();
        let state = Arc::clone(&server.state);
        let mut c1 = TcpStream::connect(server.local_addr()).unwrap();
        let mut c2 = TcpStream::connect(server.local_addr()).unwrap();
        assert!(is_ok(&roundtrip(&mut c1, &Request::Ping)));
        assert!(is_ok(&roundtrip(&mut c2, &Request::Ping)));
        let blocker = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let guard = state.conns.lock().unwrap();
                std::thread::sleep(Duration::from_millis(50));
                drop(guard);
            })
        };
        server.shutdown();
        blocker.join().unwrap();
        assert!(
            state.conns.lock().unwrap().is_empty(),
            "teardown must take the registry, not iterate it in place"
        );
    }

    #[test]
    fn metrics_scrape_and_extended_health_report_windowed_activity() {
        let _serial = crate::test_trace_lock();
        let prev = gptune_trace::install(gptune_trace::Tracer::ring(4096));
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        open(&mut c, "t", spec("p"));
        for _ in 0..5 {
            assert!(is_ok(&roundtrip(&mut c, &Request::Ping)));
        }
        let m = roundtrip(&mut c, &Request::Metrics);
        assert!(is_ok(&m), "{m}");
        let text = m.get("exposition").unwrap().as_str().unwrap().to_string();
        // The exposition is machine-parseable and carries both lifetime
        // and windowed views of the request counter, plus the JIT gauges.
        let snap = gptune_trace::expo::parse(&text).expect("exposition parses");
        assert!(snap.counter("gptune.serve.requests").unwrap() >= 6);
        assert!(snap.windowed.counter("gptune.serve.requests").unwrap() >= 6);
        assert!(snap.windowed.horizon_ns > 0);
        assert!(snap.gauge("gptune.serve.uptime_secs").is_some());
        assert_eq!(snap.gauge("gptune.serve.draining"), Some(0.0));
        assert!(snap.counter("gptune.serve.tenant.t.requests").unwrap() >= 1);
        // The extended health reply rides the same windowed data.
        let h = roundtrip(&mut c, &Request::Health);
        assert!(is_ok(&h), "{h}");
        assert!(h.get("uptime_secs").unwrap().as_u64().is_some());
        assert!(h.get("requests_total").unwrap().as_u64().unwrap() >= 7);
        assert!(h.get("request_rate").unwrap().as_f64().unwrap() > 0.0);
        let per_op = h.get("windowed_p99_us").unwrap();
        assert!(per_op.get("ping").unwrap().as_u64().is_some());
        server.shutdown();
        gptune_trace::install(prev);
    }

    #[test]
    fn metrics_and_health_answer_while_draining() {
        let _serial = crate::test_trace_lock();
        let prev = gptune_trace::install(gptune_trace::Tracer::ring(1024));
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        assert!(is_ok(&roundtrip(&mut c, &Request::Drain)));
        let mut c2 = TcpStream::connect(server.local_addr()).unwrap();
        let m = roundtrip(&mut c2, &Request::Metrics);
        assert!(is_ok(&m), "metrics must be scrapeable mid-drain: {m}");
        let text = m.get("exposition").unwrap().as_str().unwrap();
        let snap = gptune_trace::expo::parse(text).unwrap();
        assert_eq!(snap.gauge("gptune.serve.draining"), Some(1.0));
        server.shutdown();
        gptune_trace::install(prev);
    }

    #[test]
    fn request_ids_flow_into_server_and_session_spans() {
        use gptune_trace::Field;
        let _serial = crate::test_trace_lock();
        let prev = gptune_trace::install(gptune_trace::Tracer::ring(4096));
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        open(&mut c, "t", spec("p"));
        let framed = crate::protocol::with_rid(
            Request::Suggest {
                session: "t/p".into(),
                task: 0,
            }
            .to_json(),
            "rid-0042",
        );
        write_json(&mut c, &framed).unwrap();
        let resp = read_json(&mut c).unwrap().unwrap();
        assert!(is_ok(&resp), "{resp}");
        let data = gptune_trace::global().drain();
        let tagged: Vec<&str> = data
            .events
            .iter()
            .filter(|e| e.field("rid") == Some(&Field::Str("rid-0042".into())))
            .map(|e| e.name.as_ref())
            .collect();
        assert!(
            tagged.contains(&"gptune.serve.request"),
            "server request span must carry the rid: {tagged:?}"
        );
        assert!(
            tagged.contains(&"gptune.core.session.suggest"),
            "session-level span must carry the rid: {tagged:?}"
        );
        // A frame without a rid leaves spans untagged, not empty-tagged.
        assert!(is_ok(&roundtrip(&mut c, &Request::Ping)));
        let data = gptune_trace::global().drain();
        assert!(data
            .events
            .iter()
            .filter(|e| e.name.as_ref() == "gptune.serve.request")
            .all(|e| e.field("rid").is_none()));
        server.shutdown();
        gptune_trace::install(prev);
    }

    #[test]
    fn health_reports_readiness_and_pressure() {
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        let h = roundtrip(&mut c, &Request::Health);
        assert!(is_ok(&h), "{h}");
        assert_eq!(h.get("ready").unwrap().as_bool(), Some(true));
        assert_eq!(h.get("draining").unwrap().as_bool(), Some(false));
        assert_eq!(h.get("sessions").unwrap().as_u64(), Some(0));
        assert_eq!(h.get("archive").unwrap().as_bool(), Some(false));
        open(&mut c, "t", spec("p"));
        let h = roundtrip(&mut c, &Request::Health);
        assert_eq!(h.get("sessions").unwrap().as_u64(), Some(1));
        assert!(h.get("pressure").unwrap().as_f64().unwrap() > 0.0);
        server.shutdown();
    }

    #[test]
    fn drain_rejects_work_with_a_typed_error_and_closes_the_conn() {
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        open(&mut c, "t", spec("p"));
        let d = roundtrip(&mut c, &Request::Drain);
        assert!(is_ok(&d), "{d}");
        // Health still answers and reports the drain.
        let mut c2 = TcpStream::connect(server.local_addr()).unwrap();
        let h = roundtrip(&mut c2, &Request::Health);
        assert_eq!(h.get("ready").unwrap().as_bool(), Some(false));
        assert_eq!(h.get("draining").unwrap().as_bool(), Some(true));
        // Real work gets the typed draining error with a retry hint…
        let s = roundtrip(
            &mut c2,
            &Request::Suggest {
                session: "t/p".into(),
                task: 0,
            },
        );
        assert!(!is_ok(&s));
        assert!(is_retryable_error(&s), "{s}");
        assert_eq!(
            retry_after_of(&s),
            Some(ServeOptions::default().retry_after_ms)
        );
        // …and the server hangs up after sending it.
        let next = write_json(&mut c2, &Request::Ping.to_json())
            .and_then(|()| read_json(&mut c2))
            .map(|r| r.is_none());
        assert!(matches!(next, Ok(true) | Err(_)), "conn must be closed");
        server.shutdown();
    }

    #[test]
    fn table_full_without_archive_sheds_with_overloaded_code() {
        let server = serve(
            "127.0.0.1:0",
            ServeOptions {
                workers: 2,
                max_sessions: 1,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        assert!(is_ok(&open(&mut c, "t", spec("one"))));
        let second = open(&mut c, "t", spec("two"));
        assert!(!is_ok(&second));
        assert!(is_retryable_error(&second), "{second}");
        assert!(retry_after_of(&second).is_some());
        // Re-attach to the existing session still works at the cap.
        assert!(is_ok(&open(&mut c, "t", spec("one"))));
        server.shutdown();
    }

    #[test]
    fn zero_inflight_cap_sheds_every_tenant_request() {
        let server = serve(
            "127.0.0.1:0",
            ServeOptions {
                workers: 2,
                // max(1) clamps this to 1; a single inline request never
                // races itself, so force the shed by saturating the count.
                max_inflight_per_tenant: 1,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        // Saturate the tenant's count directly (the inline handler can't
        // overlap with itself on one connection).
        server
            .state
            .inflight
            .lock()
            .unwrap()
            .insert("t".to_string(), 1);
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        let shed = open(&mut c, "t", spec("p"));
        assert!(!is_ok(&shed));
        assert!(is_retryable_error(&shed), "{shed}");
        // Untracked ops (ping/health) are never shed.
        assert!(is_ok(&roundtrip(&mut c, &Request::Ping)));
        // Another tenant is unaffected.
        assert!(is_ok(&open(&mut c, "u", spec("p"))));
        server.shutdown();
    }

    #[test]
    fn slow_clients_hit_the_read_deadline_and_are_disconnected() {
        let server = serve(
            "127.0.0.1:0",
            ServeOptions {
                workers: 1,
                io_timeout: Some(Duration::from_millis(50)),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        // Send half a frame header, then stall past the deadline.
        use std::io::Write;
        c.write_all(&[0, 0]).unwrap();
        c.flush().unwrap();
        // The server must close; reading from our side ends in EOF or a
        // reset, not a hang (bound our side too).
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let gone = read_json(&mut c);
        assert!(matches!(gone, Ok(None) | Err(_)), "server kept waiting");
        // A prompt client on a fresh connection is still served.
        let mut c2 = TcpStream::connect(server.local_addr()).unwrap();
        assert!(is_ok(&roundtrip(&mut c2, &Request::Ping)));
        server.shutdown();
    }

    #[test]
    fn sessions_survive_a_drain_restart_cycle_without_wal() {
        let root = tmp_root("drainrestart");
        let opts = || ServeOptions {
            workers: 2,
            archive: Some(root.clone()),
            ..ServeOptions::default()
        };
        let server = serve("127.0.0.1:0", opts()).unwrap();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        let key = "t/p".to_string();
        open(&mut c, "t", spec("p"));
        // Two reports and a suggest so every counter is non-trivial.
        for (task, y) in [(0usize, 1.5), (1usize, 2.5)] {
            let s = roundtrip(
                &mut c,
                &Request::Suggest {
                    session: key.clone(),
                    task,
                },
            );
            let config = crate::spec::config_from_json(s.get("config").unwrap()).unwrap();
            assert!(is_ok(&roundtrip(
                &mut c,
                &Request::Report {
                    session: key.clone(),
                    task,
                    config,
                    outputs: vec![y],
                },
            )));
        }
        server.drain();

        // Replacement server, same archive: re-open re-attaches with the
        // full history and no WAL anywhere.
        let server = serve("127.0.0.1:0", opts()).unwrap();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        let again = open(&mut c, "t", spec("p"));
        assert!(is_ok(&again), "{again}");
        assert_eq!(again.get("reattached").unwrap().as_bool(), Some(true));
        assert_eq!(again.get("n_reports").unwrap().as_u64(), Some(2));
        // A *mismatched* spec is still rejected against the archive.
        let mut other = spec("p");
        other.n_objectives = 2;
        let clash = open(&mut c, "t", other);
        assert!(!is_ok(&clash));
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn kill_restart_recovers_reports_via_suggest_without_reopen() {
        // Harsher than drain: shutdown() flushes nothing. Acknowledged
        // reports must still be there (journal-before-ack), and the
        // session must come back through a bare `suggest` on the key —
        // no open_session, no WAL.
        let root = tmp_root("killrestart");
        let opts = || ServeOptions {
            workers: 2,
            archive: Some(root.clone()),
            ..ServeOptions::default()
        };
        let server = serve("127.0.0.1:0", opts()).unwrap();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        open(&mut c, "t", spec("p"));
        assert!(is_ok(&roundtrip(
            &mut c,
            &Request::Report {
                session: "t/p".into(),
                task: 0,
                config: vec![Value::Real(0.5)],
                outputs: vec![9.0],
            },
        )));
        server.shutdown(); // kill: no flush

        let server = serve("127.0.0.1:0", opts()).unwrap();
        assert_eq!(server.n_sessions(), 0);
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        let h = roundtrip(
            &mut c,
            &Request::History {
                session: "t/p".into(),
            },
        );
        assert!(is_ok(&h), "{h}");
        assert_eq!(h.get("n").unwrap().as_u64(), Some(1), "report lost");
        assert_eq!(server.n_sessions(), 1, "restored into the table");
        // Close purges the archive: the key is gone for good.
        assert!(is_ok(&roundtrip(
            &mut c,
            &Request::Close {
                session: "t/p".into(),
            },
        )));
        let gone = roundtrip(
            &mut c,
            &Request::History {
                session: "t/p".into(),
            },
        );
        assert!(!is_ok(&gone));
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn eviction_keeps_the_table_under_the_resident_cap() {
        let root = tmp_root("evict");
        let server = serve(
            "127.0.0.1:0",
            ServeOptions {
                workers: 2,
                archive: Some(root.clone()),
                max_resident_sessions: 2,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        const LOGICAL: usize = 6;
        for i in 0..LOGICAL {
            let name = format!("p{i}");
            assert!(is_ok(&open(&mut c, "t", spec(&name))));
            assert!(is_ok(&roundtrip(
                &mut c,
                &Request::Report {
                    session: format!("t/{name}"),
                    task: 0,
                    config: vec![Value::Real(i as f64 / LOGICAL as f64)],
                    outputs: vec![i as f64],
                },
            )));
            assert!(server.n_sessions() <= 2, "table over the resident cap");
        }
        // Every logical session is still reachable, evicted or not, and
        // carries its one report.
        for i in 0..LOGICAL {
            let h = roundtrip(
                &mut c,
                &Request::History {
                    session: format!("t/p{i}"),
                },
            );
            assert!(is_ok(&h), "{h}");
            assert_eq!(h.get("n").unwrap().as_u64(), Some(1), "session p{i}");
            assert!(server.n_sessions() <= 2);
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn restored_sessions_continue_the_same_suggestion_stream() {
        // The determinism acceptance: suggest after drain+restore must
        // produce what the uninterrupted server would have produced.
        let root_a = tmp_root("detA");
        let seq = |restart: bool, root: &PathBuf| -> Vec<Vec<Value>> {
            let opts = || ServeOptions {
                workers: 1,
                archive: Some(root.clone()),
                ..ServeOptions::default()
            };
            let mut server = serve("127.0.0.1:0", opts()).unwrap();
            let mut c = TcpStream::connect(server.local_addr()).unwrap();
            open(&mut c, "t", spec("det"));
            let mut out = Vec::new();
            for round in 0..4usize {
                if restart && round == 2 {
                    drop(c);
                    server.drain();
                    server = serve("127.0.0.1:0", opts()).unwrap();
                    c = TcpStream::connect(server.local_addr()).unwrap();
                    open(&mut c, "t", spec("det"));
                }
                let task = round % 2;
                let s = roundtrip(
                    &mut c,
                    &Request::Suggest {
                        session: "t/det".into(),
                        task,
                    },
                );
                let cfg = crate::spec::config_from_json(s.get("config").unwrap()).unwrap();
                assert!(is_ok(&roundtrip(
                    &mut c,
                    &Request::Report {
                        session: "t/det".into(),
                        task,
                        config: cfg.clone(),
                        outputs: vec![round as f64],
                    },
                )));
                out.push(cfg);
            }
            // Purge so the two runs never see each other's archive.
            roundtrip(
                &mut c,
                &Request::Close {
                    session: "t/det".into(),
                },
            );
            server.shutdown();
            out
        };
        let uninterrupted = seq(false, &root_a);
        let restarted = seq(true, &root_a);
        assert_eq!(
            uninterrupted, restarted,
            "drain+restore changed the suggestion stream"
        );
        let _ = std::fs::remove_dir_all(&root_a);
    }
}
