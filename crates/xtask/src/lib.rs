//! gptune-xtask — the workspace lint suite.
//!
//! Domain-specific static analysis for the invariants GPTune's correctness
//! actually rests on, none of which a generic linter checks:
//!
//! * **NaN-safety** (GX101–GX103): surrogate fitting must never feed
//!   NaN/inf into the Cholesky, so float comparisons and sorts must be
//!   total (`f64::total_cmp`, `gptune_la::ord`).
//! * **Panic-freedom tiers** (GX201–GX204, GX290): a dead measurement must
//!   never kill the tuner — the runtime, the db, and the core evaluation
//!   path stay `unwrap`/`panic!`-free outside explicitly justified escapes.
//! * **Lock discipline** (GX301): no lock guard held across a channel op
//!   or join — the master/worker executor's one deadlock shape.
//! * **Determinism** (GX401–GX403): checkpoint/resume replays to identical
//!   results only if every random draw is seed-threaded through
//!   `MlaOptions` and no recorded output depends on hash-map order.
//! * **Unsafe hygiene** (GX501): every `unsafe` carries a `// SAFETY:`.
//! * **Concurrency** (GX701–GX704): whole-workspace lock-order graph,
//!   interprocedural guard-across-blocking detection, double-acquire
//!   paths, and relaxed-atomic handshake mismatches — built on per-fn
//!   summaries propagated to fixpoint (see `parse`/`summary`/`graph`/
//!   `concurrency`).
//!
//! Run it as `cargo run -p gptune-xtask -- lint` (wired into `tier1.sh`);
//! see `lint.toml` at the workspace root for the allowlist format and
//! DESIGN.md §"Static-analysis policy" for the full rule catalogue.

pub mod concurrency;
pub mod config;
pub mod context;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod summary;

use config::Config;
use context::FileCtx;
use rules::Diagnostic;
use std::path::{Path, PathBuf};

/// Lints one file's source text under its repo-relative path. Per-file
/// rules only — the cross-file concurrency tier needs the whole
/// workspace and runs from [`lint_files`].
pub fn lint_source(path_rel: &str, source: &str, cfg: &Config) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    let ctx = FileCtx::new(path_rel, &lexed);
    rules::check_file(&ctx, cfg)
}

/// Lints a set of `(repo-relative path, source)` pairs: per-file rules on
/// each, then the workspace concurrency tier across all of them.
/// Diagnostics are sorted by path then line, so output is byte-stable.
pub fn lint_files(files: &[(String, String)], cfg: &Config) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let mut parsed = Vec::new();
    for (rel, source) in files {
        let lexed = lexer::lex(source);
        let ctx = FileCtx::new(rel, &lexed);
        diagnostics.extend(rules::check_file(&ctx, cfg));
        parsed.push(parse::parse_file(&ctx));
    }
    diagnostics.extend(concurrency::check(&parsed, cfg));
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    diagnostics
}

/// Parses every workspace file (no linting) — the substrate for
/// `lint --lock-graph`.
pub fn parse_workspace(root: &Path) -> std::io::Result<Vec<parse::ParsedFile>> {
    let files = read_workspace_sources(root)?;
    Ok(files
        .iter()
        .map(|(rel, source)| {
            let lexed = lexer::lex(source);
            parse::parse_file(&FileCtx::new(rel, &lexed))
        })
        .collect())
}

/// Reads every lintable workspace source file as `(rel-path, text)`.
pub fn read_workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut paths)?;
        }
    }
    collect_rs(&root.join("src"), &mut paths)?;
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for file in &paths {
        let source = std::fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, source));
    }
    Ok(out)
}

/// Result of a workspace lint run.
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
}

/// Lints every `crates/*/src/**/*.rs` plus the root package's `src/`
/// under `root` — per-file rules plus the workspace concurrency tier.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<LintReport> {
    let files = read_workspace_sources(root)?;
    Ok(LintReport {
        diagnostics: lint_files(&files, cfg),
        files_scanned: files.len(),
    })
}

/// Recursively collects `.rs` files under `dir` (no-op when absent).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|x| x == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Loads `lint.toml` from the workspace root (empty allowlist when the
/// file does not exist).
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(src) => Config::parse(&src).map_err(|e| e.to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}
