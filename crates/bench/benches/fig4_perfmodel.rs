//! Fig. 4 — advantage of incorporating coarse performance models
//! (paper Sec. 6.4).
//!
//! **Left (analytical)**: MLA with and without the noisy model
//! `ỹ = (1 + 0.1·r(x))·y(t,x)` on δ tasks of Eq. 11, budgets ε_tot ∈
//! {20, 40, 80}. Paper: ratio(no-model / with-model) ≥ 1 for all tasks,
//! largest for big t and small budgets; the true minimum is attained at
//! most points with the model.
//!
//! **Right (PDGEQRF)**: the Eq. 7 communication model with on-the-fly
//! hyperparameter estimation, 5 random tasks `m, n < 20000`, ε_tot ∈
//! {10, 20, 40}. Paper: up to 35% improvement at ε_tot = 10, fading as the
//! budget grows.
//!
//! This harness uses δ = 10 analytical tasks (t = 0, 1, …, 9) and budgets
//! {10, 20, 40} to stay laptop-sized; the PDGEQRF half matches the paper's
//! task count.

use gptune::apps::{AnalyticalApp, HpcApp, MachineModel, PdgeqrfApp};
use gptune::core::{mla, MlaOptions};
use gptune::problem_from_app;
use gptune::space::Value;
use gptune_bench::{banner, random_qr_tasks};
use std::sync::Arc;

fn opts(budget: usize, seed: u64) -> MlaOptions {
    let mut o = MlaOptions::default().with_budget(budget).with_seed(seed);
    o.lcm.n_starts = 3;
    o.lcm.lbfgs.max_iters = 25;
    o
}

fn main() {
    banner(
        "Fig. 4 — benefit of coarse performance models",
        "left: analytical fn, δ=20, ε_tot∈{20,40,80}; right: PDGEQRF, 5 tasks, ε_tot∈{10,20,40}",
        "left: analytical fn, δ=10, ε_tot∈{10,20,40}; right: PDGEQRF, 5 tasks, ε_tot∈{10,20,40}",
    );

    // ---------------- Left: analytical function ----------------
    println!("\n[left] analytical function with noisy model ỹ = (1+0.1·r(x))·y(t,x)");
    let app: Arc<dyn HpcApp> = Arc::new(AnalyticalApp::new(0.0));
    let tasks: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::Real(i as f64)]).collect();
    let problem = problem_from_app(Arc::clone(&app), tasks.clone());

    // Eq. 11 can dip below zero, so raw-value ratios are ill-defined;
    // report the ratio of *optimality gaps* (regret vs the true minimum)
    // instead — ≥ 1 still means the model helped. The acquisition search
    // gets a large PSO budget in both arms: with the model enabled the EI
    // surface embeds the (free) model evaluations, so a big swarm is what
    // lets the tuner exploit them — the paper's "generate large numbers of
    // samples" remark.
    for &budget in &[10usize, 20, 40] {
        let mut o_plain = opts(budget, 100 + budget as u64);
        o_plain.log_objective = false;
        o_plain.pso.particles = 80;
        o_plain.pso.iters = 80;
        let mut o_model = o_plain.clone();
        o_model.use_model_features = true;

        let r_plain = mla::tune(&problem, &o_plain);
        let r_model = mla::tune(&problem, &o_model);

        let mut wins = 0;
        let mut attained = 0;
        print!("  ε_tot={budget:<3} gap-ratio(no-model/model): ");
        for (i, task) in tasks.iter().enumerate() {
            let t = task[0].as_real();
            let (_, y_true) = AnalyticalApp::true_minimum(t, 200_000);
            let gap_plain = (r_plain.per_task[i].best_value - y_true).max(1e-6);
            let gap_model = (r_model.per_task[i].best_value - y_true).max(1e-6);
            let ratio = gap_plain / gap_model;
            if ratio >= 1.0 - 1e-9 {
                wins += 1;
            }
            if gap_model < 0.05 {
                attained += 1;
            }
            if ratio > 999.0 {
                print!(">999 ");
            } else {
                print!("{ratio:.2} ");
            }
        }
        println!("| model ≥ parity on {wins}/10 tasks, near-true min on {attained}/10");
    }

    // ---------------- Right: PDGEQRF with Eq. 7 model ----------------
    println!("\n[right] PDGEQRF with Eq. 7 model, on-the-fly (t_flop,t_msg,t_vol) fitting");
    let machine = MachineModel::cori(16);
    let qr_app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(machine, 20_000));
    let qr_tasks = random_qr_tasks(5, 20_000, 21);
    let qr_problem = problem_from_app(Arc::clone(&qr_app), qr_tasks.clone());

    println!(
        "{:>8} {:>30} {:>16}",
        "ε_tot", "per-task ratio (no-model/model)", "tasks with ≥1"
    );
    for &budget in &[10usize, 20, 40] {
        let mut o_plain = opts(budget, 300 + budget as u64);
        o_plain.runs_per_eval = 3;
        let mut o_model = o_plain.clone();
        o_model.use_model_features = true;
        o_model.fit_model_coefficients = true;

        let r_plain = mla::tune(&qr_problem, &o_plain);
        let r_model = mla::tune(&qr_problem, &o_model);

        let ratios: Vec<f64> = (0..qr_tasks.len())
            .map(|i| r_plain.per_task[i].best_value / r_model.per_task[i].best_value)
            .collect();
        let geq = ratios.iter().filter(|&&r| r >= 1.0 - 1e-9).count();
        let txt: Vec<String> = ratios.iter().map(|r| format!("{r:.2}")).collect();
        println!("{:>8} {:>30} {:>13}/5", budget, txt.join(" "), geq);
    }

    println!("\nShape check vs paper: the model helps most at the smallest budget and on the");
    println!("hardest (large-t) analytical tasks; the effect fades as ε_tot grows.");
}
