//! Session-driven MLA stepping: an ask/tell ("suggest/report") interface
//! over the same surrogate machinery as [`crate::mla::tune`].
//!
//! The batch MLA loop owns the objective function and drives evaluation
//! itself. A [`TunerSession`] inverts that control flow for serving: the
//! caller (a remote client, a workflow engine, a human) asks for a
//! configuration to try ([`TunerSession::suggest`]), measures it however it
//! likes, and reports the outcome back ([`TunerSession::report`]). The
//! session keeps the joint evaluation archive and refits the LCM surrogate
//! *lazily* — only when a suggestion is requested after new reports have
//! landed — so bursts of reports cost one refit, not one per report.
//!
//! Suggestions are deterministic in `(seed, suggestion counter)` given the
//! same report history, which is what lets a serve backend replay a
//! journal and reconstruct identical session state.

use crate::mla::{build_inputs, search_task, transform_objective, Evaluations, SurrogateInputs};
use crate::options::MlaOptions;
use crate::problem::TuningProblem;
use gptune_gp::{IncrementalLcm, LcmFitOptions, ModelState};
use gptune_la::ord::feq;
use gptune_space::{sampling, Config};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed-space tag separating session randomness from the MLA/TLA streams.
const SESSION_SEED_TAG: u64 = 0x5e55_1011;

/// Why [`TunerSession::report`] rejected a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportError {
    /// Task index out of range for the session's problem.
    BadTask,
    /// Configuration arity does not match the tuning space.
    BadConfig,
    /// Output arity does not match the problem's objective count.
    BadOutputs,
    /// The `(task, config)` pair was already reported (idempotent replay).
    Duplicate,
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::BadTask => write!(f, "task index out of range"),
            ReportError::BadConfig => write!(f, "configuration arity mismatch"),
            ReportError::BadOutputs => write!(f, "output arity mismatch"),
            ReportError::Duplicate => write!(f, "duplicate report"),
        }
    }
}

/// A portable image of a session's durable state: everything a server
/// needs to rebuild an equivalent [`TunerSession`] after an eviction or a
/// restart, given the same problem and options. The surrogate itself is
/// *not* captured — it is a deterministic function of the history and is
/// refit lazily on the first post-restore suggest. Under an incremental
/// [`gptune_gp::RefitSchedule`], the small [`ModelState`] replay recipe
/// rides along so the restored surrogate (last full fit + extensions)
/// comes out bit-identical instead of collapsing to a fresh full refit.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Suggestion counter at capture time (keeps the post-restore
    /// suggestion stream aligned with the pre-eviction one).
    pub n_suggested: u64,
    /// Refit counter at capture time (the refit seed is salted by this,
    /// so restoring it keeps the next surrogate fit bit-identical).
    pub n_refits: u64,
    /// Accepted reports in arrival order: `(task, config, outputs)`.
    pub history: Vec<(usize, Config, Vec<f64>)>,
    /// Incremental-surrogate replay recipe; `None` under the default
    /// always-full schedule (or when the active-set cap has engaged), in
    /// which case restore refits from history exactly as before.
    pub model_state: Option<ModelState>,
}

/// An ask/tell tuning session over one [`TuningProblem`].
pub struct TunerSession {
    problem: TuningProblem,
    opts: MlaOptions,
    evals: Evaluations,
    /// Remaining initial-design configurations per task (served in order).
    initial: Vec<Vec<Config>>,
    /// Persistent surrogate: refit fully or extended incrementally per
    /// [`MlaOptions::refit`]; marked stale by every accepted report.
    surrogate: IncrementalLcm,
    /// Inputs matching the surrogate's last update (for acquisition search).
    inputs: Option<SurrogateInputs>,
    dirty: bool,
    n_suggested: u64,
    n_refits: u64,
    /// Wire request id of the in-flight serve request, if any; session
    /// spans carry it while set so server traces correlate with the
    /// client call that caused the work.
    request_id: Option<String>,
}

impl TunerSession {
    /// Opens a session. The per-task initial design (an LHS of
    /// [`MlaOptions::initial_samples`] configurations) is drawn up front;
    /// suggestions serve it first and switch to model-guided search once
    /// it is exhausted and at least two finite outcomes are known.
    pub fn new(problem: TuningProblem, opts: MlaOptions) -> TunerSession {
        let mut rng = StdRng::seed_from_u64(opts.seed ^ SESSION_SEED_TAG);
        let n_init = opts.initial_samples();
        let initial: Vec<Vec<Config>> = (0..problem.n_tasks())
            .map(|_| {
                let mut q = sampling::sample_space(&problem.tuning_space, n_init, &mut rng, 200);
                q.reverse(); // serve in design order by popping from the back
                q
            })
            .collect();
        let surrogate = IncrementalLcm::new(opts.refit);
        TunerSession {
            problem,
            opts,
            evals: Evaluations::new(),
            initial,
            surrogate,
            inputs: None,
            dirty: false,
            n_suggested: 0,
            n_refits: 0,
            request_id: None,
        }
    }

    /// Rebuilds a session from a [`SessionSnapshot`]. The snapshot's
    /// history is replayed through [`TunerSession::report`] (duplicates
    /// are absorbed, so replaying an at-least-once archive is safe); any
    /// other rejection means the snapshot does not match `problem` and is
    /// returned as the error. The suggestion counter resumes from the
    /// snapshot, so the restored session continues the same deterministic
    /// suggestion stream it would have produced without the eviction.
    pub fn restore(
        problem: TuningProblem,
        opts: MlaOptions,
        snapshot: &SessionSnapshot,
    ) -> Result<TunerSession, ReportError> {
        let mut s = TunerSession::new(problem, opts);
        for (task, config, outputs) in &snapshot.history {
            match s.report(*task, config.clone(), outputs.clone()) {
                Ok(()) | Err(ReportError::Duplicate) => {}
                Err(e) => return Err(e),
            }
        }
        s.n_suggested = s.n_suggested.max(snapshot.n_suggested);
        s.n_refits = snapshot.n_refits;
        if let Some(state) = &snapshot.model_state {
            // The surrogate covers the first `state.y.len()` points of the
            // history (reports accepted after the last refit were not yet
            // absorbed at capture time).
            let (inputs, y) = build_inputs(&s.problem, &s.evals, 0, &s.opts);
            let m = state.y.len();
            if m <= inputs.xs.len()
                && s.surrogate
                    .restore(
                        &inputs.xs[..m],
                        &inputs.task_of[..m],
                        s.problem.n_tasks(),
                        &s.opts.lcm,
                        state,
                    )
                    .is_ok()
            {
                // The restored session is clean iff the surrogate absorbed
                // every replayed output — exactly the live session's state
                // at capture time. A stale (or failed) restore refits
                // lazily on the next suggest, as before.
                s.dirty = y.len() != m || y.iter().zip(&state.y).any(|(a, b)| !feq(*a, *b));
                s.inputs = Some(SurrogateInputs {
                    xs: inputs.xs[..m].to_vec(),
                    task_of: inputs.task_of[..m].to_vec(),
                    ..inputs
                });
            }
        }
        Ok(s)
    }

    /// Captures the durable state of this session (see
    /// [`SessionSnapshot`]). Cheap relative to a refit: one clone of the
    /// evaluation archive.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            n_suggested: self.n_suggested,
            n_refits: self.n_refits,
            history: self
                .history()
                .map(|(t, c, o)| (t, c.clone(), o.to_vec()))
                .collect(),
            model_state: self.surrogate.state(),
        }
    }

    /// The session's problem.
    pub fn problem(&self) -> &TuningProblem {
        &self.problem
    }

    /// Attaches (or clears) the wire request id for subsequent session
    /// operations: `suggest`/`report`/refit spans emitted while it is set
    /// carry a `rid` field, so `trace_tool correlate` can link server-side
    /// modeling work back to the client request that triggered it. The
    /// serve layer sets this once per dispatched request; embedded users
    /// can ignore it. Purely observational — never consulted by the
    /// tuning logic, so determinism is unaffected.
    pub fn set_request_id(&mut self, rid: Option<String>) {
        self.request_id = rid;
    }

    /// Tags a session-level span with the request id when one is set.
    /// (Takes the span rather than the name so every span name stays a
    /// literal at its call site, per the GX602 taxonomy lint.)
    fn tag_rid(&self, mut span: gptune_trace::Span) -> gptune_trace::Span {
        if let Some(rid) = &self.request_id {
            span.add("rid", rid.as_str());
        }
        span
    }

    /// Suggests a configuration to evaluate for `task_idx`. Returns `None`
    /// only for an out-of-range task. Serves the initial design first,
    /// then refits the surrogate (if reports landed since the last fit)
    /// and searches the acquisition; falls back to random sampling while
    /// the archive is too small to model.
    pub fn suggest(&mut self, task_idx: usize) -> Option<Config> {
        if task_idx >= self.problem.n_tasks() {
            return None;
        }
        let _span = self
            .tag_rid(gptune_trace::global().span("gptune.core.session.suggest"))
            .with("task", task_idx);
        self.n_suggested += 1;
        let mut rng = StdRng::seed_from_u64(
            (self.opts.seed ^ SESSION_SEED_TAG)
                .wrapping_add(0x5bd1e995)
                .wrapping_mul(self.n_suggested)
                .wrapping_add(task_idx as u64 * 104_729),
        );

        // Initial design first, skipping anything already reported.
        while let Some(cfg) = self.initial[task_idx].pop() {
            if !self.evals.contains(task_idx, &cfg) {
                return Some(cfg);
            }
        }

        // Model-guided search once there is anything worth fitting.
        let n_finite = self
            .evals
            .outputs
            .iter()
            .filter(|o| o.first().is_some_and(|v| v.is_finite()))
            .count();
        if n_finite >= 2 {
            self.refit_if_dirty();
            if let (Some(model), Some(inputs)) = (self.surrogate.model(), self.inputs.as_ref()) {
                let y_best_model = self
                    .evals
                    .points
                    .iter()
                    .zip(&self.evals.outputs)
                    .filter(|((t, _), o)| *t == task_idx && o[0].is_finite())
                    .map(|(_, o)| transform_objective(o[0], self.opts.log_objective))
                    .fold(f64::INFINITY, f64::min);
                let cfg = search_task(
                    &self.problem,
                    model,
                    inputs,
                    &self.evals,
                    task_idx,
                    y_best_model,
                    &self.opts,
                    &mut rng,
                );
                if !self.evals.contains(task_idx, &cfg) {
                    return Some(cfg);
                }
            }
        }

        // Fallback: a fresh random feasible sample (duplicates allowed as
        // a last resort so suggest never fails on a valid task).
        let mut fresh = sampling::sample_space(&self.problem.tuning_space, 1, &mut rng, 500);
        fresh.pop().or_else(|| {
            let mid = vec![0.5; self.problem.beta()];
            Some(self.problem.tuning_space.denormalize(&mid))
        })
    }

    /// Reports a measured outcome. Duplicate `(task, config)` pairs are
    /// rejected as [`ReportError::Duplicate`] — replaying a journal is
    /// idempotent. An accepted report marks the surrogate stale; the next
    /// [`TunerSession::suggest`] refits once.
    pub fn report(
        &mut self,
        task_idx: usize,
        config: Config,
        outputs: Vec<f64>,
    ) -> Result<(), ReportError> {
        let _span = self
            .tag_rid(gptune_trace::global().span("gptune.core.session.report"))
            .with("task", task_idx);
        if task_idx >= self.problem.n_tasks() {
            return Err(ReportError::BadTask);
        }
        if config.len() != self.problem.beta() {
            return Err(ReportError::BadConfig);
        }
        if outputs.len() != self.problem.n_objectives {
            return Err(ReportError::BadOutputs);
        }
        if self.evals.contains(task_idx, &config) {
            return Err(ReportError::Duplicate);
        }
        // Censored evaluations (failed runs reported as non-finite) are a
        // model-health signal: a rising rate means the surrogate is being
        // fit around a shrinking feasible region.
        if outputs.iter().any(|v| !v.is_finite()) {
            gptune_trace::global()
                .counter("gptune.core.evals_censored")
                .add(1);
        }
        self.evals.points.push((task_idx, config));
        self.evals.outputs.push(outputs);
        self.dirty = true;
        Ok(())
    }

    /// All reported evaluations, in arrival order.
    pub fn history(&self) -> impl Iterator<Item = (usize, &Config, &[f64])> {
        self.evals
            .points
            .iter()
            .zip(&self.evals.outputs)
            .map(|((t, c), o)| (*t, c, o.as_slice()))
    }

    /// Number of accepted reports.
    pub fn n_reports(&self) -> usize {
        self.evals.points.len()
    }

    /// Number of suggestions served.
    pub fn n_suggested(&self) -> u64 {
        self.n_suggested
    }

    /// Number of surrogate refits performed (lazy: at most one per
    /// suggest, regardless of how many reports landed in between).
    pub fn n_refits(&self) -> u64 {
        self.n_refits
    }

    /// Best finite outcome for a task, if any.
    pub fn best_for_task(&self, task_idx: usize) -> Option<(&Config, f64)> {
        self.evals
            .points
            .iter()
            .zip(&self.evals.outputs)
            .filter(|((t, _), o)| *t == task_idx && o.first().is_some_and(|v| v.is_finite()))
            .map(|((_, c), o)| (c, o[0]))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    fn refit_if_dirty(&mut self) {
        if !self.dirty && self.surrogate.model().is_some() {
            return;
        }
        let _span = self.tag_rid(gptune_trace::global().span("gptune.core.session.refit"));
        let (inputs, y) = build_inputs(&self.problem, &self.evals, 0, &self.opts);
        let lcm_opts = LcmFitOptions {
            seed: self.opts.lcm.seed.wrapping_add(self.n_refits * 7919),
            ..self.opts.lcm.clone()
        };
        self.surrogate.update(
            &inputs.xs,
            &inputs.task_of,
            &y,
            self.problem.n_tasks(),
            &lcm_opts,
        );
        self.inputs = Some(inputs);
        self.dirty = false;
        self.n_refits += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_space::{Param, Space, Value};

    fn toy(delta: usize) -> TuningProblem {
        let ts = Space::builder().param(Param::real("t", 0.0, 4.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        let tasks: Vec<Config> = (0..delta).map(|i| vec![Value::Real(i as f64)]).collect();
        TuningProblem::new("session-toy", ts, ps, tasks, |t, x, _| {
            vec![(x[0].as_real() - 0.1 * t[0].as_real() - 0.2).powi(2)]
        })
    }

    fn fast_opts() -> MlaOptions {
        let mut o = MlaOptions::default().with_budget(8).with_seed(11);
        o.n_initial = Some(3);
        o.lcm.n_starts = 1;
        o.lcm.lbfgs.max_iters = 10;
        o.pso.particles = 10;
        o.pso.iters = 8;
        o.log_objective = false;
        o
    }

    fn measure(p: &TuningProblem, t: usize, cfg: &Config) -> Vec<f64> {
        p.evaluate(t, cfg, 0)
    }

    #[test]
    fn serves_initial_design_then_model_guided() {
        let p = toy(2);
        let mut s = TunerSession::new(p.clone(), fast_opts());
        for round in 0..5 {
            let cfg = s.suggest(0).unwrap();
            assert!(p.tuning_space.is_valid(&cfg), "round {round}");
            let y = measure(&p, 0, &cfg);
            s.report(0, cfg, y).unwrap();
        }
        assert_eq!(s.n_reports(), 5);
        // 3 initial + 2 model-guided suggestions → at least one refit.
        assert!(s.n_refits() >= 1);
        assert!(s.best_for_task(0).is_some());
    }

    #[test]
    fn report_validates_and_dedups() {
        let p = toy(1);
        let mut s = TunerSession::new(p, fast_opts());
        let cfg = vec![Value::Real(0.5)];
        assert_eq!(
            s.report(3, cfg.clone(), vec![1.0]),
            Err(ReportError::BadTask)
        );
        assert_eq!(s.report(0, vec![], vec![1.0]), Err(ReportError::BadConfig));
        assert_eq!(
            s.report(0, cfg.clone(), vec![]),
            Err(ReportError::BadOutputs)
        );
        assert_eq!(s.report(0, cfg.clone(), vec![1.0]), Ok(()));
        assert_eq!(
            s.report(0, cfg.clone(), vec![1.0]),
            Err(ReportError::Duplicate)
        );
        assert_eq!(s.n_reports(), 1);
    }

    #[test]
    fn suggestions_replay_deterministically() {
        let p = toy(2);
        let run = || {
            let mut s = TunerSession::new(p.clone(), fast_opts());
            let mut seen = Vec::new();
            for i in 0..6 {
                let t = i % 2;
                let cfg = s.suggest(t).unwrap();
                let y = measure(&p, t, &cfg);
                s.report(t, cfg.clone(), y).unwrap();
                seen.push((t, cfg));
            }
            seen
        };
        assert_eq!(run(), run(), "identical replay → identical suggestions");
    }

    #[test]
    fn refits_are_lazy_across_report_bursts() {
        let p = toy(1);
        let mut s = TunerSession::new(p.clone(), fast_opts());
        // Exhaust the initial design (no refits needed for these).
        for _ in 0..3 {
            let cfg = s.suggest(0).unwrap();
            let y = measure(&p, 0, &cfg);
            s.report(0, cfg, y).unwrap();
        }
        assert_eq!(s.n_refits(), 0);
        // One model-guided suggest → exactly one refit.
        let cfg = s.suggest(0).unwrap();
        assert_eq!(s.n_refits(), 1);
        let y = measure(&p, 0, &cfg);
        s.report(0, cfg, y).unwrap();
        // A burst of external reports costs nothing until the next suggest.
        for x in [0.31, 0.57, 0.83] {
            let cfg = vec![Value::Real(x)];
            let y = measure(&p, 0, &cfg);
            s.report(0, cfg, y).unwrap();
        }
        assert_eq!(s.n_refits(), 1);
        let _ = s.suggest(0).unwrap();
        assert_eq!(s.n_refits(), 2);
    }

    #[test]
    fn out_of_range_task_yields_none() {
        let p = toy(1);
        let mut s = TunerSession::new(p, fast_opts());
        assert!(s.suggest(5).is_none());
    }

    #[test]
    fn snapshot_restore_roundtrips_history_and_counter() {
        let p = toy(2);
        let mut s = TunerSession::new(p.clone(), fast_opts());
        for i in 0..5 {
            let t = i % 2;
            let cfg = s.suggest(t).unwrap();
            let y = measure(&p, t, &cfg);
            s.report(t, cfg, y).unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.n_suggested, 5);
        assert_eq!(snap.history.len(), 5);

        let r = TunerSession::restore(p.clone(), fast_opts(), &snap).unwrap();
        assert_eq!(r.n_reports(), 5);
        assert_eq!(r.n_suggested(), 5);
        assert_eq!(r.snapshot(), snap, "restore is lossless for durable state");
    }

    #[test]
    fn restored_session_continues_the_same_suggestion_stream() {
        let p = toy(1);
        let mut live = TunerSession::new(p.clone(), fast_opts());
        for _ in 0..4 {
            let cfg = live.suggest(0).unwrap();
            let y = measure(&p, 0, &cfg);
            live.report(0, cfg, y).unwrap();
        }
        let mut restored = TunerSession::restore(p.clone(), fast_opts(), &live.snapshot()).unwrap();
        // Both sessions now face the same (seed, counter, history) state:
        // the next suggestion must match bit-for-bit.
        assert_eq!(live.suggest(0), restored.suggest(0));
    }

    #[test]
    fn incremental_schedule_snapshot_restores_the_model_bitwise() {
        let p = toy(1);
        let mut o = fast_opts();
        o.refit = gptune_gp::RefitSchedule {
            full_every: 4,
            nll_drift: 0.0,
        };
        let mut live = TunerSession::new(p.clone(), o.clone());
        for _ in 0..6 {
            let cfg = live.suggest(0).unwrap();
            let y = measure(&p, 0, &cfg);
            live.report(0, cfg, y).unwrap();
        }
        let snap = live.snapshot();
        assert!(
            snap.model_state.is_some(),
            "incremental schedule snapshots carry a model replay recipe"
        );
        let mut restored = TunerSession::restore(p.clone(), o, &snap).unwrap();
        // The restored surrogate replays the last full fit + extensions, so
        // the mid-incremental-cycle suggestion stream continues bit-for-bit.
        for _ in 0..3 {
            let a = live.suggest(0).unwrap();
            let b = restored.suggest(0).unwrap();
            assert_eq!(a, b);
            let y = measure(&p, 0, &a);
            live.report(0, a, y.clone()).unwrap();
            restored.report(0, b, y).unwrap();
        }
        assert_eq!(live.n_refits(), restored.n_refits());
    }

    #[test]
    fn default_schedule_snapshot_has_no_model_state() {
        let p = toy(1);
        let mut s = TunerSession::new(p.clone(), fast_opts());
        for _ in 0..5 {
            let cfg = s.suggest(0).unwrap();
            let y = measure(&p, 0, &cfg);
            s.report(0, cfg, y).unwrap();
        }
        assert!(s.n_refits() >= 1);
        assert!(
            s.snapshot().model_state.is_none(),
            "always-full schedule keeps snapshots exactly as before"
        );
    }

    #[test]
    fn restore_rejects_a_snapshot_from_another_problem() {
        let p1 = toy(1);
        let mut s = TunerSession::new(p1.clone(), fast_opts());
        s.report(0, vec![Value::Real(0.5)], vec![1.0]).unwrap();
        let mut snap = s.snapshot();
        snap.history.push((7, vec![Value::Real(0.5)], vec![1.0]));
        let err = match TunerSession::restore(p1, fast_opts(), &snap) {
            Ok(_) => panic!("mismatched snapshot must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err, ReportError::BadTask);
    }

    #[test]
    fn session_spans_carry_the_request_id_and_censored_reports_count() {
        use gptune_trace::Field;
        let prev = gptune_trace::install(gptune_trace::Tracer::ring(1024));
        let p = toy(1);
        let mut s = TunerSession::new(p, fast_opts());
        s.set_request_id(Some("rid-7".into()));
        let cfg = s.suggest(0).unwrap();
        s.report(0, cfg, vec![f64::INFINITY]).unwrap();
        s.set_request_id(None);
        let _ = s.suggest(0);
        let g = gptune_trace::global();
        let snap = g.metrics();
        let data = g.drain();
        gptune_trace::install(prev);
        assert_eq!(snap.counter("gptune.core.evals_censored"), Some(1));
        let rid = Field::Str("rid-7".into());
        let names_with_rid: Vec<&str> = data
            .events
            .iter()
            .filter(|e| e.field("rid") == Some(&rid))
            .map(|e| e.name.as_ref())
            .collect();
        assert!(names_with_rid.contains(&"gptune.core.session.suggest"));
        assert!(names_with_rid.contains(&"gptune.core.session.report"));
        // After clearing the rid, new session spans are untagged.
        assert!(data
            .events
            .iter()
            .filter(|e| e.name.as_ref().starts_with("gptune.core.session."))
            .any(|e| e.field("rid").is_none()));
    }

    #[test]
    fn restore_absorbs_duplicate_archive_rows() {
        let p = toy(1);
        let row = (0usize, vec![Value::Real(0.4)], vec![2.0]);
        let snap = SessionSnapshot {
            n_suggested: 1,
            n_refits: 0,
            history: vec![row.clone(), row],
            model_state: None,
        };
        let s = TunerSession::restore(p, fast_opts(), &snap).unwrap();
        assert_eq!(s.n_reports(), 1, "at-least-once archive replays dedup");
    }
}
