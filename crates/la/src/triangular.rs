//! Triangular solves (forward/backward substitution).
//!
//! These are the building blocks of the Cholesky-based covariance solves in
//! the GP/LCM code: `Σ⁻¹ y` is computed as two triangular solves against the
//! Cholesky factor `L`.

use crate::ord::feq;
use crate::Matrix;

/// Solves `L x = b` in place where `L` is lower triangular (only the lower
/// triangle of `l` is referenced).
///
/// # Panics
/// Panics on dimension mismatch or zero diagonal (callers guarantee a
/// successfully factorized `L`).
pub fn solve_lower(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    assert!(l.is_square() && b.len() == n, "solve_lower: dims");
    for i in 0..n {
        let row = l.row(i);
        let mut s = b[i];
        for (j, bj) in b[..i].iter().enumerate() {
            s -= row[j] * bj;
        }
        let d = row[i];
        assert!(!feq(d, 0.0), "solve_lower: zero diagonal at {i}");
        b[i] = s / d;
    }
}

/// Solves `Lᵀ x = b` in place where `L` is lower triangular.
pub fn solve_lower_transpose(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    assert!(l.is_square() && b.len() == n, "solve_lower_transpose: dims");
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= l.get(j, i) * b[j];
        }
        let d = l.get(i, i);
        assert!(!feq(d, 0.0), "solve_lower_transpose: zero diagonal at {i}");
        b[i] = s / d;
    }
}

/// Solves `U x = b` in place where `U` is upper triangular (only the upper
/// triangle of `u` is referenced).
pub fn solve_upper(u: &Matrix, b: &mut [f64]) {
    let n = u.rows();
    assert!(u.is_square() && b.len() == n, "solve_upper: dims");
    for i in (0..n).rev() {
        let row = u.row(i);
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= row[j] * b[j];
        }
        let d = row[i];
        assert!(!feq(d, 0.0), "solve_upper: zero diagonal at {i}");
        b[i] = s / d;
    }
}

/// Solves `L X = B` row-sweep-wise, overwriting `B` with the solution.
/// This is the `trsm` used by the blocked Cholesky panel update and the
/// batched GP prediction.
///
/// Row `i` of `B` is staged in an accumulator buffer so the already-solved
/// rows can be read through plain shared borrows and combined four at a
/// time; every element still sees the same ascending-`j` subtraction
/// sequence as [`solve_lower`], so each column matches the corresponding
/// vector solve.
pub fn solve_lower_matrix(l: &Matrix, b: &mut Matrix) {
    let n = l.rows();
    assert!(l.is_square() && b.rows() == n, "solve_lower_matrix: dims");
    let mut acc = vec![0.0; b.cols()];
    for i in 0..n {
        let li = l.row(i);
        let diag = li[i];
        assert!(!feq(diag, 0.0), "solve_lower_matrix: zero diagonal at {i}");
        acc.copy_from_slice(b.row(i));
        let mut j = 0;
        while j + 4 <= i {
            let (l0, l1, l2, l3) = (li[j], li[j + 1], li[j + 2], li[j + 3]);
            let (r0, r1, r2, r3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
            for ((((x, &y0), &y1), &y2), &y3) in acc.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3) {
                *x = (((*x - l0 * y0) - l1 * y1) - l2 * y2) - l3 * y3;
            }
            j += 4;
        }
        while j < i {
            let lij = li[j];
            if !feq(lij, 0.0) {
                for (x, &y) in acc.iter_mut().zip(b.row(j)) {
                    *x -= lij * y;
                }
            }
            j += 1;
        }
        for (dst, &x) in b.row_mut(i).iter_mut().zip(&acc) {
            *dst = x / diag;
        }
    }
}

/// Solves `X Lᵀ = B` in place (right-side trsm with the transposed factor),
/// i.e. each row `x` of `X` satisfies `L x = b` for the matching row of `B`.
pub fn solve_lower_transpose_right(l: &Matrix, b: &mut Matrix) {
    let n = l.rows();
    assert!(
        l.is_square() && b.cols() == n,
        "solve_lower_transpose_right: dims"
    );
    for r in 0..b.rows() {
        let row = b.row_mut(r);
        // Solve L x = rowᵀ by forward substitution over columns.
        for i in 0..n {
            let mut s = row[i];
            for j in 0..i {
                s -= l.get(i, j) * row[j];
            }
            row[i] = s / l.get(i, i);
        }
    }
}

/// Solves `Lᵀ X = B` for a multi-RHS `B`, overwriting `B` with the
/// solution. Row-sweep form: every inner update is a stride-1 combination
/// across all right-hand sides, which is what makes the blocked BLAS-3
/// prediction path vectorize. The per-column operation order matches
/// [`solve_lower_transpose`] exactly (ascending `j` from `i+1`), so each
/// column equals the corresponding vector solve.
pub fn solve_lower_transpose_matrix(l: &Matrix, b: &mut Matrix) {
    let n = l.rows();
    assert!(
        l.is_square() && b.rows() == n,
        "solve_lower_transpose_matrix: dims"
    );
    let mut acc = vec![0.0; b.cols()];
    for i in (0..n).rev() {
        acc.copy_from_slice(b.row(i));
        let mut j = i + 1;
        while j + 4 <= n {
            let (l0, l1, l2, l3) = (
                l.get(j, i),
                l.get(j + 1, i),
                l.get(j + 2, i),
                l.get(j + 3, i),
            );
            let (r0, r1, r2, r3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
            for ((((x, &y0), &y1), &y2), &y3) in acc.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3) {
                *x = (((*x - l0 * y0) - l1 * y1) - l2 * y2) - l3 * y3;
            }
            j += 4;
        }
        while j < n {
            let lji = l.get(j, i);
            if !feq(lji, 0.0) {
                for (x, &y) in acc.iter_mut().zip(b.row(j)) {
                    *x -= lji * y;
                }
            }
            j += 1;
        }
        let d = l.get(i, i);
        assert!(
            !feq(d, 0.0),
            "solve_lower_transpose_matrix: zero diagonal at {i}"
        );
        for (dst, &x) in b.row_mut(i).iter_mut().zip(&acc) {
            *dst = x / d;
        }
    }
}

/// Inverts a lower-triangular matrix, returning a fresh matrix.
///
/// Row-sweep forward elimination on `L X = I`: row `i` of `X` is
/// `(e_i − Σ_{j<i} L_ij · row_j) / L_ii`, with the already-finalized rows
/// combined four at a time into an accumulator. Row `j` of `X` is
/// structurally zero past its diagonal, so each inner update stops at
/// column `j` (plus a short scalar fringe for the block's trailing
/// diagonals) — `n³/6` multiply-adds in stride-1 pipelined loops instead
/// of a dot product per entry, whose call overhead dominates for the short
/// slices near the diagonal.
pub fn invert_lower(l: &Matrix) -> Matrix {
    let n = l.rows();
    assert!(l.is_square());
    let mut x = Matrix::zeros(n, n);
    let mut acc = vec![0.0; n];
    for i in 0..n {
        let li = l.row(i);
        let d = li[i];
        assert!(!feq(d, 0.0), "invert_lower: zero diagonal at {i}");
        acc[..i].fill(0.0);
        let mut j = 0;
        while j + 4 <= i {
            let (l0, l1, l2, l3) = (li[j], li[j + 1], li[j + 2], li[j + 3]);
            let (r0, r1, r2, r3) = (x.row(j), x.row(j + 1), x.row(j + 2), x.row(j + 3));
            for ((((a, &y0), &y1), &y2), &y3) in
                acc[..=j].iter_mut().zip(r0).zip(r1).zip(r2).zip(r3)
            {
                *a -= (l0 * y0 + l1 * y1) + (l2 * y2 + l3 * y3);
            }
            // Columns j+1..j+3 only involve the rows whose diagonal they
            // have reached.
            acc[j + 1] -= l1 * r1[j + 1] + l2 * r2[j + 1] + l3 * r3[j + 1];
            acc[j + 2] -= l2 * r2[j + 2] + l3 * r3[j + 2];
            acc[j + 3] -= l3 * r3[j + 3];
            j += 4;
        }
        while j < i {
            let lij = li[j];
            if !feq(lij, 0.0) {
                for (a, &y) in acc[..=j].iter_mut().zip(x.row(j)) {
                    *a -= lij * y;
                }
            }
            j += 1;
        }
        let xi = x.row_mut(i);
        for (dst, &a) in xi[..i].iter_mut().zip(&acc) {
            *dst = a / d;
        }
        xi[i] = 1.0 / d;
    }
    x
}

/// Pre-vectorization [`invert_lower`]: identical structure, but reduced
/// with the strict sequential [`crate::blas::dot_reference`] fold. Retained
/// as the baseline for the reference (pre-refactor) modeling paths and the
/// perf benchmarks.
pub fn invert_lower_reference(l: &Matrix) -> Matrix {
    let n = l.rows();
    assert!(l.is_square());
    let mut inv = Matrix::zeros(n, n);
    let mut col = vec![0.0; n];
    for j in 0..n {
        let djj = l.get(j, j);
        assert!(!feq(djj, 0.0), "invert_lower: zero diagonal at {j}");
        col[j] = 1.0 / djj;
        for i in (j + 1)..n {
            let row = l.row(i);
            let s = -crate::blas::dot_reference(&row[j..i], &col[j..i]);
            let d = row[i];
            assert!(!feq(d, 0.0), "invert_lower: zero diagonal at {i}");
            col[i] = s / d;
        }
        for i in j..n {
            inv.set(i, j, col[i]);
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::matmul;

    fn lower3() -> Matrix {
        Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[-1.0, 2.0, 4.0]])
    }

    #[test]
    fn solve_lower_known() {
        let l = lower3();
        // b = L * [1, 2, 3]^T
        let mut b = vec![2.0, 7.0, 15.0];
        solve_lower(&l, &mut b);
        assert!((b[0] - 1.0).abs() < 1e-14);
        assert!((b[1] - 2.0).abs() < 1e-14);
        assert!((b[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn solve_lower_transpose_known() {
        let l = lower3();
        let lt = l.transpose();
        // b = L^T * x for x = [1, -1, 2]
        let x = [1.0, -1.0, 2.0];
        let mut b = vec![0.0; 3];
        for i in 0..3 {
            b[i] = (0..3).map(|j| lt.get(i, j) * x[j]).sum();
        }
        solve_lower_transpose(&l, &mut b);
        for i in 0..3 {
            assert!((b[i] - x[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn solve_upper_known() {
        let u = lower3().transpose();
        let x = [2.0, 0.5, -1.0];
        let mut b = vec![0.0; 3];
        for i in 0..3 {
            b[i] = (0..3).map(|j| u.get(i, j) * x[j]).sum();
        }
        solve_upper(&u, &mut b);
        for i in 0..3 {
            assert!((b[i] - x[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn solve_lower_matrix_matches_vector_solves() {
        let l = lower3();
        let x_true = Matrix::from_rows(&[&[1.0, 4.0], &[2.0, 5.0], &[3.0, 6.0]]);
        let mut b = matmul(&l, &x_true);
        solve_lower_matrix(&l, &mut b);
        for i in 0..3 {
            for j in 0..2 {
                assert!((b.get(i, j) - x_true.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_right_transpose() {
        let l = lower3();
        // X L^T = B with X known
        let x_true = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, -1.0, 1.0]]);
        let mut b = matmul(&x_true, &l.transpose());
        solve_lower_transpose_right(&l, &mut b);
        for i in 0..2 {
            for j in 0..3 {
                assert!((b.get(i, j) - x_true.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn invert_lower_gives_identity() {
        let l = lower3();
        let inv = invert_lower(&l);
        let prod = matmul(&l, &inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(i, j) - expect).abs() < 1e-13);
            }
        }
        // Inverse of lower triangular is lower triangular.
        assert_eq!(inv.get(0, 1), 0.0);
        assert_eq!(inv.get(0, 2), 0.0);
        assert_eq!(inv.get(1, 2), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_diagonal_panics() {
        let l = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0]]);
        let mut b = vec![1.0, 1.0];
        solve_lower(&l, &mut b);
    }
}
