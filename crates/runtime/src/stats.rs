//! Tuner phase statistics — the "stats:" breakdown of GPTune runlogs.
//!
//! Table 3 of the paper reports, per tuning run, the wall time spent in the
//! objective function, the modeling phase, and the search phase. Our
//! objective functions are simulators that return *virtual* application
//! seconds, so the objective phase is tracked in virtual seconds while
//! modeling/search are real wall-clock measurements of this implementation.

use crate::fault::FailureKind;
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// The three phases of an MLA iteration (paper Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Black-box function evaluation (application runs).
    Objective,
    /// LCM hyperparameter optimization.
    Modeling,
    /// Acquisition-function maximization.
    Search,
}

/// Immutable snapshot of accumulated statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Virtual seconds spent inside simulated application runs.
    pub objective_virtual_secs: f64,
    /// Wall-clock spent dispatching/evaluating the objective.
    pub objective_wall: Duration,
    /// Wall-clock spent in the modeling phase.
    pub modeling_wall: Duration,
    /// Wall-clock spent in the search phase.
    pub search_wall: Duration,
    /// Number of objective evaluations.
    pub n_evals: usize,
    /// Evaluations whose objective panicked.
    pub n_crashed: usize,
    /// Evaluations expired by the watchdog deadline.
    pub n_timed_out: usize,
    /// Evaluations that completed with an unusable measurement.
    pub n_invalid: usize,
    /// Evaluations that exhausted their transient retries.
    pub n_transient: usize,
    /// Total retry executions across all evaluations.
    pub n_retries: usize,
}

impl PhaseStats {
    /// Total tuner time: virtual objective seconds plus real
    /// modeling/search seconds — the "total" column of Table 3.
    pub fn total_secs(&self) -> f64 {
        self.objective_virtual_secs
            + self.modeling_wall.as_secs_f64()
            + self.search_wall.as_secs_f64()
    }

    /// Total failed evaluations across all classifications.
    pub fn n_failed(&self) -> usize {
        self.n_crashed + self.n_timed_out + self.n_invalid + self.n_transient
    }

    /// One-line report in the GPTune runlog style. Runs that saw
    /// failures or retries append their failure profile.
    pub fn report(&self) -> String {
        let mut line = format!(
            "stats: total {:.1}s | objective {:.1}s ({} evals) | modeling {:.3}s | search {:.3}s",
            self.total_secs(),
            self.objective_virtual_secs,
            self.n_evals,
            self.modeling_wall.as_secs_f64(),
            self.search_wall.as_secs_f64()
        );
        if self.n_failed() + self.n_retries > 0 {
            line.push_str(&format!(
                " | faults: {} crashed, {} timed-out, {} invalid, {} transient, {} retries",
                self.n_crashed, self.n_timed_out, self.n_invalid, self.n_transient, self.n_retries
            ));
        }
        line
    }
}

/// Thread-safe accumulator for [`PhaseStats`].
#[derive(Debug, Default)]
pub struct PhaseTimer {
    inner: Mutex<PhaseStats>,
}

impl PhaseTimer {
    /// Fresh timer with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times a closure under the given phase (wall clock).
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed();
        let mut s = self.inner.lock();
        match phase {
            Phase::Objective => s.objective_wall += dt,
            Phase::Modeling => s.modeling_wall += dt,
            Phase::Search => s.search_wall += dt,
        }
        r
    }

    /// Records a simulated application run of `virtual_secs` seconds.
    pub fn add_objective_run(&self, virtual_secs: f64) {
        let mut s = self.inner.lock();
        s.objective_virtual_secs += virtual_secs.max(0.0);
        s.n_evals += 1;
    }

    /// Records a classified evaluation failure.
    pub fn add_failure(&self, kind: FailureKind) {
        let mut s = self.inner.lock();
        match kind {
            FailureKind::Crashed => s.n_crashed += 1,
            FailureKind::TimedOut => s.n_timed_out += 1,
            FailureKind::Invalid => s.n_invalid += 1,
            FailureKind::Transient => s.n_transient += 1,
        }
    }

    /// Records `n` retry executions (attempts beyond the first).
    pub fn add_retries(&self, n: usize) {
        self.inner.lock().n_retries += n;
    }

    /// Current snapshot.
    pub fn snapshot(&self) -> PhaseStats {
        *self.inner.lock()
    }

    /// Resets every counter.
    pub fn reset(&self) {
        *self.inner.lock() = PhaseStats::default();
    }

    /// Overwrites the accumulated counters — used when resuming an
    /// interrupted run from a checkpoint, so the final `stats:` line
    /// covers the whole run rather than only the post-resume portion.
    pub fn restore(&self, s: PhaseStats) {
        *self.inner.lock() = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_virtual_objective_time() {
        let t = PhaseTimer::new();
        t.add_objective_run(1.5);
        t.add_objective_run(2.5);
        let s = t.snapshot();
        assert_eq!(s.objective_virtual_secs, 4.0);
        assert_eq!(s.n_evals, 2);
    }

    #[test]
    fn negative_virtual_time_clamped() {
        let t = PhaseTimer::new();
        t.add_objective_run(-1.0);
        assert_eq!(t.snapshot().objective_virtual_secs, 0.0);
        assert_eq!(t.snapshot().n_evals, 1);
    }

    #[test]
    fn time_measures_wall_clock() {
        let t = PhaseTimer::new();
        let out = t.time(Phase::Modeling, || {
            std::thread::sleep(Duration::from_millis(20));
            42
        });
        assert_eq!(out, 42);
        let s = t.snapshot();
        assert!(s.modeling_wall >= Duration::from_millis(15));
        assert_eq!(s.search_wall, Duration::ZERO);
    }

    #[test]
    fn total_combines_phases() {
        let t = PhaseTimer::new();
        t.add_objective_run(10.0);
        t.time(Phase::Search, || {
            std::thread::sleep(Duration::from_millis(10))
        });
        let s = t.snapshot();
        assert!(s.total_secs() >= 10.0);
        assert!(s.total_secs() < 10.5);
    }

    #[test]
    fn reset_clears_everything() {
        let t = PhaseTimer::new();
        t.add_objective_run(3.0);
        t.time(Phase::Objective, || ());
        t.reset();
        assert_eq!(t.snapshot(), PhaseStats::default());
    }

    #[test]
    fn restore_overwrites_counters() {
        let t = PhaseTimer::new();
        t.add_objective_run(1.0);
        let saved = PhaseStats {
            objective_virtual_secs: 42.0,
            n_evals: 7,
            ..Default::default()
        };
        t.restore(saved);
        assert_eq!(t.snapshot(), saved);
        // Accumulation continues on top of the restored state.
        t.add_objective_run(1.0);
        assert_eq!(t.snapshot().n_evals, 8);
    }

    #[test]
    fn report_mentions_all_phases() {
        let t = PhaseTimer::new();
        t.add_objective_run(1.0);
        let r = t.snapshot().report();
        assert!(r.contains("objective"));
        assert!(r.contains("modeling"));
        assert!(r.contains("search"));
        assert!(r.contains("1 evals"));
    }

    #[test]
    fn failure_profile_appears_only_when_faults_happened() {
        let t = PhaseTimer::new();
        t.add_objective_run(1.0);
        assert!(!t.snapshot().report().contains("faults:"));
        t.add_failure(FailureKind::Crashed);
        t.add_failure(FailureKind::TimedOut);
        t.add_failure(FailureKind::TimedOut);
        t.add_retries(3);
        let s = t.snapshot();
        assert_eq!(s.n_crashed, 1);
        assert_eq!(s.n_timed_out, 2);
        assert_eq!(s.n_retries, 3);
        assert_eq!(s.n_failed(), 3);
        let r = s.report();
        assert!(
            r.contains("faults: 1 crashed, 2 timed-out, 0 invalid, 0 transient, 3 retries"),
            "{r}"
        );
    }

    #[test]
    fn concurrent_accumulation() {
        let t = std::sync::Arc::new(PhaseTimer::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    t.add_objective_run(0.01);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = t.snapshot();
        assert_eq!(s.n_evals, 800);
        assert!((s.objective_virtual_secs - 8.0).abs() < 1e-9);
    }
}
