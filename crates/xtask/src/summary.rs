//! Per-function blocking/acquisition summaries and their propagation to
//! fixpoint over the workspace call graph.
//!
//! Calls are resolved **by name** (the workspace has no type information
//! at this layer): a call named `flush_slot` unions the summaries of
//! every workspace `fn flush_slot`. That over-approximates — which is the
//! right direction for a deadlock gate — with two deliberate carve-outs
//! to keep the noise floor at zero:
//!
//! * atomic ops carrying an `Ordering` argument were already separated by
//!   the parser (`touch.load(Ordering::Relaxed)` never resolves to
//!   `SessionStore::load`);
//! * ubiquitous std/trait method names ([`UNRESOLVED`]) are never
//!   resolved to workspace fns — `table.get(key)` must not union every
//!   workspace `fn get`.

use crate::parse::{Event, EventKind, ParsedFile};
use std::collections::BTreeMap;

/// Operations that may block the calling thread outright. `argless`
/// restricts matching to empty-argument calls where the name is too
/// generic otherwise (`h.join()` blocks; `path.join("x")` does not).
pub const BLOCKING_PRIMITIVES: &[(&str, bool, &str)] = &[
    ("read_exact", false, "socket/file read"),
    ("read_to_end", false, "socket/file read"),
    ("read_to_string", false, "file read"),
    ("write_all", false, "socket/file write"),
    ("flush", true, "socket/file flush"),
    ("sync_all", true, "fsync"),
    ("sync_data", true, "fsync"),
    ("accept", true, "blocking accept"),
    ("connect", false, "blocking connect"),
    ("shutdown", false, "socket/pool shutdown"),
    ("recv", true, "channel recv"),
    ("recv_timeout", false, "channel recv"),
    ("recv_deadline", false, "channel recv"),
    ("join", true, "thread join"),
    ("sleep", false, "sleep"),
    ("wait", false, "condvar/process wait"),
    ("wait_timeout", false, "condvar wait"),
    ("park", true, "thread park"),
];

/// Call names never resolved to workspace fns: std/prelude/trait methods
/// so common that name-level resolution would wire unrelated code
/// together (every `fmt` call would become every `impl Display`).
pub const UNRESOLVED: &[&str] = &[
    "new",
    "default",
    "clone",
    "cloned",
    "fmt",
    "from",
    "into",
    "drop",
    "name",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "min",
    "max",
    "parse",
    "as_str",
    "as_ref",
    "to_string",
    "eq",
    "cmp",
    "hash",
    "write",
    "read",
    "map",
    "filter",
    "collect",
    "contains",
    "entry",
    "take",
    "spec",
    "problem",
    "app",
    "cfg",
    "dim",
    "split",
    "spawn",
    "snapshot",
];

/// One step in a witness chain: where, and what happens there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub path: String,
    pub line: u32,
    pub func: String,
    pub what: String,
}

impl std::fmt::Display for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}:{}) {}",
            self.func, self.path, self.line, self.what
        )
    }
}

/// A witness: the chain of frames from the root function down to the
/// primitive operation that justifies the summary bit.
pub type Chain = Vec<Frame>;

/// Renders a chain as `a (f.rs:1) … -> b (g.rs:2) …`.
pub fn render_chain(chain: &Chain) -> String {
    chain
        .iter()
        .map(Frame::to_string)
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Summary of one function, valid at the current fixpoint iteration.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// `Some(chain)` when any path through the function may block.
    pub blocks: Option<Chain>,
    /// Named locks any path through the function may acquire, with one
    /// witness chain each.
    pub acquires: BTreeMap<String, Chain>,
}

/// One function in the flattened workspace.
#[derive(Debug)]
pub struct FnNode {
    pub path: String,
    pub name: String,
    pub line: u32,
    pub events: Vec<Event>,
}

/// The whole-workspace function table plus computed summaries.
pub struct Workspace {
    pub fns: Vec<FnNode>,
    by_name: BTreeMap<String, Vec<usize>>,
    pub summaries: Vec<Summary>,
}

/// Longest witness chain retained; deeper chains are truncated with the
/// head frames kept (the head is what the user must read first).
const MAX_CHAIN: usize = 8;

impl Workspace {
    /// Flattens parsed files into the function table and computes
    /// summaries to fixpoint.
    pub fn build(files: &[ParsedFile]) -> Workspace {
        let mut fns = Vec::new();
        for file in files {
            for f in &file.fns {
                fns.push(FnNode {
                    path: file.path.clone(),
                    name: f.name.clone(),
                    line: f.line,
                    events: f.events.clone(),
                });
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let mut ws = Workspace {
            summaries: vec![Summary::default(); fns.len()],
            fns,
            by_name,
        };
        ws.fixpoint();
        ws
    }

    /// Workspace fns a call name resolves to (empty for primitives,
    /// [`UNRESOLVED`] names, and externals).
    pub fn resolve(&self, name: &str) -> &[usize] {
        if UNRESOLVED.contains(&name) {
            return &[];
        }
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// The blocking primitive a call matches, if any.
    pub fn blocking_primitive(name: &str, argless: bool) -> Option<&'static str> {
        BLOCKING_PRIMITIVES
            .iter()
            .find(|(n, need_argless, _)| *n == name && (!need_argless || argless))
            .map(|(_, _, desc)| *desc)
    }

    /// Monotone propagation: `blocks` and `acquires` bits are only ever
    /// set (first witness wins, keeping output deterministic), so the
    /// loop terminates.
    fn fixpoint(&mut self) {
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let mut sum = self.summaries[i].clone();
                let (path, func) = (self.fns[i].path.clone(), self.fns[i].name.clone());
                for ev in &self.fns[i].events {
                    match &ev.kind {
                        EventKind::Acquire { lock } => {
                            sum.acquires.entry(lock.clone()).or_insert_with(|| {
                                vec![Frame {
                                    path: path.clone(),
                                    line: ev.line,
                                    func: func.clone(),
                                    what: format!("acquires `{lock}`"),
                                }]
                            });
                        }
                        EventKind::Call { name, argless } => {
                            if let Some(desc) = Self::blocking_primitive(name, *argless) {
                                sum.blocks.get_or_insert_with(|| {
                                    vec![Frame {
                                        path: path.clone(),
                                        line: ev.line,
                                        func: func.clone(),
                                        what: format!("calls `{name}` ({desc})"),
                                    }]
                                });
                                continue;
                            }
                            for &callee in self.resolve(name) {
                                let call_frame = |what: String| Frame {
                                    path: path.clone(),
                                    line: ev.line,
                                    func: func.clone(),
                                    what,
                                };
                                if sum.blocks.is_none() {
                                    if let Some(chain) = &self.summaries[callee].blocks {
                                        let mut c = vec![call_frame(format!("calls `{name}`"))];
                                        c.extend(chain.iter().cloned());
                                        c.truncate(MAX_CHAIN);
                                        sum.blocks = Some(c);
                                    }
                                }
                                for (lock, chain) in &self.summaries[callee].acquires {
                                    sum.acquires.entry(lock.clone()).or_insert_with(|| {
                                        let mut c = vec![call_frame(format!("calls `{name}`"))];
                                        c.extend(chain.iter().cloned());
                                        c.truncate(MAX_CHAIN);
                                        c
                                    });
                                }
                            }
                        }
                        EventKind::Atomic { .. } => {}
                    }
                }
                if sum.blocks.is_some() != self.summaries[i].blocks.is_some()
                    || sum.acquires.len() != self.summaries[i].acquires.len()
                {
                    changed = true;
                }
                self.summaries[i] = sum;
            }
            if !changed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn build(srcs: &[(&str, &str)]) -> Workspace {
        let lexed: Vec<_> = srcs.iter().map(|(_, s)| lex(s)).collect();
        let parsed: Vec<_> = srcs
            .iter()
            .zip(&lexed)
            .map(|((p, _), l)| parse_file(&FileCtx::new(p, l)))
            .collect();
        Workspace::build(&parsed)
    }

    fn summary_of<'w>(ws: &'w Workspace, name: &str) -> &'w Summary {
        let i = ws
            .fns
            .iter()
            .position(|f| f.name == name)
            .expect("fn present");
        &ws.summaries[i]
    }

    #[test]
    fn blocking_propagates_across_files_to_fixpoint() {
        let ws = build(&[
            (
                "crates/a/src/lib.rs",
                "fn top(s: &S) { mid(s); }\nfn mid(s: &S) { bot(s); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "fn bot(s: &mut TcpStream) { s.write_all(b\"x\").unwrap(); }\n",
            ),
        ]);
        let top = summary_of(&ws, "top");
        let chain = top.blocks.as_ref().expect("top blocks transitively");
        assert_eq!(chain.len(), 3, "top -> mid -> bot frames: {chain:?}");
        assert!(chain[2].what.contains("write_all"));
    }

    #[test]
    fn acquires_propagate_with_witness() {
        let ws = build(&[(
            "crates/a/src/lib.rs",
            "fn outer(s: &S) { helper(s); }\nfn helper(s: &S) { let g = s.sessions.lock().unwrap(); g.touch(); }\n",
        )]);
        let outer = summary_of(&ws, "outer");
        let chain = outer.acquires.get("sessions").expect("transitive acquire");
        assert_eq!(chain.len(), 2);
        assert!(chain[1].what.contains("acquires `sessions`"));
    }

    #[test]
    fn unresolved_names_do_not_wire_workspace_fns() {
        let ws = build(&[(
            "crates/a/src/lib.rs",
            "fn caller(m: &M) { m.get(1); }\nfn get(s: &mut TcpStream) { s.write_all(b\"x\").unwrap(); }\n",
        )]);
        let caller = summary_of(&ws, "caller");
        assert!(caller.blocks.is_none(), "`get` must stay unresolved");
    }

    #[test]
    fn join_requires_empty_args() {
        let ws = build(&[(
            "crates/a/src/lib.rs",
            "fn a(p: &Path) { p.join(\"x\"); }\nfn b(h: H) { h.join(); }\n",
        )]);
        assert!(summary_of(&ws, "a").blocks.is_none());
        assert!(summary_of(&ws, "b").blocks.is_some());
    }
}
