//! `gptune-db` — the crash-safe shared history database (paper goal 3:
//! "archive and reuse performance data across executions").
//!
//! The GPTune workflow accumulates every objective evaluation into a
//! shared archive that later runs reuse (MLA warm starts, TLA transfer
//! tuning). At production scale that archive must survive killed runs and
//! concurrent writers, which the in-memory [`gptune-core`] `History` with
//! a whole-file JSON dump cannot. This crate is the durable substrate:
//!
//! * [`journal`] — one append-only JSONL file per problem signature.
//!   Writers append whole lines and fsync; recovery tolerates a torn
//!   final line (dropped) and corrupt interior lines (skipped, counted)
//!   so a crash costs at most the record being written;
//! * [`lock`] — advisory lockfile (`O_CREAT|O_EXCL`) protocol with stale
//!   detection, so multiple tuner processes share one archive without
//!   lost records;
//! * [`fsio`] — atomic snapshot writes (temp + fsync + rename +
//!   dir-fsync) used by checkpoints, compaction, and `History::save`;
//! * [`checkpoint`] — full in-flight MLA state (evaluations, iteration
//!   counters, phase stats) so an interrupted run resumes mid-budget and
//!   converges to the identical result as an uninterrupted run;
//! * [`record`] — the versioned journal line format (eval records, run
//!   summaries carrying the `stats:` phase breakdown, and classified
//!   failure records from the fault-tolerant runtime), with
//!   forward-compatible parsing (unknown kinds/fields are skipped);
//! * [`journal_v2`] — compressed binary snapshot format for archive
//!   shards (varint/string-table encoding, per-record CRC32, same
//!   recovery contract as the JSONL reader);
//! * [`shard`] — journal sharding: immutable archive shards split by
//!   task or append-order window, a manifest for cross-shard query and
//!   merge, and the live JSONL journal kept as the small write head;
//! * [`db`] — the archive directory API: append, query (by task /
//!   output arity / finiteness), merge, compact, checkpoint lifecycle.
//!
//! The crate is deliberately dependency-free (std only), including its
//! JSON codec ([`json`]): the storage layer must build wherever the tuner
//! builds.

pub mod checkpoint;
pub mod db;
pub mod fsio;
pub mod journal;
pub mod journal_v2;
pub mod json;
pub mod lock;
pub mod record;
pub mod shard;

pub use checkpoint::{Checkpoint, CheckpointKind, CkptFail};
pub use db::{sanitize, Db, Query};
pub use fsio::atomic_write;
pub use journal::{RecordError, RecordErrorKind, RecoveryReport};
pub use lock::{FileLock, LockOptions};
pub use record::{
    fnv1a, DbEntry, DbRecord, DbValue, FailKind, FailRecord, Provenance, RunStats, RunSummary,
};
pub use shard::{ShardFormat, ShardInfo, ShardManifest, ShardPolicy};
