//! The serve client, with a write-ahead report cache.
//!
//! [`ServeClient`] wraps the frame protocol in typed calls and layers
//! durability on top: every report is appended to a local `gptune-db`
//! journal *before* it is sent, and on (re)connect the client replays the
//! whole journal at the server. The server absorbs duplicates silently
//! (see [`crate::server`]), so at-least-once replay composes into
//! exactly-once history — reports survive a server kill mid-burst without
//! the client tracking acknowledgements at all.
//!
//! Transport faults and the server's typed `draining` / `overloaded`
//! errors are retried under a [`BackoffPolicy`]: bounded exponential
//! delays with deterministic, seed-derived jitter (no clock or OS entropy
//! feeds the schedule), floored by any `retry_after_ms` hint the server
//! attached. Plain server errors (`ok:false` with no retryable code) are
//! never retried — they surface as `ErrorKind::Other` immediately.
//!
//! # Request ids
//!
//! Every call mints a request id — deterministically, from a seed and a
//! call counter, never a clock — and stamps it on the frame header (see
//! [`crate::protocol::with_rid`]). One logical call keeps one id across
//! every retry and resend, WAL entries journal the id of the report they
//! cache, and replay reuses the journaled id on the wire. Client-side
//! spans (`gptune.serve.client.rpc` / `retry` / `wal_append` /
//! `wal_replay`) carry the same id the server's spans record, which is
//! what lets `trace_tool correlate` stitch the two timelines into one
//! causal chain per request.

use crate::chaos::mix;
use crate::protocol::{
    error_code, error_of, is_ok, is_retryable_error, read_json, retry_after_of, write_json,
    Request, SessionOptions, CODE_DRAINING,
};
use crate::spec::{config_from_json, ProblemSpec};
use crate::store::{value_from_db, value_to_db};
use gptune_db::json::Json;
use gptune_db::{fnv1a, journal, DbEntry, DbRecord, LockOptions, Provenance};
use gptune_space::{Config, Value};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::time::Duration;

/// Client-side socket deadlines (GX303: every socket is bounded).
const CLIENT_IO_TIMEOUT: Option<Duration> = Some(Duration::from_secs(30));

/// Retry schedule for transport faults and retryable server errors:
/// exponential delays `base_ms << attempt`, capped at `cap_ms`, each
/// jittered *deterministically* into `[delay/2, delay]` by hashing
/// `(jitter_seed, attempt)` — never a clock — so two clients with
/// different seeds desynchronize their retry storms while any single
/// run replays exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Retries after the first attempt (`0` disables retrying).
    pub max_retries: u32,
    /// First delay, milliseconds.
    pub base_ms: u64,
    /// Delay ceiling, milliseconds.
    pub cap_ms: u64,
    /// Seed for the jitter hash.
    pub jitter_seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            max_retries: 6,
            base_ms: 10,
            cap_ms: 2000,
            jitter_seed: 0x6261_636b_6f66_66,
        }
    }
}

impl BackoffPolicy {
    /// The jittered delay before retry number `attempt` (0-based).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let raw = self
            .base_ms
            .max(1)
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap_ms.max(1));
        let h = mix(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let lo = raw / 2;
        lo + h % (raw - lo + 1)
    }
}

/// Default request-id seed; override with [`ServeClient::with_rid_seed`]
/// when several clients must keep their id streams disjoint.
const RID_SEED: u64 = 0x7269_6432_5f31_3670;

/// A connected client, optionally backed by a write-ahead journal.
pub struct ServeClient {
    addr: SocketAddr,
    stream: TcpStream,
    wal: Option<PathBuf>,
    backoff: BackoffPolicy,
    /// Set once `open_session` succeeds; reused by auto-reconnect.
    opened: Option<(String, ProblemSpec, SessionOptions, String)>,
    /// Tracer for client-side spans; `None` reads the process global.
    tracer: Option<gptune_trace::Tracer>,
    /// Request ids are `mix(rid_seed, counter)` — deterministic (GX401).
    rid_seed: u64,
    rid_counter: u64,
}

impl ServeClient {
    /// Connects without a write-ahead cache.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = connect_first(addr)?;
        let addr = stream.peer_addr()?;
        Ok(ServeClient {
            addr,
            stream,
            wal: None,
            backoff: BackoffPolicy::default(),
            opened: None,
            tracer: None,
            rid_seed: RID_SEED,
            rid_counter: 0,
        })
    }

    /// Attaches a write-ahead journal. Reports append here before they go
    /// on the wire; `open_session` and reconnects replay the whole file.
    pub fn with_wal(mut self, path: impl Into<PathBuf>) -> ServeClient {
        self.wal = Some(path.into());
        self
    }

    /// Overrides the retry schedule (see [`BackoffPolicy`]).
    pub fn with_backoff(mut self, policy: BackoffPolicy) -> ServeClient {
        self.backoff = policy;
        self
    }

    /// Overrides the tracer used for client-side spans (default: the
    /// process-global tracer). In-process tests point the client at its
    /// own ring so the client and server timelines drain separately —
    /// exactly the two files `trace_tool correlate` merges.
    pub fn with_tracer(mut self, tracer: gptune_trace::Tracer) -> ServeClient {
        self.tracer = Some(tracer);
        self
    }

    /// Overrides the request-id seed. Ids are minted deterministically
    /// from `(seed, call counter)` — no clock or OS entropy — so a
    /// replayed run mints the identical id stream. Clients sharing a
    /// server should pick distinct seeds to keep their streams disjoint.
    pub fn with_rid_seed(mut self, seed: u64) -> ServeClient {
        self.rid_seed = seed;
        self
    }

    fn tracer(&self) -> gptune_trace::Tracer {
        self.tracer.clone().unwrap_or_else(gptune_trace::global)
    }

    /// Mints the next request id: one per logical call, reused across
    /// every retry of that call.
    fn next_rid(&mut self) -> String {
        self.rid_counter += 1;
        format!(
            "{:016x}",
            mix(self
                .rid_seed
                .wrapping_add(self.rid_counter.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        )
    }

    /// The server address this client talks to.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Opens (or re-attaches to) a session, then replays any write-ahead
    /// journal so the server's history catches up with local truth.
    /// Returns the session key.
    pub fn open_session(
        &mut self,
        tenant: &str,
        spec: &ProblemSpec,
        opts: &SessionOptions,
    ) -> io::Result<String> {
        let req = Request::OpenSession {
            tenant: tenant.into(),
            spec: spec.clone(),
            opts: opts.clone(),
        };
        let resp = self.rpc(&req)?;
        let key = resp
            .get("session")
            .and_then(|v| v.as_str())
            .ok_or_else(|| bad_server("open_session response lacks session key"))?
            .to_string();
        self.opened = Some((tenant.into(), spec.clone(), opts.clone(), key.clone()));
        self.replay_wal()?;
        Ok(key)
    }

    /// Asks the server for the next configuration to evaluate.
    pub fn suggest(&mut self, task: usize) -> io::Result<Config> {
        let key = self.session_key()?;
        let resp = self.rpc(&Request::Suggest { session: key, task })?;
        config_from_json(
            resp.get("config")
                .ok_or_else(|| bad_server("suggest response lacks config"))?,
        )
        .map_err(bad_server)
    }

    /// Reports an outcome. With a WAL attached the report is journaled
    /// first — under the same request id the wire send will carry, so a
    /// replay after a crash reuses the original id and the server-side
    /// trace still links back to this call.
    pub fn report(&mut self, task: usize, config: &[Value], outputs: &[f64]) -> io::Result<()> {
        let (_, spec, _, key) = self
            .opened
            .clone()
            .ok_or_else(|| bad_server("no open session"))?;
        let rid = self.next_rid();
        if let Some(wal) = self.wal.clone() {
            let entry = wal_entry(&spec, task, config, outputs, &rid)
                .ok_or_else(|| bad_server(format!("task {task} out of range")))?;
            let span = self
                .tracer()
                .span("gptune.serve.client.wal_append")
                .with("rid", rid.as_str());
            journal::append(&wal, &[entry], &LockOptions::default())?;
            drop(span);
        }
        self.rpc_with_rid(
            &Request::Report {
                session: key,
                task,
                config: config.to_vec(),
                outputs: outputs.to_vec(),
            },
            &rid,
        )?;
        Ok(())
    }

    /// Fetches the session's full history as `(task, config, outputs)`.
    pub fn history(&mut self) -> io::Result<Vec<(usize, Config, Vec<f64>)>> {
        let key = self.session_key()?;
        let resp = self.rpc(&Request::History { session: key })?;
        let rows = resp
            .get("history")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| bad_server("history response lacks rows"))?;
        rows.iter()
            .map(|row| {
                let task = row
                    .get("task")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| bad_server("history row lacks task"))?
                    as usize;
                let config = config_from_json(
                    row.get("config")
                        .ok_or_else(|| bad_server("history row lacks config"))?,
                )
                .map_err(bad_server)?;
                let outputs = row
                    .get("outputs")
                    .and_then(|v| v.as_arr())
                    .ok_or_else(|| bad_server("history row lacks outputs"))?
                    .iter()
                    .map(|y| y.as_f64().ok_or_else(|| bad_server("bad output")))
                    .collect::<io::Result<Vec<f64>>>()?;
                Ok((task, config, outputs))
            })
            .collect()
    }

    /// Closes the session server-side. The WAL file is left in place as
    /// the local archive of everything this client measured.
    pub fn close(&mut self) -> io::Result<()> {
        let key = self.session_key()?;
        self.rpc_once(&Request::Close { session: key })?;
        self.opened = None;
        Ok(())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        self.rpc_once(&Request::Ping).map(|_| ())
    }

    /// Readiness/health report (raw server JSON: `ready`, `sessions`,
    /// `uptime_secs`, windowed request rate and per-op p99, …).
    pub fn health(&mut self) -> io::Result<Json> {
        self.rpc_once(&Request::Health)
    }

    /// Scrapes the server's metrics registry: one `metrics` exchange,
    /// decoded from the text exposition back into a structured snapshot
    /// (lifetime counters/gauges/histograms plus the windowed view).
    pub fn metrics(&mut self) -> io::Result<gptune_trace::MetricsSnapshot> {
        let resp = self.rpc_once(&Request::Metrics)?;
        let text = resp
            .get("exposition")
            .and_then(|v| v.as_str())
            .ok_or_else(|| bad_server("metrics response lacks exposition"))?;
        gptune_trace::expo::parse(text).map_err(bad_server)
    }

    /// Tears down the socket and rebuilds the session: reconnect, re-open
    /// (the server re-attaches), replay the WAL. Called automatically when
    /// a request hits a transport error.
    pub fn reconnect(&mut self) -> io::Result<()> {
        self.stream = TcpStream::connect(self.addr)?;
        self.stream.set_nodelay(true).ok();
        let _ = self.stream.set_read_timeout(CLIENT_IO_TIMEOUT);
        let _ = self.stream.set_write_timeout(CLIENT_IO_TIMEOUT);
        if let Some((tenant, spec, opts, _)) = self.opened.clone() {
            let req = Request::OpenSession { tenant, spec, opts };
            self.rpc_once(&req)?;
            self.replay_wal()?;
        }
        Ok(())
    }

    fn session_key(&self) -> io::Result<String> {
        self.opened
            .as_ref()
            .map(|(_, _, _, k)| k.clone())
            .ok_or_else(|| bad_server("no open session"))
    }

    /// One request/response exchange under the retry policy. Transport
    /// errors and typed `draining` / `overloaded` responses trigger
    /// backoff (floored by any server `retry_after_ms` hint), reconnect —
    /// with session re-open and WAL replay — and a resend, up to
    /// [`BackoffPolicy::max_retries`] times. Plain server failures
    /// (`ok:false` with no retryable code) are never retried.
    fn rpc(&mut self, req: &Request) -> io::Result<Json> {
        let rid = self.next_rid();
        self.rpc_with_rid(req, &rid)
    }

    fn rpc_with_rid(&mut self, req: &Request, rid: &str) -> io::Result<Json> {
        let tracer = self.tracer();
        let mut span = tracer
            .span("gptune.serve.client.rpc")
            .with("op", req.op())
            .with("rid", rid);
        let mut attempt: u32 = 0;
        let mut last_reason: Option<String> = None;
        let result = loop {
            // Reconnect only when the connection is actually gone: after
            // a transport fault or a `draining` reply (the server hangs
            // up behind those). An `overloaded` reply leaves the
            // connection healthy — retrying on it avoids tearing the
            // session down just to rebuild it.
            let (err, retry_hint_ms, conn_dead) = match self.exchange(req, rid) {
                Ok(resp) if is_ok(&resp) => break Ok(resp),
                Ok(resp) if is_retryable_error(&resp) => {
                    let drained = error_code(&resp).as_deref() == Some(CODE_DRAINING);
                    last_reason = Some(error_of(&resp));
                    (bad_server(error_of(&resp)), retry_after_of(&resp), drained)
                }
                Ok(resp) => break Err(bad_server(error_of(&resp))),
                Err(e) => (e, None, true),
            };
            if attempt >= self.backoff.max_retries {
                // When retries die on a transport fault mid-storm, the
                // typed reason we saw earlier is the informative one.
                break Err(match last_reason {
                    Some(reason) => bad_server(reason),
                    None => err,
                });
            }
            let delay = self
                .backoff
                .delay_ms(attempt)
                .max(retry_hint_ms.unwrap_or(0));
            std::thread::sleep(Duration::from_millis(delay));
            attempt += 1;
            // The retry resends under the *same* rid: at the server it is
            // the same logical request, and the correlated timeline shows
            // one intent with several wire attempts.
            tracer
                .instant("gptune.serve.client.retry")
                .with("rid", rid)
                .with("attempt", attempt)
                .emit();
            if conn_dead {
                // A failed reconnect is not fatal mid-loop: the next
                // exchange fails fast on the dead stream and we back off
                // again.
                let _ = self.reconnect();
            }
        };
        span.add("attempts", attempt + 1);
        span.add("ok", result.is_ok());
        drop(span);
        result
    }

    fn rpc_once(&mut self, req: &Request) -> io::Result<Json> {
        let rid = self.next_rid();
        self.rpc_once_with_rid(req, &rid)
    }

    fn rpc_once_with_rid(&mut self, req: &Request, rid: &str) -> io::Result<Json> {
        let mut span = self
            .tracer()
            .span("gptune.serve.client.rpc")
            .with("op", req.op())
            .with("rid", rid)
            .with("attempts", 1u64);
        let resp = self.exchange(req, rid)?;
        let ok = is_ok(&resp);
        span.add("ok", ok);
        drop(span);
        if ok {
            Ok(resp)
        } else {
            Err(bad_server(error_of(&resp)))
        }
    }

    /// The raw wire exchange: errors here are transport faults only; the
    /// response JSON may still carry `ok:false`.
    fn exchange(&mut self, req: &Request, rid: &str) -> io::Result<Json> {
        let frame = crate::protocol::with_rid(req.to_json(), rid);
        write_json(&mut self.stream, &frame)?;
        read_json(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the stream"))
    }

    /// Pushes every journaled report at the server. Duplicates of reports
    /// that already landed come back flagged `duplicate` and are counted
    /// but otherwise ignored. Returns `(replayed, duplicates)`.
    pub fn replay_wal(&mut self) -> io::Result<(usize, usize)> {
        let Some(wal) = self.wal.clone() else {
            return Ok((0, 0));
        };
        if !wal.exists() {
            return Ok((0, 0));
        }
        let (_, spec, _, key) = self
            .opened
            .clone()
            .ok_or_else(|| bad_server("no open session"))?;
        let (entries, _report) = journal::load(&wal)?;
        let mut span = self.tracer().span("gptune.serve.client.wal_replay");
        let mut replayed = 0;
        let mut duplicates = 0;
        for entry in entries {
            let DbEntry::Eval(rec) = entry else { continue };
            if rec.problem != spec.name {
                continue;
            }
            let task_cfg: Config = rec.task.iter().map(value_from_db).collect();
            let Some(task) = spec.tasks.iter().position(|t| *t == task_cfg) else {
                continue;
            };
            let config: Config = rec.config.iter().map(value_from_db).collect();
            let req = Request::Report {
                session: key.clone(),
                task,
                config,
                outputs: rec.outputs.clone(),
            };
            // Replay under the journaled rid when the entry carries one:
            // on the wire (and in the server's spans) the replay *is* the
            // original report, so correlation survives crashes.
            let resp = match rec.prov.run.strip_prefix("serve-wal:") {
                Some(rid) if !rid.is_empty() => {
                    let rid = rid.to_string();
                    self.rpc_once_with_rid(&req, &rid)?
                }
                _ => self.rpc_once(&req)?,
            };
            replayed += 1;
            if resp.get("duplicate").and_then(|v| v.as_bool()) == Some(true) {
                duplicates += 1;
            }
        }
        span.add("replayed", replayed as u64);
        span.add("duplicates", duplicates as u64);
        drop(span);
        Ok((replayed, duplicates))
    }
}

/// Builds the WAL journal entry for one report. The request id rides in
/// the provenance `run` field (`serve-wal:<rid>`) so replay can reuse it.
fn wal_entry(
    spec: &ProblemSpec,
    task: usize,
    config: &[Value],
    outputs: &[f64],
    rid: &str,
) -> Option<DbEntry> {
    let task_cfg = spec.tasks.get(task)?;
    Some(DbEntry::Eval(DbRecord {
        problem: spec.name.clone(),
        sig: fnv1a(spec.to_json().to_string().as_bytes()),
        task: task_cfg.iter().map(value_to_db).collect(),
        config: config.iter().map(value_to_db).collect(),
        outputs: outputs.to_vec(),
        prov: Provenance {
            seed: 0,
            run: format!("serve-wal:{rid}"),
            machine: None,
        },
    }))
}

/// Server-reported failures surface as `ErrorKind::Other` so the retry
/// layer can tell them apart from transport faults.
fn bad_server(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::Other, msg.into())
}

/// Connects with a few quick retries, smoothing over the race between a
/// freshly spawned server and its first client.
fn connect_first(addr: impl ToSocketAddrs) -> io::Result<TcpStream> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no address");
    for attempt in 0..20 {
        for a in &addrs {
            match TcpStream::connect(a) {
                Ok(s) => {
                    s.set_nodelay(true).ok();
                    let _ = s.set_read_timeout(CLIENT_IO_TIMEOUT);
                    let _ = s.set_write_timeout(CLIENT_IO_TIMEOUT);
                    return Ok(s);
                }
                Err(e) => last = e,
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(5 * (attempt + 1)));
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServeOptions};
    use gptune_space::Param;
    use std::path::Path;

    fn spec() -> ProblemSpec {
        ProblemSpec {
            name: "toy".into(),
            task_params: vec![Param::real("t", 0.0, 1.0)],
            tuning_params: vec![Param::real("x", 0.0, 1.0)],
            tasks: vec![vec![Value::Real(0.25)], vec![Value::Real(0.75)]],
            n_objectives: 1,
        }
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let pid = std::process::id();
        let dir = std::env::temp_dir().join(format!("gptune-serve-client-{tag}-{pid}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn wal_path(root: &Path) -> PathBuf {
        root.join("wal.jsonl")
    }

    #[test]
    fn suggest_report_history_through_the_client() {
        let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        let key = client
            .open_session(
                "acme",
                &spec(),
                &SessionOptions {
                    seed: 3,
                    n_initial: Some(2),
                },
            )
            .unwrap();
        assert_eq!(key, "acme/toy");
        for i in 0..4usize {
            let task = i % 2;
            let cfg = client.suggest(task).unwrap();
            client.report(task, &cfg, &[1.0 + i as f64]).unwrap();
        }
        let h = client.history().unwrap();
        assert_eq!(h.len(), 4);
        client.close().unwrap();
        assert!(client.suggest(0).is_err(), "closed session rejects calls");
        server.shutdown();
    }

    #[test]
    fn wal_replays_after_server_restart() {
        let root = tmp_root("restart");
        let wal = wal_path(&root);
        let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
        let addr = server.local_addr();
        let mut client = ServeClient::connect(addr).unwrap().with_wal(&wal);
        client
            .open_session("t", &spec(), &SessionOptions::default())
            .unwrap();
        let cfg = client.suggest(0).unwrap();
        client.report(0, &cfg, &[2.5]).unwrap();
        client.report(1, &[Value::Real(0.5)], &[7.0]).unwrap();
        assert_eq!(client.history().unwrap().len(), 2);

        // Kill the server: its in-memory sessions evaporate. The
        // replacement binds a fresh port (the old one may sit in
        // TIME_WAIT) — the WAL doesn't care where the server lives.
        server.shutdown();
        let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();

        // A fresh client with the same WAL restores the history.
        let mut client2 = ServeClient::connect(server.local_addr())
            .unwrap()
            .with_wal(&wal);
        client2
            .open_session("t", &spec(), &SessionOptions::default())
            .unwrap();
        let h = client2.history().unwrap();
        assert_eq!(h.len(), 2, "WAL replay must restore both reports");
        let mut outs: Vec<f64> = h.iter().map(|(_, _, o)| o[0]).collect();
        outs.sort_by(f64::total_cmp);
        assert_eq!(outs, vec![2.5, 7.0]);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn replay_is_idempotent_against_surviving_sessions() {
        let root = tmp_root("idem");
        let wal = wal_path(&root);
        let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
        let mut client = ServeClient::connect(server.local_addr())
            .unwrap()
            .with_wal(&wal);
        client
            .open_session("t", &spec(), &SessionOptions::default())
            .unwrap();
        client.report(0, &[Value::Real(0.1)], &[1.0]).unwrap();
        client.report(0, &[Value::Real(0.2)], &[2.0]).unwrap();
        // Replay against the *live* session: both reports already landed.
        let (replayed, duplicates) = client.replay_wal().unwrap();
        assert_eq!(replayed, 2);
        assert_eq!(duplicates, 2);
        assert_eq!(client.history().unwrap().len(), 2, "no double-count");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn reconnect_rebuilds_a_usable_session() {
        let root = tmp_root("reconnect");
        let wal = wal_path(&root);
        let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
        let mut client = ServeClient::connect(server.local_addr())
            .unwrap()
            .with_wal(&wal);
        client
            .open_session("t", &spec(), &SessionOptions::default())
            .unwrap();
        client.report(0, &[Value::Real(0.3)], &[4.0]).unwrap();
        client.reconnect().unwrap();
        assert_eq!(client.history().unwrap().len(), 1);
        // Still fully operational after the rebuild.
        let cfg = client.suggest(1).unwrap();
        client.report(1, &cfg, &[5.0]).unwrap();
        assert_eq!(client.history().unwrap().len(), 2);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn request_ids_are_deterministic_and_journal_with_reports() {
        use gptune_trace::{Field, Tracer};
        let root = tmp_root("rids");
        let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();

        // Two clients with the same rid seed and the same call sequence
        // mint identical id streams (GX401: no clock, no entropy).
        let rid_stream = |tag: u64| -> Vec<String> {
            let tracer = Tracer::ring(256);
            let mut c = ServeClient::connect(server.local_addr())
                .unwrap()
                .with_tracer(tracer.clone())
                .with_rid_seed(0xfeed); // same seed both runs
            c.open_session("t", &spec(), &SessionOptions::default())
                .unwrap();
            c.report(0, &[Value::Real(0.1 + tag as f64 * 0.2)], &[1.0])
                .unwrap();
            let mut rids: Vec<(u64, String)> = tracer
                .drain()
                .events
                .iter()
                .filter(|e| e.name.as_ref() == "gptune.serve.client.rpc")
                .filter_map(|e| match e.field("rid") {
                    Some(Field::Str(r)) => Some((e.ts_ns, r.clone())),
                    _ => None,
                })
                .collect();
            rids.sort();
            rids.into_iter().map(|(_, r)| r).collect()
        };
        let a = rid_stream(0);
        let b = rid_stream(1);
        assert_eq!(a.len(), 2, "open + report: {a:?}");
        assert_eq!(a, b, "rid stream must be deterministic in (seed, counter)");
        assert_ne!(a[0], a[1], "each call gets a fresh rid");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn wal_replay_reuses_the_journaled_request_ids() {
        use gptune_trace::{Field, Tracer};
        let root = tmp_root("walrid");
        let wal = wal_path(&root);
        let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
        let mut c = ServeClient::connect(server.local_addr())
            .unwrap()
            .with_wal(&wal);
        c.open_session("t", &spec(), &SessionOptions::default())
            .unwrap();
        c.report(0, &[Value::Real(0.3)], &[1.0]).unwrap();
        c.report(1, &[Value::Real(0.6)], &[2.0]).unwrap();
        // The journal carries one distinct rid per report.
        let (entries, _) = journal::load(&wal).unwrap();
        let rids: Vec<String> = entries
            .iter()
            .filter_map(|e| match e {
                DbEntry::Eval(r) => r.prov.run.strip_prefix("serve-wal:").map(str::to_string),
                _ => None,
            })
            .collect();
        assert_eq!(rids.len(), 2, "every WAL entry journals its rid");
        assert_ne!(rids[0], rids[1]);

        // A fresh client (fresh rid stream) replaying the WAL puts the
        // *journaled* ids back on the wire, visible in its rpc spans.
        let tracer = Tracer::ring(512);
        let mut c2 = ServeClient::connect(server.local_addr())
            .unwrap()
            .with_wal(&wal)
            .with_tracer(tracer.clone())
            .with_rid_seed(999);
        c2.open_session("t", &spec(), &SessionOptions::default())
            .unwrap();
        let data = tracer.drain();
        for rid in &rids {
            let reused = data.events.iter().any(|e| {
                e.name.as_ref() == "gptune.serve.client.rpc"
                    && e.field("rid") == Some(&Field::Str(rid.clone()))
            });
            assert!(reused, "replay must reuse journaled rid {rid}");
        }
        assert!(data
            .events
            .iter()
            .any(|e| e.name.as_ref() == "gptune.serve.client.wal_replay"
                && e.field("replayed") == Some(&Field::U64(2))));
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn server_errors_are_not_retried_as_transport_faults() {
        let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        client
            .open_session("t", &spec(), &SessionOptions::default())
            .unwrap();
        let err = client.report(99, &[Value::Real(0.5)], &[1.0]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        server.shutdown();
    }

    #[test]
    fn backoff_delays_are_deterministic_jittered_and_capped() {
        let policy = BackoffPolicy {
            max_retries: 8,
            base_ms: 10,
            cap_ms: 100,
            jitter_seed: 7,
        };
        for attempt in 0..8u32 {
            let raw = 10u64.saturating_mul(1 << attempt).min(100);
            let d = policy.delay_ms(attempt);
            assert!(d >= raw / 2 && d <= raw, "attempt {attempt}: {d} vs {raw}");
            assert_eq!(d, policy.delay_ms(attempt), "schedule must replay");
        }
        // A different seed moves at least one delay.
        let other = BackoffPolicy {
            jitter_seed: 8,
            ..policy
        };
        assert!((0..8).any(|a| policy.delay_ms(a) != other.delay_ms(a)));
        // Cap holds however deep the retry count runs.
        assert!(policy.delay_ms(63) <= 100);
    }

    #[test]
    fn draining_responses_are_retried_then_surfaced() {
        let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
        let mut client = ServeClient::connect(server.local_addr())
            .unwrap()
            .with_backoff(BackoffPolicy {
                max_retries: 2,
                base_ms: 1,
                cap_ms: 2,
                jitter_seed: 1,
            });
        client
            .open_session("t", &spec(), &SessionOptions::default())
            .unwrap();
        // Put the server into draining without stopping it: suggest now
        // returns the typed error every time.
        write_json(&mut client.stream, &Request::Drain.to_json()).unwrap();
        assert!(is_ok(&read_json(&mut client.stream).unwrap().unwrap()));
        let err = client.suggest(0).unwrap_err();
        assert!(
            err.to_string().contains("draining"),
            "after retries the typed error surfaces: {err}"
        );
        // Ping stays usable through the drain (reconnect path works).
        client.reconnect().ok();
        server.shutdown();
    }
}
