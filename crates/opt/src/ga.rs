//! Real-coded genetic algorithm (tournament selection, blend crossover,
//! Gaussian mutation) — one of the OpenTuner ensemble techniques
//! (paper Sec. 5 cites Srinivas & Patnaik's survey).

use crate::OptResult;
use rand::Rng;

/// GA configuration.
#[derive(Debug, Clone)]
pub struct GaOptions {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Crossover probability.
    pub crossover: f64,
    /// Per-gene mutation probability.
    pub mutation: f64,
    /// Gaussian mutation standard deviation (unit-box units).
    pub sigma: f64,
    /// Number of elite individuals carried over unchanged.
    pub elites: usize,
}

impl Default for GaOptions {
    fn default() -> Self {
        GaOptions {
            population: 30,
            generations: 50,
            crossover: 0.9,
            mutation: 0.15,
            sigma: 0.1,
            elites: 2,
        }
    }
}

/// Minimizes `f` over `[0,1]^dim`.
pub fn minimize(
    f: &mut dyn FnMut(&[f64]) -> f64,
    dim: usize,
    seeds: &[Vec<f64>],
    opts: &GaOptions,
    rng: &mut impl Rng,
) -> OptResult {
    let np = opts.population.max(4);
    let mut evals = 0usize;
    let mut pop: Vec<Vec<f64>> = seeds
        .iter()
        .take(np)
        .map(|s| {
            let mut p = s.clone();
            crate::clamp_unit(&mut p);
            p
        })
        .collect();
    while pop.len() < np {
        pop.push((0..dim).map(|_| rng.gen::<f64>()).collect());
    }
    let mut vals: Vec<f64> = pop
        .iter()
        .map(|p| {
            evals += 1;
            nanproof(f(p))
        })
        .collect();

    for _ in 0..opts.generations {
        // Sort by fitness (ascending = better first).
        let mut order: Vec<usize> = (0..np).collect();
        order.sort_by(|&a, &b| vals[a].total_cmp(&vals[b]));

        let mut next: Vec<Vec<f64>> = order
            .iter()
            .take(opts.elites.min(np))
            .map(|&i| pop[i].clone())
            .collect();
        let mut next_vals: Vec<f64> = order
            .iter()
            .take(opts.elites.min(np))
            .map(|&i| vals[i])
            .collect();

        let tournament = |rng: &mut dyn rand::RngCore| -> usize {
            let a = (rng.next_u64() % np as u64) as usize;
            let b = (rng.next_u64() % np as u64) as usize;
            if vals[a] < vals[b] {
                a
            } else {
                b
            }
        };

        while next.len() < np {
            let pa = tournament(rng);
            let pb = tournament(rng);
            let mut child = pop[pa].clone();
            if rng.gen::<f64>() < opts.crossover {
                // BLX-style blend.
                for d in 0..dim {
                    let w: f64 = rng.gen();
                    child[d] = (w * pop[pa][d] + (1.0 - w) * pop[pb][d]).clamp(0.0, 1.0);
                }
            }
            for g in child.iter_mut() {
                if rng.gen::<f64>() < opts.mutation {
                    *g = (*g + gaussian(rng) * opts.sigma).clamp(0.0, 1.0);
                }
            }
            let v = nanproof(f(&child));
            evals += 1;
            next.push(child);
            next_vals.push(v);
        }
        pop = next;
        vals = next_vals;
    }

    let (bi, bv) = vals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    OptResult {
        x: pop[bi].clone(),
        value: *bv,
        evals,
    }
}

/// Standard normal via Box–Muller (avoids an extra crate dependency).
pub(crate) fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn nanproof(v: f64) -> f64 {
    if v.is_nan() {
        f64::INFINITY
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sphere() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut f = |x: &[f64]| x.iter().map(|v| (v - 0.4) * (v - 0.4)).sum::<f64>();
        let r = minimize(&mut f, 3, &[], &GaOptions::default(), &mut rng);
        assert!(r.value < 1e-2, "value {}", r.value);
    }

    #[test]
    fn elitism_never_regresses() {
        let mut rng = StdRng::seed_from_u64(5);
        let seed = vec![0.111, 0.222];
        let mut f = |x: &[f64]| {
            let d: f64 = x
                .iter()
                .zip(&[0.111, 0.222])
                .map(|(a, b)| (a - b).abs())
                .sum();
            if d < 1e-12 {
                -5.0
            } else {
                d
            }
        };
        let r = minimize(&mut f, 2, &[seed], &GaOptions::default(), &mut rng);
        assert_eq!(r.value, -5.0);
    }

    #[test]
    fn gaussian_sane_moments() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
