//! Samplers over the unit hypercube and constrained spaces.
//!
//! The reference GPTune uses `lhsmdu` (Latin hypercube sampling with
//! multi-dimensional uniformity) for the initial sampling phase. We provide:
//!
//! * [`uniform`] — i.i.d. uniform points;
//! * [`latin_hypercube`] — stratified LHS with per-dimension permutations,
//!   plus a maximin refinement pass that keeps the best of several candidate
//!   designs (a practical `lhsmdu` stand-in);
//! * [`halton`] — deterministic low-discrepancy sequence (used by the
//!   acquisition optimizers for restart points);
//! * [`sample_space`] — constraint-aware sampling of a [`Space`], with
//!   rejection and resampling.

use crate::space::{Config, Space};
use rand::seq::SliceRandom;
use rand::Rng;

/// `n` i.i.d. uniform points in `[0,1]^dim`.
pub fn uniform(n: usize, dim: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

/// Latin hypercube design: `n` points in `[0,1]^dim`, one per stratum in
/// every dimension, jittered within strata.
pub fn latin_hypercube(n: usize, dim: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    if n == 0 {
        return Vec::new();
    }
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(dim);
    for _ in 0..dim {
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(rng);
        let col: Vec<f64> = perm
            .iter()
            .map(|&cell| (cell as f64 + rng.gen::<f64>()) / n as f64)
            .collect();
        cols.push(col);
    }
    (0..n)
        .map(|i| (0..dim).map(|d| cols[d][i]).collect())
        .collect()
}

/// Maximin-improved LHS: draws `candidates` LHS designs and keeps the one
/// with the largest minimum pairwise distance. This approximates the
/// multi-dimensional-uniformity objective of `lhsmdu` at a fraction of the
/// cost.
pub fn latin_hypercube_maximin(
    n: usize,
    dim: usize,
    candidates: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<f64>> {
    let mut best: Option<(f64, Vec<Vec<f64>>)> = None;
    for _ in 0..candidates.max(1) {
        let design = latin_hypercube(n, dim, rng);
        let score = min_pairwise_distance(&design);
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, design));
        }
    }
    best.expect("candidates >= 1").1
}

fn min_pairwise_distance(points: &[Vec<f64>]) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d: f64 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            best = best.min(d);
        }
    }
    best.sqrt()
}

/// First `n` points of the Halton sequence in `[0,1]^dim` (skipping a small
/// burn-in to avoid the degenerate leading points).
pub fn halton(n: usize, dim: usize) -> Vec<Vec<f64>> {
    const PRIMES: [u64; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];
    assert!(
        dim <= PRIMES.len(),
        "halton: dim {dim} exceeds supported {} dimensions",
        PRIMES.len()
    );
    const SKIP: usize = 20;
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| radical_inverse((i + SKIP + 1) as u64, PRIMES[d]))
                .collect()
        })
        .collect()
}

fn radical_inverse(mut i: u64, base: u64) -> f64 {
    let mut f = 1.0;
    let mut r = 0.0;
    let b = base as f64;
    while i > 0 {
        f /= b;
        r += f * (i % base) as f64;
        i /= base;
    }
    r
}

/// Draws `n` *feasible* configurations from `space`.
///
/// Starts from a maximin LHS design, denormalizes, and replaces infeasible
/// or duplicate points with fresh uniform draws (up to `max_tries` redraws
/// per point). Returns fewer than `n` points only when the feasible region
/// is too small to find distinct samples, mirroring GPTune's behaviour on
/// over-constrained spaces.
pub fn sample_space(space: &Space, n: usize, rng: &mut impl Rng, max_tries: usize) -> Vec<Config> {
    let dim = space.dim();
    let design = latin_hypercube_maximin(n, dim, 4, rng);
    let mut out: Vec<Config> = Vec::with_capacity(n);
    for u in design {
        let mut cfg = space.denormalize(&u);
        let mut tries = 0;
        while (!space.is_valid(&cfg) || out.contains(&cfg)) && tries < max_tries {
            let v: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
            cfg = space.denormalize(&v);
            tries += 1;
        }
        if space.is_valid(&cfg) && !out.contains(&cfg) {
            out.push(cfg);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{Param, Value};
    use crate::space::Space;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lhs_is_stratified() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 16;
        let pts = latin_hypercube(n, 3, &mut rng);
        assert_eq!(pts.len(), n);
        // Each dimension must have exactly one point per stratum.
        for d in 0..3 {
            let mut cells: Vec<usize> = pts.iter().map(|p| (p[d] * n as f64) as usize).collect();
            cells.sort_unstable();
            assert_eq!(cells, (0..n).collect::<Vec<_>>(), "dim {d}");
        }
    }

    #[test]
    fn lhs_zero_points() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(latin_hypercube(0, 4, &mut rng).is_empty());
    }

    #[test]
    fn maximin_no_worse_than_single() {
        let mut rng1 = StdRng::seed_from_u64(42);
        let single = latin_hypercube(20, 2, &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(42);
        let multi = latin_hypercube_maximin(20, 2, 8, &mut rng2);
        assert!(min_pairwise_distance(&multi) >= min_pairwise_distance(&single) - 1e-12);
    }

    #[test]
    fn halton_in_unit_cube_and_deterministic() {
        let a = halton(50, 4);
        let b = halton(50, 4);
        assert_eq!(a, b);
        for p in &a {
            for &x in p {
                assert!((0.0..1.0).contains(&x));
            }
        }
        // Low discrepancy sanity: first dimension mean near 0.5.
        let mean: f64 = a.iter().map(|p| p[0]).sum::<f64>() / 50.0;
        assert!((mean - 0.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    #[should_panic]
    fn halton_dim_too_large() {
        let _ = halton(1, 17);
    }

    #[test]
    fn sample_space_respects_constraints() {
        let space = Space::builder()
            .param(Param::int("p", 1, 16))
            .param(Param::int("p_r", 1, 16))
            .constraint("p_r<=p", |c| c[1].as_int() <= c[0].as_int())
            .build();
        let mut rng = StdRng::seed_from_u64(3);
        let samples = sample_space(&space, 30, &mut rng, 100);
        assert!(!samples.is_empty());
        for s in &samples {
            assert!(space.is_valid(s));
        }
        // Distinctness.
        for i in 0..samples.len() {
            for j in (i + 1)..samples.len() {
                assert_ne!(samples[i], samples[j]);
            }
        }
    }

    #[test]
    fn sample_space_small_feasible_region() {
        // Only p == p_r == 1 is feasible.
        let space = Space::builder()
            .param(Param::int("p", 1, 8))
            .param(Param::int("p_r", 1, 8))
            .constraint("tiny", |c| c[0].as_int() == 1 && c[1].as_int() == 1)
            .build();
        let mut rng = StdRng::seed_from_u64(9);
        let samples = sample_space(&space, 5, &mut rng, 200);
        // Can find at most the single feasible point.
        assert!(samples.len() <= 1);
        if let Some(s) = samples.first() {
            assert_eq!(s, &vec![Value::Int(1), Value::Int(1)]);
        }
    }
}
