//! Fixture-driven tests for the GX7xx concurrency tier and the
//! summary-based GX303 — each rule gets one triggering and one clean
//! fixture, linted under synthetic *production* paths (the fixtures
//! directory itself is test code by the lint's own path rules), plus a
//! golden-file test for the `lint --lock-graph` text rendering.

use gptune_xtask::concurrency;
use gptune_xtask::config::Config;
use gptune_xtask::context::FileCtx;
use gptune_xtask::lexer::lex;
use gptune_xtask::parse::{parse_file, ParsedFile};
use gptune_xtask::rules::Diagnostic;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn parsed(name: &str, path_rel: &str) -> ParsedFile {
    let src = fixture(name);
    let lexed = lex(&src);
    parse_file(&FileCtx::new(path_rel, &lexed))
}

/// Runs the concurrency tier over fixtures mounted at synthetic paths.
fn check(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let parsed: Vec<ParsedFile> = files.iter().map(|(n, p)| parsed(n, p)).collect();
    concurrency::check(&parsed, &Config::default())
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn gx701_flags_the_seeded_inversion_with_both_witness_paths() {
    let diags = check(&[("gx701_inversion.rs", "crates/serve/src/fixture.rs")]);
    let gx701: Vec<_> = diags.iter().filter(|d| d.rule == "GX701").collect();
    assert_eq!(gx701.len(), 1, "exactly one cycle: {diags:?}");
    let msg = &gx701[0].msg;
    // Both directions of the inversion must be printed as witness paths.
    assert!(msg.contains("path 1:") && msg.contains("path 2:"), "{msg}");
    assert!(
        msg.contains("session_then_inflight") && msg.contains("inflight_then_session"),
        "{msg}"
    );
    // Each witness descends through the helper that hides the acquisition.
    assert!(
        msg.contains("bump_inflight") && msg.contains("touch_sessions"),
        "{msg}"
    );
}

#[test]
fn gx701_accepts_the_committed_order() {
    let diags = check(&[("gx701_ordered.rs", "crates/serve/src/fixture.rs")]);
    assert!(!rules_of(&diags).contains(&"GX701"), "{diags:?}");
}

#[test]
fn gx702_flags_blocking_two_frames_down() {
    let diags = check(&[("gx702_deep_block.rs", "crates/serve/src/fixture.rs")]);
    let gx702: Vec<_> = diags.iter().filter(|d| d.rule == "GX702").collect();
    assert_eq!(gx702.len(), 1, "{diags:?}");
    let msg = &gx702[0].msg;
    // The witness chain spells out the two intermediate frames down to
    // the primitive.
    assert!(msg.contains("notify_all"), "{msg}");
    assert!(
        msg.contains("send_frame") && msg.contains("write_all"),
        "{msg}"
    );
}

#[test]
fn gx702_accepts_snapshot_then_drop() {
    let diags = check(&[("gx702_clean.rs", "crates/serve/src/fixture.rs")]);
    assert!(!rules_of(&diags).contains(&"GX702"), "{diags:?}");
}

#[test]
fn gx703_flags_reacquire_through_a_helper() {
    let diags = check(&[("gx703_double_acquire.rs", "crates/serve/src/fixture.rs")]);
    let gx703: Vec<_> = diags.iter().filter(|d| d.rule == "GX703").collect();
    assert_eq!(gx703.len(), 1, "{diags:?}");
    assert!(gx703[0].msg.contains("pick_victim"), "{}", gx703[0].msg);
}

#[test]
fn gx703_accepts_passing_the_guard_down() {
    let diags = check(&[("gx703_clean.rs", "crates/serve/src/fixture.rs")]);
    assert!(!rules_of(&diags).contains(&"GX703"), "{diags:?}");
}

#[test]
fn gx704_flags_relaxed_poll_of_a_released_flag() {
    let diags = check(&[(
        "gx704_relaxed_handshake.rs",
        "crates/runtime/src/fixture.rs",
    )]);
    let gx704: Vec<_> = diags.iter().filter(|d| d.rule == "GX704").collect();
    assert_eq!(gx704.len(), 1, "{diags:?}");
    let msg = &gx704[0].msg;
    assert!(msg.contains("`ready`") && msg.contains("Release"), "{msg}");
}

#[test]
fn gx704_accepts_pure_counters_and_paired_orderings() {
    let diags = check(&[("gx704_clean.rs", "crates/runtime/src/fixture.rs")]);
    assert!(!rules_of(&diags).contains(&"GX704"), "{diags:?}");
}

#[test]
fn gx303_flags_blocking_before_arming() {
    let diags = check(&[("gx303_unarmed.rs", "crates/serve/src/fixture.rs")]);
    let gx303: Vec<_> = diags.iter().filter(|d| d.rule == "GX303").collect();
    assert_eq!(gx303.len(), 1, "{diags:?}");
    assert!(gx303[0].msg.contains("read_exact"), "{}", gx303[0].msg);
}

#[test]
fn gx303_accepts_arming_via_the_shared_helper() {
    let diags = check(&[("gx303_armed_helper.rs", "crates/serve/src/fixture.rs")]);
    assert!(!rules_of(&diags).contains(&"GX303"), "{diags:?}");
}

#[test]
fn gx303_is_scoped_to_serve() {
    let diags = check(&[("gx303_unarmed.rs", "crates/runtime/src/fixture.rs")]);
    assert!(!rules_of(&diags).contains(&"GX303"), "{diags:?}");
}

#[test]
fn fn_scoped_allow_suppresses_exactly_one_function() {
    let cfg = Config::parse(
        "[[allow]]\nrule = \"GX702\"\npath = \"crates/serve/src/fixture.rs\"\nfn = \"broadcast\"\nreason = \"fixture\"\n",
    )
    .expect("config parses");
    let files = vec![parsed("gx702_deep_block.rs", "crates/serve/src/fixture.rs")];
    let diags = concurrency::check(&files, &cfg);
    assert!(!rules_of(&diags).contains(&"GX702"), "{diags:?}");
}

#[test]
fn full_pipeline_reports_the_inversion() {
    // End to end through lint_files: per-file rules plus the concurrency
    // tier, exactly one GX701 for the seeded inversion.
    let src = fixture("gx701_inversion.rs");
    let diags = gptune_xtask::lint_files(
        &[("crates/serve/src/fixture.rs".to_string(), src)],
        &Config::default(),
    );
    assert_eq!(
        diags.iter().filter(|d| d.rule == "GX701").count(),
        1,
        "{diags:?}"
    );
}

#[test]
fn lock_graph_text_matches_golden() {
    let files = vec![parsed("gx701_inversion.rs", "crates/serve/src/fixture.rs")];
    let text = concurrency::lock_graph_text(&files);
    let golden = fixture("lock_graph_golden.txt");
    assert_eq!(text, golden, "lock-graph text drifted from the golden file");
}
