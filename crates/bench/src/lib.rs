//! Shared helpers for the experiment harnesses.
//!
//! Every bench target regenerates one table or figure of the paper (see
//! `DESIGN.md` §3 for the index). The paper's runs used up to 64 Cori
//! nodes and hours of machine time; the harnesses run the same tuner code
//! on the simulated applications at laptop scale, so task counts and
//! budgets are sometimes reduced — each harness states its deviations in
//! its header.

use gptune::space::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Prints the experiment banner.
pub fn banner(id: &str, paper: &str, ours: &str) {
    println!("{}", "=".repeat(78));
    println!("{id}");
    println!("  paper setup : {paper}");
    println!("  this harness: {ours}");
    println!("{}", "=".repeat(78));
}

/// Random PDGEQRF tasks `m, n < max_dim` (paper Secs. 6.4–6.6).
pub fn random_qr_tasks(count: usize, max_dim: i64, seed: u64) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            vec![
                Value::Int(rng.gen_range(1000..max_dim)),
                Value::Int(rng.gen_range(1000..max_dim)),
            ]
        })
        .collect()
}

/// Random hypre tasks `10 ≤ n_i ≤ 100` (paper Sec. 6.6).
pub fn random_hypre_tasks(count: usize, seed: u64) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..3)
                .map(|_| Value::Int(rng.gen_range(10..=100)))
                .collect()
        })
        .collect()
}

/// Formats a row of f64 cells.
pub fn row(label: &str, values: &[f64], width: usize, prec: usize) -> String {
    let mut s = format!("{label:<24}");
    for v in values {
        s.push_str(&format!(" {v:>width$.prec$}"));
    }
    s
}

/// A crude fixed-width ASCII sparkline for printed "figures".
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-300);
    values
        .iter()
        .map(|v| GLYPHS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_generators_deterministic() {
        assert_eq!(random_qr_tasks(3, 5000, 1), random_qr_tasks(3, 5000, 1));
        assert_ne!(random_qr_tasks(3, 5000, 1), random_qr_tasks(3, 5000, 2));
        assert_eq!(random_hypre_tasks(4, 9).len(), 4);
    }

    #[test]
    fn sparkline_extremes() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }
}
