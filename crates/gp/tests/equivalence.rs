//! Equivalence harness for the distance-cached LCM hot path.
//!
//! The PR that introduced the packed distance cache, the `W ∘ K_q`
//! gradient restructuring, and the batched multi-RHS prediction kept the
//! pre-refactor implementations as explicit baselines
//! (`nll_at_reference*`, `predict_reference`, `reference_impl`). These
//! tests pin the optimized paths to those baselines:
//!
//! * cached NLL + analytic gradient ≤ 1e-12 (relative) of the naive
//!   reference, for both kernel families, on multitask data — the only
//!   permitted difference is the reassociation of `r²` from a per-pair
//!   running sum into a weighted dot against cached `(x_d − y_d)²`;
//! * `predict_batch` reproduces per-point `predict` to ≤ 1e-12 (the
//!   variance reduction is accumulated as `‖L⁻¹k*‖²` instead of
//!   `k*ᵀΣ⁻¹k*` — same quadratic form, different summation order);
//! * the analytic gradient *through the cached path* matches central
//!   finite differences, so the cache cannot silently ship a wrong but
//!   self-consistent gradient.

use gptune_gp::{KernelKind, LcmFitOptions, LcmHyperparams, LcmModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative difference scaled by magnitude (and safe at zero).
fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / (1.0 + a.abs().max(b.abs()))
}

/// Synthetic multitask data: inputs in the unit cube, tasks round-robin,
/// smooth per-task response plus a little noise.
fn synth(n: usize, dim: usize, n_tasks: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let task_of: Vec<usize> = (0..n).map(|i| i % n_tasks).collect();
    let y: Vec<f64> = xs
        .iter()
        .zip(&task_of)
        .map(|(x, &t)| {
            let s: f64 = x
                .iter()
                .enumerate()
                .map(|(d, v)| ((1.0 + 0.3 * t as f64) * v * 3.0 + 0.2 * d as f64).sin())
                .sum();
            s + 0.05 * (rng.gen::<f64>() - 0.5)
        })
        .collect();
    (xs, task_of, y)
}

/// Well-conditioned packed hyperparameters: random lengthscales and task
/// coefficients, but noise floors high enough that the covariance is far
/// from singular (so reference and cached Cholesky agree to roundoff).
fn well_conditioned_theta(q: usize, n_tasks: usize, dim: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hp = LcmHyperparams::random_init(q, n_tasks, dim, &mut rng);
    for b in hp.b.iter_mut().flatten() {
        *b = 0.02 + 0.03 * rng.gen::<f64>();
    }
    for d in &mut hp.d {
        *d = 0.05 + 0.05 * rng.gen::<f64>();
    }
    hp.pack()
}

fn assert_nll_grad_equivalent(kernel: KernelKind, n: usize, n_tasks: usize, q: usize, seed: u64) {
    let dim = 3;
    let (xs, task_of, y) = synth(n, dim, n_tasks, seed);
    let theta = well_conditioned_theta(q, n_tasks, dim, seed ^ 0xbeef);

    let mut g_cached = vec![0.0; theta.len()];
    let mut g_ref = vec![0.0; theta.len()];
    let nll_cached =
        LcmModel::nll_at_with_kernel(&xs, &task_of, &y, n_tasks, q, kernel, &theta, &mut g_cached);
    let nll_ref = LcmModel::nll_at_reference_with_kernel(
        &xs, &task_of, &y, n_tasks, q, kernel, &theta, &mut g_ref,
    );

    assert!(
        rel(nll_cached, nll_ref) <= 1e-12,
        "{kernel:?} n={n}: nll cached {nll_cached} vs reference {nll_ref}"
    );
    for (i, (c, r)) in g_cached.iter().zip(&g_ref).enumerate() {
        assert!(
            rel(*c, *r) <= 1e-12,
            "{kernel:?} n={n} grad[{i}]: cached {c} vs reference {r}"
        );
    }
}

#[test]
fn cached_nll_and_grad_match_reference_se() {
    for (n, n_tasks, q, seed) in [(24, 2, 2, 11), (40, 3, 2, 12), (31, 2, 1, 13)] {
        assert_nll_grad_equivalent(KernelKind::SquaredExponential, n, n_tasks, q, seed);
    }
}

#[test]
fn cached_nll_and_grad_match_reference_matern() {
    for (n, n_tasks, q, seed) in [(24, 2, 2, 21), (40, 3, 2, 22), (31, 2, 1, 23)] {
        assert_nll_grad_equivalent(KernelKind::Matern52, n, n_tasks, q, seed);
    }
}

#[test]
fn cached_gradient_matches_finite_differences() {
    // FD directly through the *cached* path, so a wrong-but-self-consistent
    // cached gradient cannot hide behind the reference comparison.
    let (n, dim, n_tasks, q) = (18, 3, 2, 2);
    let (xs, task_of, y) = synth(n, dim, n_tasks, 31);
    for kernel in [KernelKind::SquaredExponential, KernelKind::Matern52] {
        let theta = well_conditioned_theta(q, n_tasks, dim, 32);
        let mut grad = vec![0.0; theta.len()];
        let _ =
            LcmModel::nll_at_with_kernel(&xs, &task_of, &y, n_tasks, q, kernel, &theta, &mut grad);
        let h = 1e-5;
        let mut scratch = vec![0.0; theta.len()];
        for (i, g) in grad.iter().enumerate() {
            let mut tp = theta.clone();
            tp[i] += h;
            let fp = LcmModel::nll_at_with_kernel(
                &xs,
                &task_of,
                &y,
                n_tasks,
                q,
                kernel,
                &tp,
                &mut scratch,
            );
            let mut tm = theta.clone();
            tm[i] -= h;
            let fm = LcmModel::nll_at_with_kernel(
                &xs,
                &task_of,
                &y,
                n_tasks,
                q,
                kernel,
                &tm,
                &mut scratch,
            );
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (g - fd).abs() <= 1e-4 * (1.0 + g.abs()),
                "{kernel:?} theta[{i}]: analytic {g} vs fd {fd}"
            );
        }
    }
}

#[test]
fn predict_batch_matches_per_point_predict() {
    let (xs, task_of, y) = synth(36, 3, 2, 41);
    let opts = LcmFitOptions {
        n_starts: 2,
        ..Default::default()
    };
    let model = LcmModel::fit(&xs, &task_of, &y, 2, &opts);

    let mut rng = StdRng::seed_from_u64(42);
    // Chunk boundaries: 1 point, a partial chunk, exactly one chunk (64),
    // and two chunks plus a remainder.
    for m in [1usize, 5, 64, 130] {
        let cands: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..3).map(|_| rng.gen::<f64>()).collect())
            .collect();
        for task in 0..2 {
            let batch = model.predict_batch(task, &cands);
            assert_eq!(batch.len(), m);
            for (c, bp) in cands.iter().zip(&batch) {
                let pp = model.predict(task, c);
                assert!(
                    rel(bp.mean, pp.mean) <= 1e-12,
                    "task {task} m={m}: batch mean {} vs point {}",
                    bp.mean,
                    pp.mean
                );
                assert!(
                    rel(bp.variance, pp.variance) <= 1e-12,
                    "task {task} m={m}: batch var {} vs point {}",
                    bp.variance,
                    pp.variance
                );
            }
        }
    }
    assert!(model.predict_batch(0, &[]).is_empty());
}

#[test]
fn optimized_predict_matches_reference_predict() {
    let (xs, task_of, y) = synth(30, 2, 2, 51);
    let opts = LcmFitOptions {
        n_starts: 2,
        ..Default::default()
    };
    let model = LcmModel::fit(&xs, &task_of, &y, 2, &opts);
    let mut rng = StdRng::seed_from_u64(52);
    for _ in 0..50 {
        let x: Vec<f64> = (0..2).map(|_| rng.gen::<f64>()).collect();
        for task in 0..2 {
            let p = model.predict(task, &x);
            let r = model.predict_reference(task, &x);
            assert!(rel(p.mean, r.mean) <= 1e-12, "{} vs {}", p.mean, r.mean);
            assert!(
                rel(p.variance, r.variance) <= 1e-12,
                "{} vs {}",
                p.variance,
                r.variance
            );
        }
    }
}

#[test]
fn reference_impl_fit_optimizes_the_same_objective() {
    // `reference_impl: true` and the cached path optimize the same surface.
    // Multi-start L-BFGS may still select different local optima (a 1e-16
    // reassociation difference can flip a line-search branch), so instead
    // of comparing trajectories, evaluate each fit's optimum under the
    // *other* implementation: the NLLs must agree to roundoff there.
    let (xs, task_of, y) = synth(24, 2, 2, 61);
    let opts = LcmFitOptions {
        n_starts: 2,
        seed: 7,
        ..Default::default()
    };
    let cached = LcmModel::fit(&xs, &task_of, &y, 2, &opts);
    let ref_opts = LcmFitOptions {
        reference_impl: true,
        ..opts.clone()
    };
    let reference = LcmModel::fit(&xs, &task_of, &y, 2, &ref_opts);

    // Fitted optima push b/d toward their boundaries — a harsher setting
    // than the random well-conditioned thetas above. Both implementations
    // must still agree to roundoff there (the fit standardizes y
    // internally, so the comparison reruns both evaluators on raw y at
    // the fitted packed hyperparameters rather than trusting the stored
    // nll values).
    for model in [&cached, &reference] {
        let hp = model.hyperparams();
        let theta = hp.pack();
        let mut gc = vec![0.0; theta.len()];
        let mut gr = vec![0.0; theta.len()];
        let at_cached =
            LcmModel::nll_at_with_kernel(&xs, &task_of, &y, 2, hp.q, opts.kernel, &theta, &mut gc);
        let at_ref = LcmModel::nll_at_reference_with_kernel(
            &xs,
            &task_of,
            &y,
            2,
            hp.q,
            opts.kernel,
            &theta,
            &mut gr,
        );
        // Near-singular covariances at the optimum amplify the benign
        // 1e-16 reassociation difference through the inverse, so the
        // boundary tolerance is looser than the 1e-12 of the
        // well-conditioned harness above.
        assert!(
            rel(at_cached, at_ref) <= 1e-9,
            "at fitted optimum: cached {at_cached} vs reference {at_ref}"
        );
        for (i, (c, r)) in gc.iter().zip(&gr).enumerate() {
            assert!(
                rel(*c, *r) <= 1e-9,
                "at fitted optimum grad[{i}]: cached {c} vs reference {r}"
            );
        }
    }
}
