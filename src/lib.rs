//! GPTune-rs — a from-scratch Rust reproduction of
//! *GPTune: Multitask Learning for Autotuning Exascale Applications*
//! (Liu et al., PPoPP 2021).
//!
//! This facade crate re-exports the workspace and provides the glue that
//! turns a simulated HPC application ([`apps::HpcApp`]) into a
//! [`core::TuningProblem`] the MLA tuners consume.
//!
//! # Quickstart
//!
//! ```
//! use gptune::{problem_from_app, core::{mla, MlaOptions}};
//! use gptune::apps::{AnalyticalApp, HpcApp};
//! use gptune::space::Value;
//! use std::sync::Arc;
//!
//! // Tune the paper's analytical objective (Eq. 11) for two tasks at once.
//! let app: Arc<dyn HpcApp> = Arc::new(AnalyticalApp::new(0.0));
//! let tasks = vec![vec![Value::Real(1.0)], vec![Value::Real(2.0)]];
//! let problem = problem_from_app(Arc::clone(&app), tasks);
//! let mut opts = MlaOptions::default().with_budget(10).with_seed(1);
//! opts.lcm.n_starts = 2;
//! opts.log_objective = false;
//! let result = mla::tune(&problem, &opts);
//! assert_eq!(result.per_task.len(), 2);
//! assert!(result.per_task[0].best_value.is_finite());
//! ```

pub mod cli;

pub use gptune_apps as apps;
pub use gptune_baselines as baselines;
pub use gptune_core as core;
pub use gptune_db as db;
pub use gptune_gp as gp;
pub use gptune_la as la;
pub use gptune_opt as opt;
pub use gptune_runtime as runtime;
pub use gptune_serve as serve;
pub use gptune_space as space;
pub use gptune_sparse as sparse;
pub use gptune_trace as trace;

use gptune_apps::HpcApp;
use gptune_core::TuningProblem;
use gptune_space::Config;
use std::sync::Arc;

/// Builds a [`TuningProblem`] from a simulated HPC application and a task
/// list, wiring through the objective, the output dimension `γ`, and the
/// coarse performance model when the application provides one.
pub fn problem_from_app(app: Arc<dyn HpcApp>, tasks: Vec<Config>) -> TuningProblem {
    let name = app.name().to_string();
    let task_space = app.task_space().clone();
    let tuning_space = app.tuning_space().clone();
    let gamma = app.n_objectives();
    let has_model = {
        // Probe whether the app advertises performance-model features:
        // use its default configuration when it has one, otherwise the
        // centre of the tuning space (model features are analytic formulas
        // and do not require constraint feasibility).
        let probe_cfg = app
            .default_config()
            .unwrap_or_else(|| tuning_space.denormalize(&vec![0.5; tuning_space.dim()]));
        tasks
            .first()
            .is_some_and(|t| app.model_features(t, &probe_cfg).is_some())
    };

    let obj_app = Arc::clone(&app);
    let mut problem = TuningProblem::new(
        name,
        task_space,
        tuning_space,
        tasks,
        move |task, config, seed| obj_app.evaluate(task, config, seed),
    )
    .with_objectives(gamma);

    if has_model {
        let model_app = Arc::clone(&app);
        problem = problem.with_model(move |task, config| {
            model_app
                .model_features(task, config)
                .expect("application advertised a performance model")
        });
    }
    problem
}

/// Builds a single-objective view of a multi-objective application by
/// selecting output `objective_idx` (used e.g. to tune SuperLU_DIST for
/// time only or memory only, Table 5).
pub fn problem_from_app_objective(
    app: Arc<dyn HpcApp>,
    tasks: Vec<Config>,
    objective_idx: usize,
) -> TuningProblem {
    assert!(objective_idx < app.n_objectives());
    let name = format!("{}[{}]", app.name(), objective_idx);
    let task_space = app.task_space().clone();
    let tuning_space = app.tuning_space().clone();
    let obj_app = Arc::clone(&app);
    TuningProblem::new(
        name,
        task_space,
        tuning_space,
        tasks,
        move |task, config, seed| {
            let out = obj_app.evaluate(task, config, seed);
            vec![out[objective_idx]]
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_apps::{AnalyticalApp, MachineModel, PdgeqrfApp, SuperluApp};
    use gptune_space::Value;

    #[test]
    fn problem_from_analytical_app() {
        let app: Arc<dyn HpcApp> = Arc::new(AnalyticalApp::new(0.0));
        let p = problem_from_app(Arc::clone(&app), vec![vec![Value::Real(1.0)]]);
        assert_eq!(p.n_objectives, 1);
        let y = p.evaluate(0, &[Value::Real(0.25)], 0);
        assert_eq!(y[0], AnalyticalApp::exact(1.0, 0.25));
    }

    #[test]
    fn analytical_wires_performance_model_without_default_config() {
        // Regression: the model probe must not require a default_config.
        let app: Arc<dyn HpcApp> = Arc::new(AnalyticalApp::new(0.0));
        assert!(app.default_config().is_none());
        let p = problem_from_app(Arc::clone(&app), vec![vec![Value::Real(1.0)]]);
        assert!(p.model.is_some(), "analytical model features must be wired");
        let f = p.model_features(0, &[Value::Real(0.25)]).unwrap();
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn pdgeqrf_wires_performance_model() {
        let app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(MachineModel::cori_noiseless(1), 8000));
        let p = problem_from_app(
            Arc::clone(&app),
            vec![vec![Value::Int(2000), Value::Int(2000)]],
        );
        assert!(p.model.is_some());
        let cfg = app.default_config().unwrap();
        let f = p.model_features(0, &cfg).unwrap();
        assert_eq!(f.len(), 3); // C_flop, C_msg, C_vol
    }

    #[test]
    fn objective_selection_on_superlu() {
        let app: Arc<dyn HpcApp> = Arc::new(SuperluApp::new(MachineModel::cori_noiseless(8)));
        let tasks = SuperluApp::tasks(1);
        let time_only = problem_from_app_objective(Arc::clone(&app), tasks.clone(), 0);
        let mem_only = problem_from_app_objective(Arc::clone(&app), tasks.clone(), 1);
        assert_eq!(time_only.n_objectives, 1);
        let cfg = app.default_config().unwrap();
        let both = app.evaluate(&tasks[0], &cfg, 0);
        assert_eq!(time_only.evaluate(0, &cfg, 0)[0], both[0]);
        assert_eq!(mem_only.evaluate(0, &cfg, 0)[0], both[1]);
    }
}
