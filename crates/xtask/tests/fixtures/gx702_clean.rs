// GX702 clean fixture: the guard is dropped (and a snapshot taken)
// before the blocking call chain runs.

fn broadcast(s: &ServerState) {
    let peers = {
        let guard = s.conns.lock().unwrap();
        guard.clone()
    };
    notify_all(&peers);
}

fn notify_all(peers: &[TcpStream]) {
    for peer in peers {
        send_frame(peer);
    }
}

fn send_frame(peer: &mut TcpStream) {
    peer.write_all(b"notify").ok();
}
