//! Equivalence harness for the incremental LCM refit path.
//!
//! The incremental PR extends the stored Cholesky factor one
//! cross-covariance column at a time ([`LcmModel::extend`]) instead of
//! refactoring, and caps the active set with a farthest-point subset
//! (`LcmFitOptions::max_active_set`). These tests pin that machinery:
//!
//! * ≥64 sequential single-point appends stay within 1e-10 (relative) of
//!   a from-scratch rebuild at the same hyperparameters — predictions
//!   (mean and variance) and factor-based NLL, checked after *every*
//!   append, not just the last;
//! * remove∘extend round-trips: evicting a point and re-admitting it
//!   reproduces the original posterior (the training set is the same,
//!   only the factor's row order differs);
//! * the capped active set approximates a known smooth surface within a
//!   fixed tolerance while holding `n_samples` at the cap;
//! * `loo_diagnostics` and `covariance_condition_number` stay finite on
//!   degenerate (duplicate-x) histories — the jitter path must absorb
//!   the singularity rather than leak NaNs into diagnostics.

use gptune_gp::{IncrementalLcm, KernelKind, LcmFitOptions, LcmModel, RefitMode, RefitSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative difference scaled by magnitude (and safe at zero).
fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / (1.0 + a.abs().max(b.abs()))
}

/// Synthetic multitask data: inputs in the unit cube, tasks round-robin,
/// smooth per-task response plus a little noise.
fn synth(n: usize, dim: usize, n_tasks: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let task_of: Vec<usize> = (0..n).map(|i| i % n_tasks).collect();
    let y: Vec<f64> = xs
        .iter()
        .zip(&task_of)
        .map(|(x, &t)| {
            let s: f64 = x
                .iter()
                .enumerate()
                .map(|(d, v)| ((1.0 + 0.3 * t as f64) * v * 3.0 + 0.2 * d as f64).sin())
                .sum();
            s + 0.05 * (rng.gen::<f64>() - 0.5)
        })
        .collect();
    (xs, task_of, y)
}

fn probe_points(dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..8)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

/// Well-conditioned hyperparameters: random lengthscales and task
/// coefficients, but noise floors high enough that the covariance is far
/// from singular — so the O(n²) extension and the O(n³) refactorization
/// agree to roundoff instead of to roundoff × condition number.
fn well_conditioned_hp(
    q: usize,
    n_tasks: usize,
    dim: usize,
    seed: u64,
) -> gptune_gp::LcmHyperparams {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hp = gptune_gp::LcmHyperparams::random_init(q, n_tasks, dim, &mut rng);
    for b in hp.b.iter_mut().flatten() {
        *b = 0.02 + 0.03 * rng.gen::<f64>();
    }
    for d in hp.d.iter_mut() {
        *d = 0.05 + 0.05 * rng.gen::<f64>();
    }
    hp
}

#[test]
fn sixty_four_sequential_appends_match_from_scratch() {
    let n0 = 40;
    let appends = 64;
    let dim = 3;
    let n_tasks = 2;
    let (xs, task_of, y) = synth(n0 + appends, dim, n_tasks, 42);
    let hp = well_conditioned_hp(2, n_tasks, dim, 9);
    let mut model = LcmModel::from_hyperparams(
        &xs[..n0],
        &task_of[..n0],
        &y[..n0],
        n_tasks,
        KernelKind::SquaredExponential,
        hp,
        None,
    );
    let standardization = model.standardization();
    let probes = probe_points(dim, 7);

    for n in (n0 + 1)..=(n0 + appends) {
        model
            .extend(&xs[n - 1..n], &task_of[n - 1..n], &y[n - 1..n])
            .expect("extend");
        assert_eq!(model.n_samples(), n);

        // From-scratch rebuild at identical hyperparameters and output
        // standardization — the only difference is O(n²) extension vs
        // O(n³) refactorization.
        let scratch = LcmModel::from_hyperparams(
            &xs[..n],
            &task_of[..n],
            &y[..n],
            n_tasks,
            KernelKind::SquaredExponential,
            model.hyperparams().clone(),
            Some(standardization),
        );
        let d_nll = rel(model.nll_from_factor(), scratch.nll_from_factor());
        assert!(d_nll < 1e-10, "n={n}: NLL drift {d_nll}");
        for t in 0..n_tasks {
            for p in &probes {
                let a = model.predict(t, p);
                let b = scratch.predict(t, p);
                assert!(
                    rel(a.mean, b.mean) < 1e-10,
                    "n={n} task={t}: mean {} vs {}",
                    a.mean,
                    b.mean
                );
                assert!(
                    rel(a.variance, b.variance) < 1e-10,
                    "n={n} task={t}: var {} vs {}",
                    a.variance,
                    b.variance
                );
            }
        }
    }
}

#[test]
fn batched_extension_matches_one_at_a_time() {
    let (xs, task_of, y) = synth(72, 2, 3, 5);
    let n0 = 48;
    let opts = LcmFitOptions {
        n_starts: 1,
        seed: 3,
        ..Default::default()
    };
    let mut one = LcmModel::fit(&xs[..n0], &task_of[..n0], &y[..n0], 3, &opts);
    let mut batched = one.clone();
    for n in n0..xs.len() {
        one.extend(&xs[n..n + 1], &task_of[n..n + 1], &y[n..n + 1])
            .unwrap();
    }
    batched.extend(&xs[n0..], &task_of[n0..], &y[n0..]).unwrap();
    assert!(rel(one.nll_from_factor(), batched.nll_from_factor()) < 1e-12);
    for p in probe_points(2, 11) {
        let a = one.predict(1, &p);
        let b = batched.predict(1, &p);
        assert!(rel(a.mean, b.mean) < 1e-12 && rel(a.variance, b.variance) < 1e-12);
    }
}

#[test]
fn remove_then_extend_round_trips_the_posterior() {
    let (xs, task_of, y) = synth(60, 2, 2, 17);
    let opts = LcmFitOptions {
        n_starts: 1,
        seed: 1,
        ..Default::default()
    };
    let base = LcmModel::fit(&xs, &task_of, &y, 2, &opts);
    // Evict an interior point, then re-admit it: same training set, so
    // the posterior must match even though the factor's row order moved.
    let idx = 23;
    let mut model = base.clone();
    model.remove(idx);
    assert_eq!(model.n_samples(), xs.len() - 1);
    model
        .extend(&xs[idx..idx + 1], &task_of[idx..idx + 1], &y[idx..idx + 1])
        .expect("re-extend");
    assert!(rel(model.nll_from_factor(), base.nll_from_factor()) < 1e-10);
    for t in 0..2 {
        for p in probe_points(2, 29) {
            let a = model.predict(t, &p);
            let b = base.predict(t, &p);
            assert!(
                rel(a.mean, b.mean) < 1e-10,
                "task={t}: mean {} vs {}",
                a.mean,
                b.mean
            );
            assert!(rel(a.variance, b.variance) < 1e-10);
        }
    }
}

#[test]
fn duplicate_point_extension_fails_typed_and_full_refit_recovers() {
    let (xs, task_of, y) = synth(50, 2, 2, 23);
    let opts = LcmFitOptions {
        n_starts: 1,
        seed: 2,
        ..Default::default()
    };
    let mut model = LcmModel::fit(&xs, &task_of, &y, 2, &opts);
    let before = model.predict(0, &xs[10]);
    // An exact duplicate of an existing point for the same task makes the
    // extended covariance numerically singular; the factor extension must
    // report a typed failure and leave the model untouched.
    let dup = xs[10].clone();
    let r = model.extend(&[dup.clone()], &[task_of[10]], &[y[10]]);
    if r.is_err() {
        let after = model.predict(0, &xs[10]);
        assert_eq!(before.mean.to_bits(), after.mean.to_bits());
        assert_eq!(before.variance.to_bits(), after.variance.to_bits());
    }
    // Either way, the scheduler-level fallback (a full refit over the
    // grown history, where the jitter loop absorbs the singularity) must
    // produce a usable model.
    let mut grown_xs = xs.clone();
    let mut grown_tasks = task_of.clone();
    let mut grown_y = y.clone();
    grown_xs.push(dup);
    grown_tasks.push(task_of[10]);
    grown_y.push(y[10]);
    let mut inc = IncrementalLcm::new(RefitSchedule {
        full_every: 100,
        nll_drift: 0.0,
    });
    inc.update(&xs, &task_of, &y, 2, &opts);
    let mode = inc.update(&grown_xs, &grown_tasks, &grown_y, 2, &opts);
    let m = inc.model().unwrap();
    assert_eq!(m.n_samples(), grown_xs.len());
    let p = m.predict(0, &xs[10]);
    assert!(p.mean.is_finite() && p.variance.is_finite() && p.variance >= 0.0);
    assert!(mode == RefitMode::Full || mode == RefitMode::Incremental);
}

#[test]
fn capped_active_set_approximates_a_known_surface() {
    // Known smooth surface, 1-D, two related tasks.
    let f = |x: f64, t: usize| (2.0 * std::f64::consts::PI * x).sin() + 0.3 * t as f64;
    let n = 240;
    let cap = 96;
    let mut xs = Vec::new();
    let mut task_of = Vec::new();
    let mut y = Vec::new();
    for i in 0..n {
        let t = i % 2;
        let x = (i as f64 + 0.5) / n as f64;
        xs.push(vec![x]);
        task_of.push(t);
        y.push(f(x, t));
    }
    let capped_opts = LcmFitOptions {
        n_starts: 2,
        seed: 4,
        max_active_set: Some(cap),
        ..Default::default()
    };
    let model = LcmModel::fit(&xs, &task_of, &y, 2, &capped_opts);
    // The cap binds: the active set stops growing with history size.
    assert_eq!(model.n_samples(), cap);
    // Fixed-tolerance approximation error on a dense evaluation grid.
    let mut sq = 0.0;
    let mut m = 0;
    for t in 0..2usize {
        for j in 0..50 {
            let x = (j as f64 + 0.5) / 50.0;
            let p = model.predict(t, &[x]);
            assert!(p.mean.is_finite() && p.variance.is_finite());
            sq += (p.mean - f(x, t)) * (p.mean - f(x, t));
            m += 1;
        }
    }
    let rmse = (sq / m as f64).sqrt();
    assert!(rmse < 0.15, "capped rmse {rmse}");
}

#[test]
fn loo_diagnostics_finite_on_duplicate_x_history() {
    // Degenerate history: every point duplicated exactly, with slightly
    // different outputs (repeated measurements of a noisy objective).
    let (xs0, task0, y0) = synth(24, 2, 2, 31);
    let mut xs = Vec::new();
    let mut task_of = Vec::new();
    let mut y = Vec::new();
    for i in 0..xs0.len() {
        xs.push(xs0[i].clone());
        task_of.push(task0[i]);
        y.push(y0[i]);
        xs.push(xs0[i].clone());
        task_of.push(task0[i]);
        y.push(y0[i] + 0.01);
    }
    let opts = LcmFitOptions {
        n_starts: 2,
        seed: 6,
        ..Default::default()
    };
    let model = LcmModel::fit(&xs, &task_of, &y, 2, &opts);
    let (rmse, calib) = model.loo_diagnostics();
    assert!(rmse.is_finite() && rmse >= 0.0, "rmse {rmse}");
    assert!(calib.is_finite() && calib >= 0.0, "calibration {calib}");
    let cond = model.covariance_condition_number();
    assert!(cond.is_finite() && cond >= 1.0, "cond {cond}");
}

#[test]
fn diagnostics_track_an_incrementally_extended_model() {
    let (xs, task_of, y) = synth(70, 2, 2, 37);
    let n0 = 50;
    let opts = LcmFitOptions {
        n_starts: 1,
        seed: 8,
        ..Default::default()
    };
    let mut model = LcmModel::fit(&xs[..n0], &task_of[..n0], &y[..n0], 2, &opts);
    model
        .extend(&xs[n0..], &task_of[n0..], &y[n0..])
        .expect("extend");
    let (rmse, calib) = model.loo_diagnostics();
    assert!(rmse.is_finite() && calib.is_finite());
    let cond = model.covariance_condition_number();
    assert!(cond.is_finite() && cond >= 1.0);
    // Diagnostics agree with the from-scratch rebuild at the same
    // hyperparameters — LOO reads only the factor and alpha.
    let scratch = LcmModel::from_hyperparams(
        &xs,
        &task_of,
        &y,
        2,
        KernelKind::SquaredExponential,
        model.hyperparams().clone(),
        Some(model.standardization()),
    );
    let (s_rmse, s_calib) = scratch.loo_diagnostics();
    assert!(rel(rmse, s_rmse) < 1e-8, "{rmse} vs {s_rmse}");
    assert!(rel(calib, s_calib) < 1e-8, "{calib} vs {s_calib}");
}
