//! Minimal JSON model, parser, and writer.
//!
//! The journal format needs exact round-trips for three kinds of payload
//! that general-purpose JSON handles poorly:
//!
//! * `i64` values (tuning integers) must not travel through `f64`;
//! * `u64` seeds can exceed `2^53` and are therefore encoded as decimal
//!   *strings*;
//! * objective outputs can be `±inf`/`NaN` (failed runs), which JSON cannot
//!   represent — they are encoded as the strings `"inf"`, `"-inf"`, `"nan"`.
//!
//! Keeping the codec in-tree (std only) also keeps `gptune-db` free of
//! external dependencies, so the storage layer builds wherever the tuner
//! builds.

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve key order (append order), which
/// keeps journal lines byte-stable across a parse→write round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction/exponent) that fits `i64`.
    Int(i64),
    /// Any other numeric literal.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view (integers only — floats are not truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// Unsigned view: accepts a non-negative integer or a decimal string
    /// (the encoding used for `u64` seeds).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(x) if *x >= 0 => Some(*x as u64),
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Float view: accepts numeric literals plus the `"inf"`/`"-inf"`/
    /// `"nan"` escape strings used for non-finite objective outputs.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(x) => Some(*x as f64),
            Json::Num(x) => Some(*x),
            Json::Str(s) => match s.as_str() {
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                "nan" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes an `f64`, mapping non-finite values to their escape strings.
    pub fn from_f64(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else if x.is_nan() {
            Json::Str("nan".into())
        } else if x > 0.0 {
            Json::Str("inf".into())
        } else {
            Json::Str("-inf".into())
        }
    }

    /// Encodes a `u64` as a decimal string (safe beyond `2^53`).
    pub fn from_u64(x: u64) -> Json {
        Json::Str(x.to_string())
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's shortest-roundtrip float formatting; force a
                    // fraction so the value re-parses as Num, not Int.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    // Non-finite Num should have been built via from_f64;
                    // degrade gracefully instead of emitting invalid JSON.
                    Json::from_f64(*x).write(out);
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact single-line serialization (`json.to_string()` via `Display`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        src: input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    /// The original input; `bytes` is its byte view. Kept so string
    /// scanning can consume whole UTF-8 scalars without `unsafe`.
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self
            .bytes
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(word.as_bytes()))
        {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not expected in journal data;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input is &str and pos
                    // only ever advances by whole scalars, so pos sits on
                    // a char boundary; if that invariant were ever broken,
                    // get() returns None and we report a parse error
                    // instead of touching unsafe.
                    let c = self
                        .src
                        .get(self.pos..)
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid utf-8 position"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.digits() == 0 {
            return Err(self.err("expected digit"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected digit after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected digit in exponent"));
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("invalid number"))?;
        if !is_float {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Json::Int(x));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for s in ["null", "true", "false", "42", "-7", "3.5", "\"hi\""] {
            let v = parse(s).unwrap();
            assert_eq!(v.to_string(), s, "{s}");
        }
    }

    #[test]
    fn int_vs_float_distinction() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("42.0").unwrap(), Json::Num(42.0));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        // i64 extremes survive exactly.
        let s = i64::MAX.to_string();
        assert_eq!(parse(&s).unwrap(), Json::Int(i64::MAX));
        let s = i64::MIN.to_string();
        assert_eq!(parse(&s).unwrap(), Json::Int(i64::MIN));
    }

    #[test]
    fn float_writer_reparses_as_float() {
        let v = Json::Num(2.0);
        let s = v.to_string();
        assert_eq!(s, "2.0");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        for x in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let s = Json::from_f64(x).to_string();
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.is_nan(), x.is_nan());
            if !x.is_nan() {
                assert_eq!(back, x);
            }
        }
    }

    #[test]
    fn u64_roundtrip_beyond_2_53() {
        let x = u64::MAX - 3;
        let s = Json::from_u64(x).to_string();
        assert_eq!(parse(&s).unwrap().as_u64(), Some(x));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let src = r#"{"a":[1,2.5,"x"],"b":{"c":null,"d":true},"e":[]}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_string(), src);
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\slash\\ unicode: π control: \u{1}";
        let s = Json::Str(original.to_string()).to_string();
        assert_eq!(parse(&s).unwrap().as_str(), Some(original));
    }

    #[test]
    fn truncated_inputs_error() {
        for s in ["{\"a\":1", "[1,2", "\"abc", "{\"a\"", "12.", "{", "tru"] {
            assert!(parse(s).is_err(), "{s} should fail");
        }
    }

    #[test]
    fn garbage_inputs_error() {
        for s in ["", "  ", "{]", "[1 2]", "{'a':1}", "01x", "nulll", "1 2"] {
            assert!(parse(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn float_precision_roundtrip() {
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -2.2e-308,
        ] {
            let s = Json::Num(x).to_string();
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{x} via {s}");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
