//! `db_tool` — command-line maintenance for `gptune-db` archives.
//!
//! ```text
//! cargo run --example db_tool -- inspect    <archive>
//! cargo run --example db_tool -- merge      <dst-archive> <src-archive>
//! cargo run --example db_tool -- compact    <archive>
//! cargo run --example db_tool -- shard      <archive> <journal.jsonl> by-task|window:<n>
//! cargo run --example db_tool -- migrate-v2 <archive> <journal.jsonl>
//! cargo run --example db_tool -- export     <archive> <journal.jsonl>
//! ```
//!
//! * `inspect` — per-journal entry counts and recovery health, archived
//!   run summaries with their `stats:` breakdown, in-flight checkpoints,
//!   and — for sharded problems — the manifest with per-shard format,
//!   label, and entry counts plus the deduplicated combined total;
//! * `merge` — folds every problem of a second archive into the first.
//!   Shard-aware on both sides: the source's shards and live journal are
//!   read together, and entries already present anywhere in the
//!   destination (shards or live journal) are skipped;
//! * `compact` — deduplicates and heals every journal in place; for
//!   sharded problems this also drops live-journal entries already
//!   archived in shards;
//! * `shard` — splits one problem's accumulated history into archive
//!   shards (task-range `by-task` or append-order `window:<n>`), writes
//!   the manifest, and empties the live journal;
//! * `migrate-v2` — rewrites a JSONL journal as a compressed binary
//!   format-v2 archive next to it, then *proves* the round-trip: the v2
//!   file is read back and must reproduce the v1 entries identically, or
//!   the command fails and removes the output;
//! * `export` — prints a journal's evaluation records as CSV on stdout.

use gptune::db::{journal, journal_v2, Db, DbEntry, DbValue, LockOptions, ShardPolicy};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let result = match strs.as_slice() {
        ["inspect", archive] => inspect(Path::new(archive)),
        ["merge", dst, src] => merge(Path::new(dst), Path::new(src)),
        ["compact", archive] => compact(Path::new(archive)),
        ["shard", archive, journal, policy] => shard(Path::new(archive), journal, policy),
        ["migrate-v2", archive, journal] => migrate_v2(Path::new(archive), journal),
        ["export", archive, journal] => export(Path::new(archive), journal),
        _ => {
            eprintln!(
                "usage: db_tool inspect <archive>\n\
                 \u{20}      db_tool merge <dst-archive> <src-archive>\n\
                 \u{20}      db_tool compact <archive>\n\
                 \u{20}      db_tool shard <archive> <journal.jsonl> by-task|window:<n>\n\
                 \u{20}      db_tool migrate-v2 <archive> <journal.jsonl>\n\
                 \u{20}      db_tool export <archive> <journal.jsonl>"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("db_tool: {e}");
        std::process::exit(1);
    }
}

/// Parses `(problem, sig)` back out of a `<problem>-<sig:016x>.jsonl`
/// journal file name.
fn parse_journal_name(name: &str) -> Option<(String, u64)> {
    let stem = name.strip_suffix(".jsonl")?;
    let (problem, sig_hex) = stem.rsplit_once('-')?;
    if sig_hex.len() != 16 {
        return None;
    }
    let sig = u64::from_str_radix(sig_hex, 16).ok()?;
    Some((problem.to_string(), sig))
}

fn inspect(root: &Path) -> std::io::Result<()> {
    let db = Db::open(root)?;
    let journals = db.journals()?;
    println!("archive: {}  journals: {}", root.display(), journals.len());
    for (name, _) in &journals {
        let (entries, report) = journal::load(&root.join(name))?;
        let evals = entries
            .iter()
            .filter(|e| matches!(e, DbEntry::Eval(_)))
            .count();
        let fails = entries
            .iter()
            .filter(|e| matches!(e, DbEntry::Fail(_)))
            .count();
        let mut health = String::new();
        if report.dropped_torn_tail {
            health.push_str("  [torn tail dropped]");
        }
        if report.n_corrupt_interior > 0 {
            health.push_str(&format!(
                "  [{} corrupt lines skipped]",
                report.n_corrupt_interior
            ));
        }
        if report.n_unknown_kind > 0 {
            health.push_str(&format!(
                "  [{} unknown-kind lines skipped]",
                report.n_unknown_kind
            ));
        }
        println!(
            "  {name}: {} entries ({evals} evals, {fails} failures, {} runs){health}",
            entries.len(),
            entries.len() - evals - fails
        );
        for e in &entries {
            if let DbEntry::Run(r) = e {
                println!(
                    "    run: {}  seed: {}  machine: {}",
                    r.prov.run,
                    r.prov.seed,
                    r.prov.machine.as_deref().unwrap_or("-")
                );
                println!("        {}", r.stats.report());
            }
        }
        // Sharded problems: show the manifest and the combined view.
        if let Some((problem, sig)) = parse_journal_name(name) {
            if let Some(manifest) = db.shard_manifest(&problem, sig)? {
                println!(
                    "    sharded ({} policy, {} shards):",
                    manifest.policy,
                    manifest.shards.len()
                );
                for info in &manifest.shards {
                    println!(
                        "      {}: {} entries  [{:?} {}]",
                        info.file, info.n_entries, info.format, info.label
                    );
                }
                let (all, _) = db.load(&problem, sig)?;
                println!("    combined (deduplicated): {} entries", all.len());
            }
        }
    }
    // Manifests whose live journal has been emptied and removed would be
    // invisible above; list any manifest without a sibling journal.
    let mut orphan_manifests: Vec<String> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".manifest.json"))
        .filter(|n| {
            let journal = n.replace(".manifest.json", ".jsonl");
            !journals.iter().any(|(j, _)| *j == journal)
        })
        .collect();
    orphan_manifests.sort();
    for m in &orphan_manifests {
        println!("  shard manifest without live journal: {m}");
    }
    let mut checkpoints: Vec<String> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("ckpt-") && n.ends_with(".json"))
        .collect();
    checkpoints.sort();
    for c in &checkpoints {
        println!("  in-flight checkpoint: {c}");
    }
    Ok(())
}

fn merge(dst_root: &Path, src_root: &Path) -> std::io::Result<()> {
    let dst = Db::open(dst_root)?;
    let src = Db::open(src_root)?;
    let mut total = 0usize;
    // Journal file names embed problem + signature, so matching by name is
    // exactly matching by (problem, sig). Loading through the source Db
    // folds in its archive shards; merge_entries dedups against the whole
    // destination (shards + live journal).
    for (name, _) in src.journals()? {
        let Some((problem, sig)) = parse_journal_name(&name) else {
            eprintln!("  {name}: skipped (unrecognized name)");
            continue;
        };
        let (entries, _) = src.load(&problem, sig)?;
        let added = dst.merge_entries(&problem, sig, &entries)?;
        println!("  {name}: +{added}");
        total += added;
    }
    println!("merged {total} new entries into {}", dst_root.display());
    Ok(())
}

fn compact(root: &Path) -> std::io::Result<()> {
    let db = Db::open(root)?;
    let lock = LockOptions::default();
    for (name, _) in db.journals()? {
        match parse_journal_name(&name) {
            // Sharded problems: also drop live entries already archived.
            Some((problem, sig)) if db.shard_manifest(&problem, sig)?.is_some() => {
                let (kept, dropped) = gptune::db::shard::compact_live(root, &problem, sig, &lock)?;
                println!("  {name}: kept {kept}, dropped {dropped} (shard-aware)");
            }
            _ => {
                let (kept, dropped) = journal::compact(&root.join(&name), &lock)?;
                println!("  {name}: kept {kept}, dropped {dropped}");
            }
        }
    }
    Ok(())
}

fn shard(root: &Path, journal_name: &str, policy_arg: &str) -> std::io::Result<()> {
    let policy = if policy_arg == "by-task" {
        ShardPolicy::ByTask
    } else if let Some(n) = policy_arg.strip_prefix("window:") {
        let n: usize = n.parse().map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("bad window size {n:?}"),
            )
        })?;
        ShardPolicy::Window(n.max(1))
    } else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("unknown policy {policy_arg:?} (want by-task or window:<n>)"),
        ));
    };
    let Some((problem, sig)) = parse_journal_name(journal_name) else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("unrecognized journal name {journal_name:?}"),
        ));
    };
    let db = Db::open(root)?;
    let manifest = db.split_shards(&problem, sig, policy)?;
    println!(
        "sharded {journal_name} into {} shards ({} policy):",
        manifest.shards.len(),
        manifest.policy
    );
    for info in &manifest.shards {
        println!(
            "  {}: {} entries  [{:?} {}]",
            info.file, info.n_entries, info.format, info.label
        );
    }
    Ok(())
}

fn migrate_v2(root: &Path, journal_name: &str) -> std::io::Result<()> {
    let Some((problem, sig)) = parse_journal_name(journal_name) else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("unrecognized journal name {journal_name:?}"),
        ));
    };
    let src = root.join(journal_name);
    let (entries, report) = journal::load(&src)?;
    if !report.is_clean() {
        eprintln!("  note: source journal needed recovery; migrating the recoverable entries");
    }
    let dst = root.join(format!("{}.gdb2", journal_name.trim_end_matches(".jsonl")));
    journal_v2::write(&dst, &problem, sig, &entries)?;
    // Round-trip identity check: the binary archive must reproduce the
    // JSONL entries exactly, or the migration is rejected.
    let (back, _) = journal_v2::load(&dst)?;
    if back != entries {
        let _ = std::fs::remove_file(&dst);
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "round-trip mismatch: v2 archive does not reproduce the journal; output removed",
        ));
    }
    let (src_len, dst_len) = (
        std::fs::metadata(&src)?.len(),
        std::fs::metadata(&dst)?.len(),
    );
    println!(
        "migrated {} entries: {} ({} B) -> {} ({} B, {:.1}% of v1), round-trip verified",
        entries.len(),
        journal_name,
        src_len,
        dst.file_name().unwrap().to_string_lossy(),
        dst_len,
        100.0 * dst_len as f64 / src_len.max(1) as f64
    );
    println!("  (source journal left in place; remove it once the archive is adopted)");
    Ok(())
}

fn export(root: &Path, journal_name: &str) -> std::io::Result<()> {
    let (entries, _) = journal::load(&root.join(journal_name))?;
    println!("task,config,outputs,run,seed");
    for e in &entries {
        if let DbEntry::Eval(r) = e {
            println!(
                "{},{},{},{},{}",
                csv_values(&r.task),
                csv_values(&r.config),
                r.outputs
                    .iter()
                    .map(|y| y.to_string())
                    .collect::<Vec<_>>()
                    .join(";"),
                r.prov.run,
                r.prov.seed
            );
        }
    }
    Ok(())
}

fn csv_values(vs: &[DbValue]) -> String {
    vs.iter()
        .map(|v| match v {
            DbValue::Real(x) => x.to_string(),
            DbValue::Int(i) => i.to_string(),
            DbValue::Cat(c) => format!("#{c}"),
        })
        .collect::<Vec<_>>()
        .join(";")
}
