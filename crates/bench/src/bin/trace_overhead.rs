//! Tracing overhead guard for the gptune-trace instrumentation.
//!
//! Measures two claims and writes them to `BENCH_trace_overhead.json`
//! (path overridable as the first CLI argument):
//!
//! * **enabled overhead** — a full LCM multi-start fit (the `lcm_perf`
//!   workload: n = 256, dim 4, 2 tasks, Q = 2) with an enabled ring tracer
//!   installed vs [`Tracer::disabled`], paired back-to-back with the
//!   reported overhead the *median of per-pair ratios* (same methodology
//!   as `lcm_perf`). Must stay ≤ 3%.
//! * **disabled path cost** — ns per span create/drop against the
//!   disabled global, the "zero-cost when off" guarantee: every recording
//!   call is a branch on `Option::None`, so this must stay within a few
//!   nanoseconds.
//! * **windowed-metrics overhead** — the real serve request path (an
//!   in-process server, a loopback client, a burst of `report` calls)
//!   with the global tracer's rolling windows enabled vs disabled,
//!   paired per repetition like the fit benchmark. Must stay ≤ 3%.
//!   The raw ring microcost (ns per histogram-record + counter-add pair,
//!   windows on vs off) is reported alongside, ungated: the windowed
//!   path reads the clock once per sample, so on a bare metric loop it
//!   can never meet a 3% bar — the budget is defined against the work
//!   the windows exist to observe, exactly as the fit arm defines base
//!   tracing overhead against a real fit.
//!
//! Run via `scripts/bench_perf.sh` (after the LCM benchmark).

use gptune::gp::{LcmFitOptions, LcmModel};
use gptune::opt::lbfgs::LbfgsOptions;
use gptune::trace::{Tracer, WindowSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const DIM: usize = 4;
const TASKS: usize = 2;
const Q: usize = 2;
const N: usize = 256;
const REPS: usize = 9;

fn data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let task_of: Vec<usize> = (0..n).map(|i| i % TASKS).collect();
    let y: Vec<f64> = xs
        .iter()
        .zip(&task_of)
        .map(|(x, &t)| (x[0] * 5.0).sin() + x[1] + 0.2 * t as f64)
        .collect();
    (xs, task_of, y)
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trace_overhead.json".to_string());
    let mut sink = 0.0;

    let (xs, task_of, y) = data(N, 9);
    let opts = LcmFitOptions {
        n_starts: 2,
        lbfgs: LbfgsOptions {
            max_iters: 20,
            ..Default::default()
        },
        ..Default::default()
    };
    let fit = || LcmModel::fit(&xs, &task_of, &y, TASKS, &opts).nll();

    // Warm both the fit and the tracer allocation before timing.
    sink += fit();
    drop(gptune::trace::install(Tracer::ring(1 << 14)));
    sink += fit();
    drop(gptune::trace::install(Tracer::disabled()));

    // Paired: each repetition fits once with tracing off and once with it
    // on, back-to-back, so ambient machine noise hits both arms of a pair.
    // The ring is drained outside the timed regions; what is measured is
    // the recording cost on the fit path, not the export.
    let mut t_off = Vec::with_capacity(REPS);
    let mut t_on = Vec::with_capacity(REPS);
    let mut ratio = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        drop(gptune::trace::install(Tracer::disabled()));
        let t = Instant::now();
        sink += fit();
        let off = t.elapsed().as_nanos() as f64;

        drop(gptune::trace::install(Tracer::ring(1 << 14)));
        let t = Instant::now();
        sink += fit();
        let on = t.elapsed().as_nanos() as f64;
        let traced = gptune::trace::global().drain();
        assert!(
            traced.events.iter().any(|e| e.name == "gptune.gp.fit"),
            "enabled arm must actually record fit spans"
        );

        t_off.push(off);
        t_on.push(on);
        ratio.push(on / off);
    }
    drop(gptune::trace::install(Tracer::disabled()));
    let (off_ms, on_ms) = (median(t_off) / 1e6, median(t_on) / 1e6);
    let overhead_pct = (median(ratio) - 1.0) * 100.0;

    // Disabled-path microcost: span create + field + drop against the
    // disabled global. ~1e7 iterations keeps the per-op resolution < 1 ns.
    let tracer = gptune::trace::global();
    let iters = 10_000_000u64;
    let t = Instant::now();
    for i in 0..iters {
        let span = tracer.span("gptune.bench.noop").with("i", i);
        drop(span);
    }
    let disabled_ns = t.elapsed().as_nanos() as f64 / iters as f64;

    // Ring microcost, reported but not gated: ns per histogram-record +
    // counter-add pair with handles held (the documented hot-loop shape),
    // windows off vs on. The windowed pair reads the clock twice, so this
    // number is dominated by `Instant::elapsed` — it bounds what a single
    // sample can ever cost, while the gated figure below asks the question
    // that matters: does that cost show up on a real request?
    const RING_ITERS: u64 = 200_000;
    let ring_pair_ns = |tracer: &Tracer| {
        let hist = tracer.histogram("gptune.bench.win_latency_us");
        let ctr = tracer.counter("gptune.bench.win_requests");
        let t = Instant::now();
        for i in 0..RING_ITERS {
            hist.record(i & 0xffff);
            ctr.add(1);
        }
        t.elapsed().as_nanos() as f64 / RING_ITERS as f64
    };
    let ring_plain_ns = ring_pair_ns(&Tracer::ring_with_windows(64, WindowSpec::disabled()));
    let ring_windowed_ns = ring_pair_ns(&Tracer::ring(64)); // windows on by default

    // Windowed-metrics overhead on the serve request path: one in-process
    // server, one loopback client, paired bursts of `report` calls with
    // the global tracer's windows disabled vs enabled (the server records
    // into the global tracer on every request, so swapping it between
    // bursts flips exactly the window bookkeeping).
    use gptune::serve::{serve, ProblemSpec, ServeClient, ServeOptions, SessionOptions};
    use gptune::space::{Param, Value};
    const BURST: usize = 240;
    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
    )
    .expect("start bench server");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect bench client");
    // Each burst opens its own session (a fresh problem name), so both
    // arms always hit an identical empty history; the arm order also
    // alternates per repetition. Both guards matter: session state grows
    // monotonically across bursts, so a fixed plain-then-windowed order
    // would bill all of that growth to the windowed arm.
    let run_arm = |client: &mut ServeClient, windowed: bool, tag: &str| -> f64 {
        drop(gptune::trace::install(if windowed {
            Tracer::ring(1 << 14) // rolling windows on by default
        } else {
            Tracer::ring_with_windows(1 << 14, WindowSpec::disabled())
        }));
        let spec = ProblemSpec {
            name: format!("trace_overhead_{tag}"),
            task_params: vec![Param::real("t", 0.0, 1.0)],
            tuning_params: vec![Param::real("x", 0.0, 1.0)],
            tasks: vec![vec![Value::Real(0.5)]],
            n_objectives: 1,
        };
        client
            .open_session("bench", &spec, &SessionOptions::default())
            .expect("open bench session");
        let t = Instant::now();
        for i in 0..BURST {
            let x = ((i * 37 + 11) % 101) as f64 / 101.0;
            client
                .report(0, &[Value::Real(x)], &[(x - 0.3).abs()])
                .expect("bench report");
        }
        let ns = t.elapsed().as_nanos() as f64;
        if windowed {
            assert!(
                gptune::trace::global()
                    .metrics()
                    .windowed
                    .counter("gptune.serve.requests")
                    .unwrap_or(0)
                    > 0,
                "windowed arm must actually feed the window ring"
            );
        }
        ns
    };
    // Warm both arms (server hot, registries first-touched).
    run_arm(&mut client, false, "warm_plain");
    run_arm(&mut client, true, "warm_win");

    let mut w_off = Vec::with_capacity(REPS);
    let mut w_on = Vec::with_capacity(REPS);
    let mut w_ratio = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let (off, on) = if rep % 2 == 0 {
            let off = run_arm(&mut client, false, &format!("p{rep}"));
            let on = run_arm(&mut client, true, &format!("w{rep}"));
            (off, on)
        } else {
            let on = run_arm(&mut client, true, &format!("w{rep}"));
            let off = run_arm(&mut client, false, &format!("p{rep}"));
            (off, on)
        };
        w_off.push(off);
        w_on.push(on);
        w_ratio.push(on / off);
    }
    drop(gptune::trace::install(Tracer::disabled()));
    server.shutdown();
    let (w_off_ms, w_on_ms) = (median(w_off) / 1e6, median(w_on) / 1e6);
    let windowed_pct = (median(w_ratio) - 1.0) * 100.0;

    let json = format!(
        "{{\n  \"config\": {{\"n\": {N}, \"dim\": {DIM}, \"n_tasks\": {TASKS}, \"q\": {Q}, \
         \"n_starts\": 2, \"reps\": {REPS}}},\n\
         \x20 \"fit_n256_2tasks\": {{\"disabled_ms\": {off_ms:.1}, \"enabled_ms\": {on_ms:.1}, \
         \"overhead_pct\": {overhead_pct:.2}}},\n\
         \x20 \"windowed_metrics\": {{\"requests_per_burst\": {BURST}, \"plain_ms\": {w_off_ms:.1}, \
         \"windowed_ms\": {w_on_ms:.1}, \"overhead_pct\": {windowed_pct:.2}, \
         \"ring_pair_ns\": {{\"plain\": {ring_plain_ns:.1}, \"windowed\": {ring_windowed_ns:.1}}}}},\n\
         \x20 \"disabled_span_ns_per_op\": {disabled_ns:.2}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_trace_overhead.json");
    print!("{json}");
    eprintln!("sink {sink}");
    eprintln!("wrote {out_path}");
    assert!(
        overhead_pct <= 3.0,
        "tracing overhead {overhead_pct:.2}% exceeds the 3% budget"
    );
    assert!(
        windowed_pct <= 3.0,
        "windowed-metrics overhead {windowed_pct:.2}% exceeds the 3% budget"
    );
    assert!(
        disabled_ns <= 50.0,
        "disabled span path costs {disabled_ns:.1} ns/op — no longer zero-cost"
    );
}
