//! Transfer-learning experiment (extension of the paper's goal 3:
//! archive & reuse of tuning data).
//!
//! Protocol: tune δ source PDSYEVX tasks and archive the samples; then
//! tune a held-out task at several tiny fresh budgets, comparing
//!
//! * **TLA-2** (archive folded into the joint LCM),
//! * **cold start** (same tuner, no archive),
//! * **TLA-1** (zero fresh evaluations — pure prediction from source
//!   optima).
//!
//! Expected shape: transfer dominates at the smallest budgets and the gap
//! closes as the fresh budget grows — the same "fewer samples needed"
//! story as the paper's performance-model study (Fig. 4).

use gptune::apps::{HpcApp, MachineModel, PdsyevxApp};
use gptune::core::{mla, tla, History, MlaOptions};
use gptune::problem_from_app;
use gptune::space::Value;
use gptune_bench::banner;
use std::sync::Arc;

fn main() {
    banner(
        "TLA — transfer learning from archived tuning data",
        "(extension; paper Sec. 1 goal 3 + GPTune Users Guide TLA)",
        "PDSYEVX: 4 sources (ε_tot=16 each) → new task at fresh budgets {2,4,8}",
    );

    let app: Arc<dyn HpcApp> = Arc::new(PdsyevxApp::new(MachineModel::cori(1), 8000));
    let sources: Vec<Vec<Value>> = [3000i64, 4500, 6000, 7500]
        .iter()
        .map(|&m| vec![Value::Int(m)])
        .collect();
    let target = vec![Value::Int(5200)];
    let mut all = sources.clone();
    all.push(target.clone());
    let target_idx = all.len() - 1;

    // Phase 1: archive the sources.
    let source_problem = problem_from_app(Arc::clone(&app), sources);
    let mut opts = MlaOptions::default().with_budget(16).with_seed(7);
    opts.lcm.n_starts = 2;
    opts.lcm.lbfgs.max_iters = 20;
    let archive = History::from_mla(&source_problem.name, &mla::tune(&source_problem, &opts));
    println!("\narchived {} source evaluations", archive.len());

    let problem = problem_from_app(Arc::clone(&app), all);

    // TLA-1 reference point.
    if let Some(cfg) = tla::predict_transfer_config(&problem, &archive, target_idx) {
        let y = app.evaluate(&target, &cfg, 0)[0];
        println!("TLA-1 (0 fresh evals): {:.3}s", y);
    }

    println!(
        "\n{:>12} {:>12} {:>12} {:>10}",
        "fresh evals", "TLA-2", "cold start", "gain"
    );
    for &budget in &[2usize, 4, 8] {
        let mut t = 0.0;
        let mut c = 0.0;
        for seed in 0..3u64 {
            let mut topts = MlaOptions::default()
                .with_budget(budget)
                .with_seed(40 + seed);
            topts.lcm.n_starts = 2;
            topts.lcm.lbfgs.max_iters = 20;
            topts.n_initial = Some((budget / 2).max(1).min(budget));
            let (with_h, _) = tla::transfer_tune(&problem, &archive, target_idx, &topts);
            let empty = History::new(&problem.name);
            let (cold, _) = tla::transfer_tune(&problem, &empty, target_idx, &topts);
            t += with_h.best_value;
            c += cold.best_value;
        }
        t /= 3.0;
        c /= 3.0;
        println!(
            "{:>12} {:>11.3}s {:>11.3}s {:>9.1}%",
            budget,
            t,
            c,
            100.0 * (1.0 - t / c)
        );
    }

    println!("\nShape check: TLA-2 ≤ cold start at every budget, with the largest relative");
    println!("gain at the smallest fresh budget; TLA-1 alone is already competitive.");
}
