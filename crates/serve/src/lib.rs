//! gptune-serve — a multi-tenant suggest/report tuning service.
//!
//! This crate inverts the library's control flow: instead of handing the
//! tuner an objective function to call, an application *asks* a server for
//! configurations to try ([`ServeClient::suggest`]) and sends back what it
//! measured ([`ServeClient::report`]). That fits real HPC deployments,
//! where the measurement is a batch job the tuner cannot invoke inline,
//! and it lets one server pool observations for many tenants at once.
//!
//! The stack, bottom-up:
//!
//! - [`spec`] — a wire-serializable structural description of a tuning
//!   problem ([`ProblemSpec`]); the objective never crosses the wire.
//! - [`protocol`] — length-prefixed JSON frames over any byte stream,
//!   plus the typed [`Request`] vocabulary.
//! - [`store`] — the durable session archive: per-session sharded
//!   `gptune-db` journals (one row per report, appended before the ack)
//!   plus a small meta snapshot, so sessions survive eviction and server
//!   restarts without client WAL replay.
//! - [`server`] — a bounded acceptor pool mapping each tenant/problem
//!   pair to a lazily-refit [`gptune_core::TunerSession`], with
//!   per-connection deadlines, per-tenant in-flight caps, LRU eviction
//!   under a resident cap, and a graceful drain path.
//! - [`client`] — typed calls plus a write-ahead journal: reports are
//!   journaled locally before they are sent and replayed wholesale on
//!   reconnect, while the server absorbs duplicates, so a server kill
//!   mid-burst loses nothing. Reconnects use bounded exponential backoff
//!   with deterministic jitter, honoring server `retry_after_ms` hints.
//! - [`chaos`] — a deterministic protocol-level fault proxy
//!   ([`ChaosProxy`], driven by a seeded [`FaultSpec`]) that tears
//!   frames, resets connections, and delays or duplicates requests, for
//!   robustness suites.
//! - [`obs`] — offline trace correlation: parse the JSONL dumps of a
//!   client and a server tracer and join them causally by the request
//!   id every rpc carries in its frame header.
//!
//! Every request is traced through `gptune-trace` (span
//! `gptune.serve.request` tagged with the client-minted `rid`,
//! histograms `gptune.serve.latency_us.<op>`, counters
//! `gptune.serve.requests` / `gptune.serve.errors`, the per-tenant SLO
//! set `gptune.serve.tenant.<tenant>.{requests,over_budget,sheds}`
//! judged against [`ServeOptions::latency_budget`], and the robustness
//! set
//! `gptune.serve.{evictions,restores,sheds,timeouts,drains,archive_errors}`,
//! gauges `gptune.serve.{sessions,uptime_secs,draining}`), which is what
//! `serve_bench` reads its p50/p99 from. The `metrics` wire request
//! exports the whole registry — lifetime plus rolling-window deltas — as
//! deterministic Prometheus-style text ([`ServeClient::metrics`] parses
//! it back), and `examples/obs_tool.rs` is the live dashboard over it.
//!
//! # Quickstart
//!
//! ```
//! use gptune_serve::{serve, ProblemSpec, ServeClient, ServeOptions, SessionOptions};
//! use gptune_space::{Param, Value};
//!
//! let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
//! let spec = ProblemSpec {
//!     name: "demo".into(),
//!     task_params: vec![Param::real("t", 0.0, 1.0)],
//!     tuning_params: vec![Param::real("x", 0.0, 1.0)],
//!     tasks: vec![vec![Value::Real(0.5)]],
//!     n_objectives: 1,
//! };
//! let mut client = ServeClient::connect(server.local_addr()).unwrap();
//! client.open_session("demo-tenant", &spec, &SessionOptions::default()).unwrap();
//! let cfg = client.suggest(0).unwrap();
//! client.report(0, &cfg, &[1.23]).unwrap(); // measured by the app
//! assert_eq!(client.history().unwrap().len(), 1);
//! server.shutdown();
//! ```

pub mod chaos;
pub mod client;
pub mod obs;
pub mod protocol;
pub mod server;
pub mod spec;
pub mod store;
mod tenant_metrics;

/// Serializes tests that install the process-global tracer (metrics
/// scrapes, rid-span assertions) so parallel tests never swap it out from
/// under each other mid-request.
#[cfg(test)]
pub(crate) fn test_trace_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub use chaos::{ChaosProxy, FaultCounts, FaultSpec};
pub use client::{BackoffPolicy, ServeClient};
pub use obs::{correlate, parse_jsonl, CorrelationReport, LinkedRequest};
pub use protocol::{Request, SessionOptions, CODE_DRAINING, CODE_OVERLOADED, MAX_FRAME};
pub use server::{serve, serving_mla_options, ServeOptions, ServerHandle};
pub use spec::ProblemSpec;
pub use store::{SessionStore, StoredSession};
