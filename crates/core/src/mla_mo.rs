//! Algorithm 2: multi-objective multitask MLA.
//!
//! Per paper Sec. 3.2: the modeling phase builds **one LCM per objective**
//! `y^s(t, x)`, and the search phase runs NSGA-II on the vector of
//! per-objective Expected Improvements, evaluating `k` new configurations
//! per iteration. The result per task is the Pareto front of the
//! *observed* samples (the black dots of Fig. 7).

use crate::db_bridge;
use crate::mla::{
    build_inputs, evaluate_batch, incumbent_of, initial_designs, load_known_failures,
    transform_objective, Evaluations, IterationStat,
};
use crate::options::MlaOptions;
use crate::problem::TuningProblem;
use gptune_db::CheckpointKind;
use gptune_gp::gp::expected_improvement;
use gptune_gp::{IncrementalLcm, LcmFitOptions, LcmModel};
use gptune_opt::nsga2::{self, pareto_front_indices};
use gptune_runtime::{with_pool, Phase, PhaseTimer};
use gptune_space::{sampling, Config};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// One point of a task's observed Pareto front.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The configuration.
    pub config: Config,
    /// Its `γ` objective values.
    pub objectives: Vec<f64>,
}

/// Multi-objective result for one task.
#[derive(Debug, Clone)]
pub struct MoTaskResult {
    /// The task parameters.
    pub task: Config,
    /// Non-dominated subset of the evaluated samples.
    pub pareto_front: Vec<ParetoPoint>,
    /// All evaluated `(config, objectives)` in evaluation order.
    pub samples: Vec<(Config, Vec<f64>)>,
}

/// Result of a multi-objective MLA run.
#[derive(Debug, Clone)]
pub struct MoMlaResult {
    /// Per-task outcomes, aligned with `problem.tasks`.
    pub per_task: Vec<MoTaskResult>,
    /// Phase-time breakdown.
    pub stats: gptune_runtime::PhaseStats,
    /// Per-iteration phase breakdown for the iterations run by this
    /// process (the `incumbent` column tracks the first objective).
    pub iterations: Vec<IterationStat>,
    /// `false` when the run was preempted by
    /// [`MlaOptions::stop_after_iterations`] before exhausting `ε_tot`
    /// (a checkpoint holds the in-flight state; rerunning with the same
    /// options resumes it).
    pub completed: bool,
}

/// Runs multi-objective multitask MLA (Algorithm 2).
///
/// Shares the archive/checkpoint/resume machinery of [`crate::mla::tune`]:
/// with [`MlaOptions::with_db`] completed runs archive their evaluations,
/// and with [`MlaOptions::checkpoint_every`] an interrupted run resumes to
/// the identical result an uninterrupted run would have produced.
pub fn tune_multiobjective(problem: &TuningProblem, opts: &MlaOptions) -> MoMlaResult {
    let gamma = problem.n_objectives;
    assert!(gamma >= 2, "use mla::tune for single-objective problems");
    let timer = PhaseTimer::new();
    let delta = problem.n_tasks();
    let n_init = opts.initial_samples();
    let k = opts.k_per_iter.max(1);
    let db = db_bridge::open_db(opts);
    let sig = db_bridge::problem_signature(problem);
    let known_failed = load_known_failures(&db, problem, sig, opts);

    // --- Resume: adopt a checkpoint that matches this exact run ---
    let mut evals = Evaluations::new();
    let mut iteration = 0usize;
    let mut eps = 0usize;
    let mut n_preloaded = 0usize;
    let mut resumed = false;
    if opts.checkpointing() {
        // PANIC-SAFETY: MlaOptions::checkpointing() returns true only when
        // db_path is set, and open_db opened a Db for every set db_path.
        #[allow(clippy::expect_used)]
        let db = db.as_ref().expect("checkpointing() implies db_path");
        match db_bridge::load_checkpoint_traced(db, sig, opts.seed) {
            Ok(Some(ckpt))
                if db_bridge::checkpoint_matches(&ckpt, CheckpointKind::MlaMo, opts, delta) =>
            {
                evals = db_bridge::evals_from_checkpoint(&ckpt);
                iteration = ckpt.iteration;
                eps = ckpt.eps;
                n_preloaded = ckpt.n_preloaded;
                timer.restore(db_bridge::stats_from_db(&ckpt.stats));
                resumed = true;
            }
            Ok(_) => {}
            Err(e) => eprintln!("gptune-db: ignoring unreadable checkpoint: {e}"),
        }
    }

    if !resumed {
        // --- Warm start from the archive ---
        if opts.warm_start_from_db {
            if let Some(db) = &db {
                // PANIC-SAFETY: unreadable archive on an explicit
                // warm-start request is fatal by design.
                #[allow(clippy::panic)]
                let pre = db_bridge::preload_from_db(db, problem, sig)
                    .unwrap_or_else(|e| panic!("gptune-db: cannot read archive: {e}"));
                for (t, cfg, out) in pre {
                    if !evals.contains(t, &cfg) {
                        evals.points.push((t, cfg));
                        evals.outputs.push(out);
                    }
                }
                n_preloaded = evals.points.len();
            }
        }

        // --- Sampling phase ---
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let batch = initial_designs(problem, n_init, &mut rng);
        let offset = evals.points.len();
        let (outputs, fails) = timer.time(Phase::Objective, || {
            evaluate_batch(problem, batch.clone(), opts, &timer, offset, &known_failed)
        });
        evals.points.extend(batch);
        evals.outputs.extend(outputs);
        evals.failures.extend(fails);
        eps = (evals.points.len() - n_preloaded) / delta.max(1);

        if opts.checkpointing() {
            // PANIC-SAFETY: checkpointing() implies db_path is set, and
            // open_db opened a Db for every set db_path.
            #[allow(clippy::expect_used)]
            db_bridge::write_checkpoint(
                db.as_ref().expect("checkpointing() implies db_path"),
                CheckpointKind::MlaMo,
                sig,
                opts,
                &evals,
                iteration,
                eps,
                n_preloaded,
                &timer.snapshot(),
            );
        }
    }

    let mut iters_this_process = 0usize;
    let mut iteration_stats: Vec<IterationStat> = Vec::new();
    let mut completed = true;
    // One persistent surrogate per objective: an incremental `opts.refit`
    // schedule extends each factor in O(n²) between full refits.
    let mut surrogates: Vec<IncrementalLcm> = (0..gamma)
        .map(|_| IncrementalLcm::new(opts.refit))
        .collect();
    while eps < opts.eps_total {
        if opts
            .stop_after_iterations
            .is_some_and(|n| iters_this_process >= n)
        {
            completed = false;
            break;
        }
        let iter_span = timer
            .tracer()
            .span("gptune.core.mla_mo.iteration")
            .with("iteration", iteration as u64)
            .with("eps", eps as u64);
        // Modeling phase: one LCM per objective (paper line 3 of Alg. 2).
        let per_objective: Vec<_> = (0..gamma)
            .map(|s| build_inputs(problem, &evals, s, opts))
            .collect();
        let ((), modeling_wall) = timer.time_iter(Phase::Modeling, iteration as u64, || {
            with_pool(opts.model_workers, || {
                for (s, (inputs, y)) in per_objective.iter().enumerate() {
                    let lcm_opts = LcmFitOptions {
                        seed: opts
                            .lcm
                            .seed
                            .wrapping_add(iteration as u64 * 7919)
                            .wrapping_add(s as u64 * 65537),
                        ..opts.lcm.clone()
                    };
                    surrogates[s].update(&inputs.xs, &inputs.task_of, y, delta, &lcm_opts);
                }
            })
        });
        // PANIC-SAFETY: every surrogate was updated just above.
        #[allow(clippy::expect_used)]
        let models: Vec<&LcmModel> = surrogates
            .iter()
            .map(|s| s.model().expect("surrogate updated this iteration"))
            .collect();

        // Search phase: NSGA-II over the vector of −EI_s per task.
        let (new_points, search_wall): (Vec<(usize, Config)>, _) =
            timer.time_iter(Phase::Search, iteration as u64, || {
                let seeds: Vec<u64> = (0..delta)
                    .map(|i| {
                        opts.seed
                            .wrapping_add(0xabcd_ef12)
                            .wrapping_mul(iteration as u64 + 3)
                            .wrapping_add(i as u64 * 7561)
                    })
                    .collect();
                with_pool(opts.search_workers, || {
                    (0..delta)
                        .into_par_iter()
                        .flat_map(|task_idx| {
                            let mut trng = StdRng::seed_from_u64(seeds[task_idx]);
                            // Per-objective incumbents (model scale).
                            let y_best: Vec<f64> = (0..gamma)
                                .map(|s| {
                                    evals
                                        .points
                                        .iter()
                                        .zip(&evals.outputs)
                                        .filter(|((t, _), o)| *t == task_idx && o[s].is_finite())
                                        .map(|(_, o)| transform_objective(o[s], opts.log_objective))
                                        .fold(f64::INFINITY, f64::min)
                                })
                                .collect();

                            let beta = problem.beta();
                            // Batched vector acquisition: each NSGA-II
                            // generation is scored through one blocked
                            // multi-RHS posterior solve per objective
                            // ([`LcmModel::predict_batch`]) instead of a
                            // triangular solve per individual per objective.
                            let mut acq = |us: &[Vec<f64>]| -> Vec<Vec<f64>> {
                                let mut out = vec![vec![0.0; gamma]; us.len()];
                                let mut live: Vec<usize> = Vec::with_capacity(us.len());
                                let mut configs: Vec<Config> = Vec::with_capacity(us.len());
                                for (i, u) in us.iter().enumerate() {
                                    let config = problem.tuning_space.denormalize(u);
                                    if problem.tuning_space.is_valid(&config) {
                                        live.push(i);
                                        configs.push(config);
                                    }
                                }
                                for s in 0..gamma {
                                    let (inputs, _) = &per_objective[s];
                                    let xs_model: Vec<Vec<f64>> = live
                                        .iter()
                                        .zip(&configs)
                                        .map(|(&i, config)| match &inputs.enrich {
                                            Some(e) => {
                                                let mut v = us[i].clone();
                                                v.extend(e.features(problem, task_idx, config));
                                                v
                                            }
                                            None => us[i].clone(),
                                        })
                                        .collect();
                                    let preds = models[s].predict_batch(task_idx, &xs_model);
                                    for (&i, pred) in live.iter().zip(&preds) {
                                        out[i][s] = -expected_improvement(pred, y_best[s]);
                                    }
                                }
                                out
                            };

                            // Seed NSGA-II with the observed Pareto points.
                            let observed: Vec<Vec<f64>> = evals
                                .points
                                .iter()
                                .zip(&evals.outputs)
                                .filter(|((t, _), _)| *t == task_idx)
                                .map(|((_, c), _)| problem.tuning_space.normalize(c))
                                .collect();

                            let front = nsga2::minimize_batch(
                                &mut acq, beta, gamma, &observed, &opts.nsga, &mut trng,
                            );

                            // Pick up to k distinct, feasible, non-duplicate
                            // configurations from the front.
                            let mut picked: Vec<(usize, Config)> = Vec::new();
                            for sol in front {
                                if picked.len() >= k {
                                    break;
                                }
                                let cfg = problem.tuning_space.denormalize(&sol.x);
                                if problem.tuning_space.is_valid(&cfg)
                                    && !evals.contains(task_idx, &cfg)
                                    && !picked.iter().any(|(_, c)| c == &cfg)
                                {
                                    picked.push((task_idx, cfg));
                                }
                            }
                            // Top up with random feasible samples if the front
                            // was too small or collapsed onto known points.
                            while picked.len() < k {
                                let fresh = sampling::sample_space(
                                    &problem.tuning_space,
                                    1,
                                    &mut trng,
                                    300,
                                );
                                match fresh.into_iter().next() {
                                    Some(c)
                                        if !evals.contains(task_idx, &c)
                                            && !picked.iter().any(|(_, pc)| pc == &c) =>
                                    {
                                        picked.push((task_idx, c));
                                    }
                                    Some(_) => continue,
                                    None => break,
                                }
                            }
                            picked
                        })
                        .collect()
                })
            });

        let offset = evals.points.len();
        let (outputs, fails) = timer.time(Phase::Objective, || {
            evaluate_batch(
                problem,
                new_points.clone(),
                opts,
                &timer,
                offset,
                &known_failed,
            )
        });
        evals.points.extend(new_points);
        evals.outputs.extend(outputs);
        evals.failures.extend(fails);
        iteration_stats.push(IterationStat {
            iteration,
            n_evals: evals.points.len() - n_preloaded,
            modeling_wall,
            search_wall,
            incumbent: incumbent_of(&evals, n_preloaded),
        });
        drop(iter_span);
        eps += k;
        iteration += 1;
        iters_this_process += 1;

        if opts.checkpointing() && iteration % opts.checkpoint_every == 0 {
            // PANIC-SAFETY: checkpointing() implies db_path is set, and
            // open_db opened a Db for every set db_path.
            #[allow(clippy::expect_used)]
            db_bridge::write_checkpoint(
                db.as_ref().expect("checkpointing() implies db_path"),
                CheckpointKind::MlaMo,
                sig,
                opts,
                &evals,
                iteration,
                eps,
                n_preloaded,
                &timer.snapshot(),
            );
        }
    }

    // --- Archive / checkpoint the outcome ---
    if let Some(db) = &db {
        if completed {
            let prov = db_bridge::provenance(opts, delta);
            // PANIC-SAFETY: losing the final archive write would silently
            // discard the run's results; fail loudly instead.
            #[allow(clippy::panic)]
            db_bridge::archive_run(
                db,
                problem,
                sig,
                &evals,
                n_preloaded,
                &prov,
                &timer.snapshot(),
            )
            .unwrap_or_else(|e| panic!("gptune-db: cannot archive run: {e}"));
            if opts.checkpointing() {
                let _ = db.clear_checkpoint(sig, opts.seed);
            }
        } else if opts.checkpointing() {
            db_bridge::write_checkpoint(
                db,
                CheckpointKind::MlaMo,
                sig,
                opts,
                &evals,
                iteration,
                eps,
                n_preloaded,
                &timer.snapshot(),
            );
        }
    }

    // --- Finalize: observed Pareto front per task (the first
    // `n_preloaded` evaluations are archived warm-start records, excluded
    // from the reported samples exactly as in `mla::finalize`) ---
    let per_task = (0..delta)
        .map(|task_idx| {
            let samples: Vec<(Config, Vec<f64>)> = evals
                .points
                .iter()
                .zip(&evals.outputs)
                .skip(n_preloaded)
                .filter(|((t, _), _)| *t == task_idx)
                .map(|((_, c), o)| (c.clone(), o.clone()))
                .collect();
            let finite: Vec<usize> = (0..samples.len())
                .filter(|&i| samples[i].1.iter().all(|v| v.is_finite()))
                .collect();
            let objs: Vec<Vec<f64>> = finite.iter().map(|&i| samples[i].1.clone()).collect();
            let front_idx = pareto_front_indices(&objs);
            let pareto_front = front_idx
                .into_iter()
                .map(|fi| {
                    let i = finite[fi];
                    ParetoPoint {
                        config: samples[i].0.clone(),
                        objectives: samples[i].1.clone(),
                    }
                })
                .collect();
            MoTaskResult {
                task: problem.tasks[task_idx].clone(),
                pareto_front,
                samples,
            }
        })
        .collect();

    MoMlaResult {
        per_task,
        stats: timer.snapshot(),
        iterations: iteration_stats,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_opt::nsga2::dominates;
    use gptune_space::{Param, Space, Value};

    /// Bi-objective toy: f1 = (x−0.2)², f2 = (x−0.8)² — the Pareto set is
    /// the whole segment x ∈ [0.2, 0.8].
    fn toy_mo(delta: usize) -> TuningProblem {
        let ts = Space::builder().param(Param::real("t", 0.0, 4.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        let tasks: Vec<Config> = (0..delta).map(|i| vec![Value::Real(i as f64)]).collect();
        TuningProblem::new("toy-mo", ts, ps, tasks, |t, x, _| {
            let shift = 0.02 * t[0].as_real();
            let xv = x[0].as_real();
            vec![
                1.0 + (xv - 0.2 - shift).powi(2),
                1.0 + (xv - 0.8 - shift).powi(2),
            ]
        })
        .with_objectives(2)
    }

    fn fast_opts(budget: usize) -> MlaOptions {
        let mut o = MlaOptions::default().with_budget(budget).with_seed(5);
        o.lcm.n_starts = 2;
        o.lcm.lbfgs.max_iters = 25;
        o.nsga.population = 24;
        o.nsga.generations = 15;
        o.k_per_iter = 3;
        o.log_objective = false;
        o
    }

    #[test]
    fn produces_nonempty_mutually_nondominated_front() {
        let p = toy_mo(1);
        let r = tune_multiobjective(&p, &fast_opts(20));
        let front = &r.per_task[0].pareto_front;
        assert!(front.len() >= 3, "front size {}", front.len());
        for a in front {
            for b in front {
                if !std::ptr::eq(a, b) {
                    assert!(!dominates(&a.objectives, &b.objectives));
                }
            }
        }
    }

    #[test]
    fn front_spans_the_tradeoff() {
        let p = toy_mo(1);
        let r = tune_multiobjective(&p, &fast_opts(24));
        let front = &r.per_task[0].pareto_front;
        let xs: Vec<f64> = front.iter().map(|p| p.config[0].as_real()).collect();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Should cover a good chunk of the [0.2, 0.8] Pareto segment.
        assert!(lo < 0.4, "lo {lo}");
        assert!(hi > 0.6, "hi {hi}");
    }

    #[test]
    fn multitask_fronts_for_every_task() {
        let p = toy_mo(3);
        let r = tune_multiobjective(&p, &fast_opts(14));
        assert_eq!(r.per_task.len(), 3);
        for tr in &r.per_task {
            assert!(!tr.pareto_front.is_empty());
            assert!(tr.samples.len() >= 14);
        }
    }

    #[test]
    fn budget_accounting_with_k() {
        let p = toy_mo(1);
        let mut o = fast_opts(16);
        o.n_initial = Some(8);
        o.k_per_iter = 4;
        let r = tune_multiobjective(&p, &o);
        // 8 initial + 2 iterations × 4 = 16.
        assert_eq!(r.per_task[0].samples.len(), 16);
    }

    #[test]
    #[should_panic]
    fn single_objective_rejected() {
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        let p = TuningProblem::new("so", ts, ps, vec![vec![Value::Real(0.0)]], |_, _, _| {
            vec![1.0]
        });
        let _ = tune_multiobjective(&p, &fast_opts(8));
    }
}
