//! CMA-ES (covariance matrix adaptation evolution strategy) on the unit
//! hypercube.
//!
//! The strongest general-purpose derivative-free optimizer in the
//! evolutionary family — included alongside PSO/DE/GA so acquisition-search
//! and baseline ablations can compare against it. Implements the standard
//! (μ/μ_w, λ) strategy of Hansen: weighted recombination, cumulative
//! step-size adaptation (CSA), and rank-1 + rank-μ covariance updates, with
//! the eigendecomposition of `C` provided by `gptune-la`.

use crate::OptResult;
use gptune_la::{Matrix, SymmetricEigen};
use rand::Rng;

/// CMA-ES configuration.
#[derive(Debug, Clone)]
pub struct CmaesOptions {
    /// Population size λ (`None` = `4 + ⌊3 ln n⌋`).
    pub lambda: Option<usize>,
    /// Initial step size (unit-box units).
    pub sigma0: f64,
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Stop when σ shrinks below this.
    pub sigma_stop: f64,
}

impl Default for CmaesOptions {
    fn default() -> Self {
        CmaesOptions {
            lambda: None,
            sigma0: 0.3,
            max_evals: 2000,
            sigma_stop: 1e-8,
        }
    }
}

/// Minimizes `f` over `[0,1]^dim` starting from `x0` (or the box centre).
pub fn minimize(
    f: &mut dyn FnMut(&[f64]) -> f64,
    dim: usize,
    x0: Option<&[f64]>,
    opts: &CmaesOptions,
    rng: &mut impl Rng,
) -> OptResult {
    assert!(dim > 0, "cmaes: dim must be positive");
    let n = dim as f64;
    let lambda = opts
        .lambda
        .unwrap_or(4 + (3.0 * n.ln()).floor() as usize)
        .max(4);
    let mu = lambda / 2;

    // Recombination weights: log-decreasing over the best μ.
    let mut weights: Vec<f64> = (0..mu)
        .map(|i| ((mu as f64 + 0.5).ln() - ((i + 1) as f64).ln()).max(0.0))
        .collect();
    let wsum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= wsum;
    }
    let mu_eff = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();

    // Strategy constants (Hansen's defaults).
    let cc = (4.0 + mu_eff / n) / (n + 4.0 + 2.0 * mu_eff / n);
    let cs = (mu_eff + 2.0) / (n + mu_eff + 5.0);
    let c1 = 2.0 / ((n + 1.3) * (n + 1.3) + mu_eff);
    let cmu =
        (1.0 - c1).min(2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) / ((n + 2.0) * (n + 2.0) + mu_eff));
    let damps = 1.0 + 2.0 * ((mu_eff - 1.0) / (n + 1.0)).sqrt().max(0.0) + cs;
    let chi_n = n.sqrt() * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n));

    let mut mean: Vec<f64> = match x0 {
        Some(s) => s.iter().map(|v| v.clamp(0.0, 1.0)).collect(),
        None => vec![0.5; dim],
    };
    let mut sigma = opts.sigma0;
    let mut c = Matrix::identity(dim);
    let mut p_sigma = vec![0.0; dim];
    let mut p_c = vec![0.0; dim];
    let mut best_x = mean.clone();
    let mut best_val = f64::INFINITY;
    let mut evals = 0usize;

    // Eigendecomposition cache of C = B D² Bᵀ.
    let decompose = |c: &Matrix| -> (Matrix, Vec<f64>) {
        let e = SymmetricEigen::new(c);
        let d: Vec<f64> = e.eigenvalues.iter().map(|&l| l.max(1e-20).sqrt()).collect();
        (e.eigenvectors, d)
    };
    let (mut b, mut d) = decompose(&c);

    let gauss = |rng: &mut dyn rand::RngCore| -> f64 {
        let u1 = (rng.next_u64() as f64 / u64::MAX as f64).max(1e-300);
        let u2 = rng.next_u64() as f64 / u64::MAX as f64;
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };

    let mut gen_count = 0usize;
    while evals + lambda <= opts.max_evals && sigma > opts.sigma_stop {
        // Sample λ offspring: x_k = m + σ·B·D·z_k, clamped to the box.
        let mut zs: Vec<Vec<f64>> = Vec::with_capacity(lambda);
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(lambda);
        let mut vals: Vec<f64> = Vec::with_capacity(lambda);
        for _ in 0..lambda {
            let z: Vec<f64> = (0..dim).map(|_| gauss(rng)).collect();
            // y = B D z.
            let mut y = vec![0.0; dim];
            for col in 0..dim {
                let dz = d[col] * z[col];
                for row in 0..dim {
                    y[row] += b.get(row, col) * dz;
                }
            }
            let x: Vec<f64> = mean
                .iter()
                .zip(&y)
                .map(|(m, yi)| (m + sigma * yi).clamp(0.0, 1.0))
                .collect();
            let v = f(&x);
            evals += 1;
            let v = if v.is_nan() { f64::INFINITY } else { v };
            if v < best_val {
                best_val = v;
                best_x.clone_from(&x);
            }
            zs.push(z);
            xs.push(x);
            vals.push(v);
        }

        // Rank offspring.
        let mut order: Vec<usize> = (0..lambda).collect();
        order.sort_by(|&a, &bb| vals[a].total_cmp(&vals[bb]));

        // Recombine mean (in x-space; clamping makes x ≠ m + σBDz exactly,
        // which is the standard box-handling simplification).
        let old_mean = mean.clone();
        for m in mean.iter_mut() {
            *m = 0.0;
        }
        for (w, &k) in weights.iter().zip(&order[..mu]) {
            for (mi, xi) in mean.iter_mut().zip(&xs[k]) {
                *mi += w * xi;
            }
        }

        // y_w = (m_new − m_old)/σ ; z_w from the sampled z's.
        let y_w: Vec<f64> = mean
            .iter()
            .zip(&old_mean)
            .map(|(a, bb)| (a - bb) / sigma)
            .collect();
        let mut z_w = vec![0.0; dim];
        for (w, &k) in weights.iter().zip(&order[..mu]) {
            for (zi, z) in z_w.iter_mut().zip(&zs[k]) {
                *zi += w * z;
            }
        }
        // C^{-1/2} y_w = B z_w (since y = B D z ⇒ C^{-1/2} y = B z).
        let mut c_inv_sqrt_y = vec![0.0; dim];
        for row in 0..dim {
            for col in 0..dim {
                c_inv_sqrt_y[row] += b.get(row, col) * z_w[col];
            }
        }

        // Step-size path and update.
        let cs_fac = (cs * (2.0 - cs) * mu_eff).sqrt();
        for (p, ci) in p_sigma.iter_mut().zip(&c_inv_sqrt_y) {
            *p = (1.0 - cs) * *p + cs_fac * ci;
        }
        let ps_norm = p_sigma.iter().map(|v| v * v).sum::<f64>().sqrt();
        sigma *= ((cs / damps) * (ps_norm / chi_n - 1.0)).exp();
        sigma = sigma.clamp(1e-12, 1.0);

        // Covariance path (with stall detection h_σ).
        let h_sigma = if ps_norm / (1.0 - (1.0 - cs).powi(2 * (gen_count as i32 + 1))).sqrt()
            < (1.4 + 2.0 / (n + 1.0)) * chi_n
        {
            1.0
        } else {
            0.0
        };
        let cc_fac = (cc * (2.0 - cc) * mu_eff).sqrt();
        for (p, yi) in p_c.iter_mut().zip(&y_w) {
            *p = (1.0 - cc) * *p + h_sigma * cc_fac * yi;
        }

        // Covariance update: rank-1 (p_c) + rank-μ (offspring deviations).
        let decay = 1.0 - c1 - cmu;
        for i in 0..dim {
            for j in 0..dim {
                let mut v = decay * c.get(i, j) + c1 * p_c[i] * p_c[j];
                for (w, &k) in weights.iter().zip(&order[..mu]) {
                    let yi = (xs[k][i] - old_mean[i]) / sigma;
                    let yj = (xs[k][j] - old_mean[j]) / sigma;
                    v += cmu * w * yi * yj;
                }
                c.set(i, j, v);
            }
        }
        c.symmetrize();

        // Refresh the eigendecomposition periodically.
        gen_count += 1;
        if gen_count.is_multiple_of(1 + (1.0 / ((c1 + cmu) * n * 10.0)) as usize) {
            let (nb, nd) = decompose(&c);
            b = nb;
            d = nd;
        }
    }

    OptResult {
        x: best_x,
        value: best_val,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sphere_high_precision() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut f = |x: &[f64]| x.iter().map(|v| (v - 0.6) * (v - 0.6)).sum::<f64>();
        let r = minimize(&mut f, 4, None, &CmaesOptions::default(), &mut rng);
        assert!(r.value < 1e-9, "value {}", r.value);
    }

    #[test]
    fn rosenbrock_valley() {
        // Shifted/scaled Rosenbrock inside the unit box, optimum (0.5, 0.5).
        let mut rng = StdRng::seed_from_u64(2);
        let mut f = |x: &[f64]| {
            let a = (x[0] - 0.5) * 4.0;
            let b = (x[1] - 0.5) * 4.0;
            (1.0 - a).powi(2) / 16.0 + 100.0 * (b - a * a).powi(2) / 16.0
        };
        let r = minimize(
            &mut f,
            2,
            None,
            &CmaesOptions {
                max_evals: 4000,
                ..Default::default()
            },
            &mut rng,
        );
        // Optimum of the inner Rosenbrock is a=b=1 → x=(0.75, 0.75).
        assert!(r.value < 1e-4, "value {}", r.value);
        assert!((r.x[0] - 0.75).abs() < 0.02, "x0 {}", r.x[0]);
    }

    #[test]
    fn anisotropic_ellipsoid_adapts_covariance() {
        // Condition number 1e4 across dimensions: CSA alone fails, the
        // covariance adaptation is what makes this solvable.
        let mut rng = StdRng::seed_from_u64(3);
        let mut f = |x: &[f64]| {
            x.iter()
                .enumerate()
                .map(|(i, v)| 10f64.powf(4.0 * i as f64 / 4.0) * (v - 0.5) * (v - 0.5))
                .sum::<f64>()
        };
        let r = minimize(
            &mut f,
            5,
            None,
            &CmaesOptions {
                max_evals: 6000,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(r.value < 1e-6, "value {}", r.value);
    }

    #[test]
    fn stays_in_unit_box_with_boundary_optimum() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut f = |x: &[f64]| -x[0] - x[1];
        let r = minimize(&mut f, 2, None, &CmaesOptions::default(), &mut rng);
        assert!(r.x.iter().all(|v| (0.0..=1.0).contains(v)));
        assert!(r.x[0] > 0.99 && r.x[1] > 0.99);
    }

    #[test]
    fn respects_eval_budget() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut count = 0usize;
        let mut f = |_: &[f64]| {
            count += 1;
            1.0
        };
        let opts = CmaesOptions {
            max_evals: 100,
            ..Default::default()
        };
        let r = minimize(&mut f, 3, None, &opts, &mut rng);
        assert!(r.evals <= 100);
        assert_eq!(r.evals, count);
    }

    #[test]
    fn nan_objective_tolerated() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut f = |x: &[f64]| {
            if x[0] < 0.4 {
                f64::NAN
            } else {
                (x[0] - 0.7) * (x[0] - 0.7)
            }
        };
        let r = minimize(&mut f, 1, None, &CmaesOptions::default(), &mut rng);
        assert!(r.value.is_finite());
        assert!((r.x[0] - 0.7).abs() < 0.05);
    }
}
