//! Fig. 3 — wall time of the MLA modeling and search phases with 1 worker
//! vs many workers, as the total sample count grows.
//!
//! Paper setup: δ = 20 analytical tasks on one Cori node, ε_tot from 20 to
//! 320 (LCM kernel matrix 400→6400), one MLA iteration (initial samples
//! ε_tot − 1), 1 vs 32 MPI processes; sequential phases scale as
//! `O(ε³δ³)` (modeling) and `O(ε²δ²)` (search); 32 workers give ~32×/11×
//! speedups at the largest size.
//!
//! This harness: the same δ = 20 tasks and one-iteration protocol with
//! ε ∈ {5, 10, 20, 40} (kernel matrix 100→800) and threads 1 vs
//! `min(8, cores)`; L-BFGS is capped at 6 iterations × 4 restarts so the
//! modeling phase is a fixed multiple of the covariance factorization.
//! Expected shape: modeling time grows ~8× per ε doubling, search ~4×, and
//! the multi-worker run is several times faster at the largest size.

use gptune::apps::{AnalyticalApp, HpcApp};
use gptune::core::{mla, MlaOptions};
use gptune::problem_from_app;
use gptune_bench::banner;
use std::sync::Arc;

fn main() {
    banner(
        "Fig. 3 — parallel speedup of modeling & search phases",
        "δ=20 tasks, ε_tot 20..320, 1 vs 32 MPI on Cori",
        "δ=20 tasks, ε_tot 5..40, 1 vs N threads (thread workers stand in for MPI ranks)",
    );

    let app: Arc<dyn HpcApp> = Arc::new(AnalyticalApp::new(0.0));
    let tasks = gptune::apps::analytical::default_tasks(); // δ = 20
    let problem = problem_from_app(Arc::clone(&app), tasks);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let many = cores.clamp(2, 8);
    if cores == 1 {
        println!("\nNOTE: this host exposes a single CPU; the worker columns cannot show real");
        println!("speedup here. The O(N³)/O(N²) growth of the phase times (the other half of");
        println!("Fig. 3) is still measured. Re-run on a multicore host for the speedup column.");
    }

    println!(
        "\n{:>6} {:>7} | {:>12} {:>12} {:>8} {:>7} | {:>12} {:>12} {:>8} {:>7}",
        "eps",
        "N=δ·ε",
        "model(1w)",
        &format!("model({many}w)"),
        "speedup",
        "growth",
        "search(1w)",
        &format!("search({many}w)"),
        "speedup",
        "growth"
    );

    let mut prev: Option<(f64, f64)> = None;
    for &eps in &[5usize, 10, 20, 40] {
        let mut results = Vec::new();
        for workers in [1usize, many] {
            let mut opts = MlaOptions::default().with_budget(eps).with_seed(9);
            opts.n_initial = Some(eps - 1); // exactly one MLA iteration
            opts.log_objective = false;
            opts.lcm.n_starts = 4;
            opts.lcm.lbfgs.max_iters = 6;
            opts.model_workers = workers;
            opts.search_workers = workers;
            opts.eval_workers = workers;
            opts.pso.particles = 30;
            opts.pso.iters = 20;
            let r = mla::tune(&problem, &opts);
            results.push((
                r.stats.modeling_wall.as_secs_f64(),
                r.stats.search_wall.as_secs_f64(),
            ));
        }
        let (m1, s1) = results[0];
        let (mw, sw) = results[1];
        // Growth per ε-doubling: ≈8 for the O(N³) modeling phase, ≈4 for
        // the O(N²) search phase.
        let (gm, gs) = prev
            .map(|(pm, ps)| (m1 / pm.max(1e-12), s1 / ps.max(1e-12)))
            .unwrap_or((f64::NAN, f64::NAN));
        println!(
            "{:>6} {:>7} | {:>11.3}s {:>11.3}s {:>7.2}x {:>6.1}x | {:>11.3}s {:>11.3}s {:>7.2}x {:>6.1}x",
            eps,
            eps * 20,
            m1,
            mw,
            m1 / mw.max(1e-12),
            gm,
            s1,
            sw,
            s1 / sw.max(1e-12),
            gs
        );
        prev = Some((m1, s1));
    }

    println!("\nShape check vs paper: the modeling-phase growth column approaches 8x per ε");
    println!("doubling (O(N³) covariance factorization) and search stays well below it");
    println!("(O(N²) predictions); on a multicore host the worker columns add the Fig. 3");
    println!("speedups (paper: 32x modeling, 11x search at N = 6400 with 32 workers).");
}
