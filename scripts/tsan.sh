#!/usr/bin/env bash
# ThreadSanitizer smoke test for the concurrent runtime (optional gate).
#
# Runs the executor and chaos test suites under TSan to catch data races
# in the master/worker channel protocol, the watchdog's worker
# replacement, and the shared-counter paths. Not part of tier1.sh: it
# needs a nightly toolchain with the rust-src component, multiplies
# runtime by ~10x, and TSan occasionally reports false positives on
# crossbeam's epoch reclamation — treat a clean run as strong evidence
# and a report as something to read, not an automatic failure.
#
# Usage:
#   scripts/tsan.sh              # executor + chaos suites
#   scripts/tsan.sh <filter...>  # extra args forwarded to `cargo test`
set -euo pipefail
cd "$(dirname "$0")/.."

if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
    echo "tsan.sh: a nightly toolchain is required (rustup toolchain install nightly)" >&2
    exit 1
fi

HOST_TARGET=$(rustc -vV | sed -n 's/^host: //p')

# -Zbuild-std is required: the sanitizer must also instrument std, or
# every std synchronization primitive looks like a race.
export RUSTFLAGS="-Zsanitizer=thread"
export RUSTDOCFLAGS="-Zsanitizer=thread"
# Suppress known-benign reports from crossbeam's deferred destruction.
export TSAN_OPTIONS="${TSAN_OPTIONS:-report_signal_unsafe=0 history_size=7}"

run() {
    cargo +nightly test \
        -Zbuild-std \
        --target "$HOST_TARGET" \
        -p gptune-runtime \
        "$@"
}

echo "== TSan: gptune-runtime unit + integration tests =="
run "$@"

echo "== TSan: chaos suite (fault injection under concurrency) =="
cargo +nightly test \
    -Zbuild-std \
    --target "$HOST_TARGET" \
    --test chaos \
    "$@"

echo "== TSan: serve protocol chaos suite (proxy faults, kill-restart, eviction) =="
# The serve chaos suite exercises the exact lock structure the GX7xx
# static tier reasons about (session table, per-session entry locks,
# conns registry, teardown) under real concurrency — TSan validates at
# runtime what the lock-order graph proves statically.
cargo +nightly test \
    -Zbuild-std \
    --target "$HOST_TARGET" \
    --test serve_chaos \
    "$@"

echo "tsan.sh: clean"
