//! Append-only JSONL journal with tolerant recovery.
//!
//! Writers hold the advisory lock, append whole lines, and fsync before
//! releasing — so a reader that takes the lock sees only complete records
//! from live writers. Crash tolerance comes from the read side: a process
//! killed mid-append can leave one torn final line, which [`load`] drops
//! instead of erroring. Corrupt *interior* lines (bit rot, partial manual
//! edits) are skipped and counted, never fatal — losing one record must
//! not orphan the thousands after it.

use crate::fsio;
use crate::lock::{FileLock, LockOptions};
use crate::record::DbEntry;
use std::fs;
use std::io;
use std::path::Path;

/// Why one record was dropped during recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordErrorKind {
    /// A v1 JSONL line that did not parse.
    CorruptLine,
    /// A v2 binary record whose stored CRC32 does not match its payload.
    CrcMismatch {
        /// The checksum stored alongside the record.
        stored: u32,
        /// The checksum computed from the payload actually on disk.
        computed: u32,
    },
    /// An incomplete final record (killed writer), dropped by design.
    TornTail,
}

impl std::fmt::Display for RecordErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordErrorKind::CorruptLine => write!(f, "corrupt line"),
            RecordErrorKind::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
                )
            }
            RecordErrorKind::TornTail => write!(f, "torn tail"),
        }
    }
}

/// One dropped record, with enough context to find it on disk: the file
/// it lives in (stamped by the shard reader; empty for direct
/// [`load`]/`journal_v2::load` calls), and its position — a 1-based line
/// number for v1 journals, a byte offset for v2 shards.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordError {
    /// Source file name (shard or live journal), when known.
    pub file: String,
    /// Line number (v1) or byte offset (v2) of the bad record.
    pub offset: u64,
    /// What was wrong with it.
    pub kind: RecordErrorKind,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.file.is_empty() {
            write!(f, "record at {}: {}", self.offset, self.kind)
        } else {
            write!(f, "{} at {}: {}", self.file, self.offset, self.kind)
        }
    }
}

/// What recovery had to tolerate while loading a journal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Complete, parsed entries.
    pub n_loaded: usize,
    /// Valid lines of unknown kind (newer writer), skipped.
    pub n_unknown_kind: usize,
    /// Corrupt lines *before* the final line, skipped.
    pub n_corrupt_interior: usize,
    /// `true` when the final line was torn (no trailing newline or
    /// unparseable) and was dropped.
    pub dropped_torn_tail: bool,
    /// Per-record drop details (one entry per corrupt interior record or
    /// torn tail), with file/offset context for operators.
    pub errors: Vec<RecordError>,
}

impl RecoveryReport {
    /// `true` when the journal was fully clean.
    pub fn is_clean(&self) -> bool {
        self.n_unknown_kind == 0 && self.n_corrupt_interior == 0 && !self.dropped_torn_tail
    }
}

/// Loads every recoverable entry of a journal file. A missing file is an
/// empty journal. Never fails on content — only on I/O errors.
pub fn load(path: &Path) -> io::Result<(Vec<DbEntry>, RecoveryReport)> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok((Vec::new(), RecoveryReport::default()))
        }
        Err(e) => return Err(e),
    };
    let text = String::from_utf8_lossy(&bytes);
    let mut entries = Vec::new();
    let mut report = RecoveryReport::default();

    // A well-formed journal ends with '\n'; content after the last '\n' is
    // by definition a torn tail. split keeps that tail as the last piece.
    let pieces: Vec<&str> = text.split('\n').collect();
    let n = pieces.len();
    for (i, raw) in pieces.iter().enumerate() {
        let line = raw.trim_end_matches('\r');
        if line.trim().is_empty() {
            continue;
        }
        let is_last = i + 1 == n;
        match DbEntry::from_line(line) {
            // A parseable final line without its trailing '\n' is intact
            // content — kept like any other entry.
            Ok(Some(e)) => {
                entries.push(e);
                report.n_loaded += 1;
            }
            Ok(None) => report.n_unknown_kind += 1,
            Err(_) if is_last => {
                report.dropped_torn_tail = true;
                report.errors.push(RecordError {
                    file: String::new(),
                    offset: (i + 1) as u64,
                    kind: RecordErrorKind::TornTail,
                });
            }
            Err(_) => {
                report.n_corrupt_interior += 1;
                report.errors.push(RecordError {
                    file: String::new(),
                    offset: (i + 1) as u64,
                    kind: RecordErrorKind::CorruptLine,
                });
            }
        }
    }
    Ok((entries, report))
}

/// Appends entries to a journal under its advisory lock, fsyncing once
/// after the batch. Returns the number of entries written.
pub fn append(path: &Path, entries: &[DbEntry], lock: &LockOptions) -> io::Result<usize> {
    if entries.is_empty() {
        return Ok(0);
    }
    let _guard = FileLock::acquire(path, lock)?;
    let mut buf = String::new();
    // A previous writer may have died mid-line (torn tail). Terminate the
    // torn line first so the new records stay parseable on their own lines
    // — recovery then drops the tear alone, never a fresh record.
    if !ends_with_newline(path)? {
        buf.push('\n');
    }
    for e in entries {
        buf.push_str(&e.to_line());
        buf.push('\n');
    }
    let mut f = fsio::open_append(path)?;
    fsio::append_durable(&mut f, buf.as_bytes())?;
    Ok(entries.len())
}

/// `true` when `path` is missing, empty, or ends with `\n`.
fn ends_with_newline(path: &Path) -> io::Result<bool> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = match fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(true),
        Err(e) => return Err(e),
    };
    if f.seek(SeekFrom::End(0))? == 0 {
        return Ok(true);
    }
    f.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    Ok(last == [b'\n'])
}

/// Rewrites a journal keeping the first occurrence of each entry (by
/// [`DbEntry::dedup_key`]), dropping corrupt lines for good. Runs under the
/// journal lock; the rewrite is atomic (temp + rename). Returns
/// `(entries_kept, entries_dropped)`.
pub fn compact(path: &Path, lock: &LockOptions) -> io::Result<(usize, usize)> {
    let _guard = FileLock::acquire(path, lock)?;
    let (entries, report) = load(path)?;
    let mut seen = std::collections::HashSet::new();
    let mut kept: Vec<&DbEntry> = Vec::with_capacity(entries.len());
    for e in &entries {
        if seen.insert(e.dedup_key()) {
            kept.push(e);
        }
    }
    let mut buf = String::new();
    for e in &kept {
        buf.push_str(&e.to_line());
        buf.push('\n');
    }
    fsio::atomic_write(path, buf.as_bytes())?;
    let dropped = entries.len() - kept.len()
        + report.n_corrupt_interior
        + report.n_unknown_kind
        + usize::from(report.dropped_torn_tail);
    Ok((kept.len(), dropped))
}

/// Merges entries from `src` into `dst` (append-only): every entry of
/// `src` whose dedup key is not already in `dst` is appended. Returns the
/// number of newly added entries.
pub fn merge(dst: &Path, src: &Path, lock: &LockOptions) -> io::Result<usize> {
    let (incoming, _) = load(src)?;
    let _guard = FileLock::acquire(dst, lock)?;
    let (existing, _) = load(dst)?;
    let seen: std::collections::HashSet<String> = existing.iter().map(|e| e.dedup_key()).collect();
    let mut buf = String::new();
    let mut added = 0usize;
    let mut batch_seen = std::collections::HashSet::new();
    for e in &incoming {
        let k = e.dedup_key();
        if !seen.contains(&k) && batch_seen.insert(k) {
            buf.push_str(&e.to_line());
            buf.push('\n');
            added += 1;
        }
    }
    if added > 0 {
        let mut f = fsio::open_append(dst)?;
        fsio::append_durable(&mut f, buf.as_bytes())?;
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DbRecord, DbValue, Provenance};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("gptune_db_journal_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(i: i64, y: f64) -> DbEntry {
        DbEntry::Eval(DbRecord {
            problem: "toy".into(),
            sig: 0xabc,
            task: vec![DbValue::Int(1)],
            config: vec![DbValue::Int(i)],
            outputs: vec![y],
            prov: Provenance {
                seed: 3,
                run: "r1".into(),
                machine: None,
            },
        })
    }

    #[test]
    fn append_then_load_roundtrip() {
        let d = tmpdir("roundtrip");
        let p = d.join("j.jsonl");
        let lock = LockOptions::default();
        append(&p, &[rec(1, 1.0), rec(2, 2.0)], &lock).unwrap();
        append(&p, &[rec(3, 3.0)], &lock).unwrap();
        let (entries, report) = load(&p).unwrap();
        assert_eq!(entries.len(), 3);
        assert!(report.is_clean());
        assert_eq!(entries[2], rec(3, 3.0));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn append_after_torn_tail_keeps_new_records_parseable() {
        let d = tmpdir("torn_append");
        let p = d.join("j.jsonl");
        let lock = LockOptions::default();
        append(&p, &[rec(1, 1.0), rec(2, 2.0)], &lock).unwrap();
        // Tear the final line mid-record, as a killed writer would.
        let bytes = fs::read(&p).unwrap();
        fs::write(&p, &bytes[..bytes.len() - 7]).unwrap();
        // A later writer appends: the fresh record must not be glued onto
        // the torn line.
        append(&p, &[rec(3, 3.0)], &lock).unwrap();
        let (entries, report) = load(&p).unwrap();
        assert_eq!(entries.len(), 2, "{report:?}");
        assert_eq!(entries[0], rec(1, 1.0));
        assert_eq!(entries[1], rec(3, 3.0));
        assert_eq!(report.n_corrupt_interior, 1);
        assert!(!report.dropped_torn_tail);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_file_is_empty_journal() {
        let d = tmpdir("missing");
        let (entries, report) = load(&d.join("nope.jsonl")).unwrap();
        assert!(entries.is_empty());
        assert!(report.is_clean());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn empty_file_is_empty_journal() {
        let d = tmpdir("empty");
        let p = d.join("j.jsonl");
        fs::write(&p, "").unwrap();
        let (entries, report) = load(&p).unwrap();
        assert!(entries.is_empty());
        assert!(report.is_clean());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_final_line_dropped_rest_kept() {
        let d = tmpdir("torn");
        let p = d.join("j.jsonl");
        let lock = LockOptions::default();
        append(&p, &[rec(1, 1.0), rec(2, 2.0)], &lock).unwrap();
        // Simulate a crash mid-append: half of a third record, no newline.
        let torn = rec(3, 3.0).to_line();
        let mut bytes = fs::read(&p).unwrap();
        bytes.extend_from_slice(torn[..torn.len() / 2].as_bytes());
        fs::write(&p, &bytes).unwrap();
        let (entries, report) = load(&p).unwrap();
        assert_eq!(entries.len(), 2, "intact records must survive");
        assert!(report.dropped_torn_tail);
        assert_eq!(report.n_corrupt_interior, 0);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn unterminated_but_complete_final_line_kept() {
        let d = tmpdir("noeol");
        let p = d.join("j.jsonl");
        // Complete JSON, missing only the trailing newline.
        fs::write(&p, rec(1, 1.0).to_line()).unwrap();
        let (entries, report) = load(&p).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(!report.dropped_torn_tail);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_interior_line_skipped() {
        let d = tmpdir("interior");
        let p = d.join("j.jsonl");
        let text = format!(
            "{}\nNOT JSON AT ALL\n{}\n",
            rec(1, 1.0).to_line(),
            rec(2, 2.0).to_line()
        );
        fs::write(&p, text).unwrap();
        let (entries, report) = load(&p).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(report.n_corrupt_interior, 1);
        assert!(!report.dropped_torn_tail);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn drop_details_carry_line_numbers() {
        let d = tmpdir("details");
        let p = d.join("j.jsonl");
        let torn = rec(9, 9.0).to_line();
        let text = format!(
            "{}\nGARBAGE\n{}\n{}",
            rec(1, 1.0).to_line(),
            rec(2, 2.0).to_line(),
            &torn[..torn.len() / 2]
        );
        fs::write(&p, text).unwrap();
        let (entries, report) = load(&p).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(report.errors.len(), 2);
        assert_eq!(report.errors[0].offset, 2, "1-based line of the garbage");
        assert_eq!(report.errors[0].kind, RecordErrorKind::CorruptLine);
        assert_eq!(report.errors[1].offset, 4);
        assert_eq!(report.errors[1].kind, RecordErrorKind::TornTail);
        // Display is operator-friendly even without a file name.
        assert!(report.errors[0].to_string().contains("corrupt line"));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn mixed_version_journal_loads_known_entries() {
        let d = tmpdir("mixed");
        let p = d.join("j.jsonl");
        let future = r#"{"v":9,"kind":"shard","problem":"toy","sig":"0000000000000abc"}"#;
        let v2_eval =
            rec(5, 5.0)
                .to_line()
                .replacen("\"v\":1", "\"v\":2,\"extra\":{\"nested\":[true]}", 1);
        let text = format!("{}\n{future}\n{v2_eval}\n", rec(1, 1.0).to_line());
        fs::write(&p, text).unwrap();
        let (entries, report) = load(&p).unwrap();
        assert_eq!(entries.len(), 2, "v1 + v2 eval records must both load");
        assert_eq!(report.n_unknown_kind, 1);
        assert_eq!(entries[1], rec(5, 5.0));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn crlf_lines_tolerated() {
        let d = tmpdir("crlf");
        let p = d.join("j.jsonl");
        fs::write(
            &p,
            format!("{}\r\n{}\r\n", rec(1, 1.0).to_line(), rec(2, 2.0).to_line()),
        )
        .unwrap();
        let (entries, report) = load(&p).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(report.is_clean());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn compact_dedups_and_heals() {
        let d = tmpdir("compact");
        let p = d.join("j.jsonl");
        let lock = LockOptions::default();
        append(&p, &[rec(1, 1.0), rec(2, 2.0), rec(1, 1.0)], &lock).unwrap();
        // Torn tail to be healed away.
        let torn = rec(9, 9.0).to_line();
        let mut bytes = fs::read(&p).unwrap();
        bytes.extend_from_slice(torn[..10].as_bytes());
        fs::write(&p, &bytes).unwrap();
        let (kept, dropped) = compact(&p, &lock).unwrap();
        assert_eq!(kept, 2);
        assert_eq!(dropped, 2); // 1 duplicate + 1 torn tail
        let (entries, report) = load(&p).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(report.is_clean());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn merge_adds_only_new_entries() {
        let d = tmpdir("merge");
        let a = d.join("a.jsonl");
        let b = d.join("b.jsonl");
        let lock = LockOptions::default();
        append(&a, &[rec(1, 1.0), rec(2, 2.0)], &lock).unwrap();
        append(&b, &[rec(2, 2.0), rec(3, 3.0), rec(3, 3.0)], &lock).unwrap();
        let added = merge(&a, &b, &lock).unwrap();
        assert_eq!(added, 1);
        let (entries, _) = load(&a).unwrap();
        assert_eq!(entries.len(), 3);
        // Merging again is a no-op.
        assert_eq!(merge(&a, &b, &lock).unwrap(), 0);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn concurrent_appenders_lose_nothing() {
        let d = tmpdir("concurrent");
        let p = std::sync::Arc::new(d.join("j.jsonl"));
        let mut handles = Vec::new();
        for writer in 0..4i64 {
            let p = std::sync::Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                let lock = LockOptions::default();
                for i in 0..25 {
                    append(&p, &[rec(writer * 1000 + i, i as f64)], &lock).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (entries, report) = load(&p).unwrap();
        assert_eq!(entries.len(), 100, "lost records under concurrency");
        assert!(report.is_clean());
        // Every record distinct → all 100 dedup keys present.
        let keys: std::collections::HashSet<String> =
            entries.iter().map(|e| e.dedup_key()).collect();
        assert_eq!(keys.len(), 100);
        let _ = fs::remove_dir_all(&d);
    }
}
