//! Property-based tests for parameter spaces and samplers.

use gptune_space::{sampling, Param, Space, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mixed_space() -> Space {
    Space::builder()
        .param(Param::real("r", -3.0, 5.0))
        .param(Param::real_log("rl", 0.1, 100.0))
        .param(Param::int("i", -4, 11))
        .param(Param::int_log("il", 1, 1024))
        .param(Param::categorical("c", &["a", "b", "c", "d", "e"]))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn denormalize_always_in_domain(u in proptest::collection::vec(0.0f64..=1.0, 5)) {
        let s = mixed_space();
        let cfg = s.denormalize(&u);
        for (p, v) in s.params().iter().zip(&cfg) {
            prop_assert!(p.contains(v), "{}: {v:?}", p.name);
        }
    }

    #[test]
    fn normalize_denormalize_identity_on_discrete(
        i in -4i64..=11,
        il_exp in 0u32..=10,
        c in 0usize..5,
    ) {
        let s = mixed_space();
        let cfg = vec![
            Value::Real(1.0),
            Value::Real(1.0),
            Value::Int(i),
            Value::Int(1i64 << il_exp),
            Value::Cat(c),
        ];
        let u = s.normalize(&cfg);
        let back = s.denormalize(&u);
        // Discrete components must round-trip exactly.
        prop_assert_eq!(&back[2], &cfg[2]);
        prop_assert_eq!(&back[3], &cfg[3]);
        prop_assert_eq!(&back[4], &cfg[4]);
    }

    #[test]
    fn real_roundtrip_within_epsilon(r in -3.0f64..5.0, rl in 0.1f64..100.0) {
        let s = mixed_space();
        let cfg = vec![
            Value::Real(r),
            Value::Real(rl),
            Value::Int(0),
            Value::Int(16),
            Value::Cat(0),
        ];
        let back = s.denormalize(&s.normalize(&cfg));
        prop_assert!((back[0].as_real() - r).abs() < 1e-9);
        prop_assert!((back[1].as_real() - rl).abs() / rl < 1e-9);
    }

    #[test]
    fn normalized_coords_in_unit_cube(
        r in -3.0f64..5.0, rl in 0.1f64..100.0, i in -4i64..=11, c in 0usize..5,
    ) {
        let s = mixed_space();
        let cfg = vec![Value::Real(r), Value::Real(rl), Value::Int(i), Value::Int(7), Value::Cat(c)];
        for u in s.normalize(&cfg) {
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn lhs_is_always_stratified(n in 1usize..40, dim in 1usize..6, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = sampling::latin_hypercube(n, dim, &mut rng);
        prop_assert_eq!(pts.len(), n);
        for d in 0..dim {
            let mut cells: Vec<usize> =
                pts.iter().map(|p| ((p[d] * n as f64) as usize).min(n - 1)).collect();
            cells.sort_unstable();
            prop_assert_eq!(cells, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn halton_low_discrepancy_window(n in 10usize..200) {
        // Every axis-aligned half [0, 0.5) must contain n/2 ± O(sqrt n)
        // points — much tighter than worst-case random.
        let pts = sampling::halton(n, 3);
        for d in 0..3 {
            let count = pts.iter().filter(|p| p[d] < 0.5).count() as f64;
            prop_assert!((count - n as f64 / 2.0).abs() < 3.0 + (n as f64).sqrt());
        }
    }

    #[test]
    fn sample_space_yields_valid_unique(seed in 0u64..200) {
        let s = Space::builder()
            .param(Param::int("p", 1, 32))
            .param(Param::int("q", 1, 32))
            .constraint("q<=p", |c| c[1].as_int() <= c[0].as_int())
            .build();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = sampling::sample_space(&s, 12, &mut rng, 150);
        for cfg in &out {
            prop_assert!(s.is_valid(cfg));
        }
        for i in 0..out.len() {
            for j in (i + 1)..out.len() {
                prop_assert_ne!(&out[i], &out[j]);
            }
        }
    }

    #[test]
    fn distance_symmetry_and_identity(
        a in proptest::collection::vec(0.0f64..=1.0, 5),
        b in proptest::collection::vec(0.0f64..=1.0, 5),
    ) {
        let s = mixed_space();
        let ca = s.denormalize(&a);
        let cb = s.denormalize(&b);
        prop_assert!((s.distance(&ca, &cb) - s.distance(&cb, &ca)).abs() < 1e-12);
        prop_assert!(s.distance(&ca, &ca) < 1e-12);
    }
}
