#!/usr/bin/env bash
# Tier-1 gate: everything must build, pass tests, and be lint-clean.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# Chaos gate: MLA under injected crashes/hangs/transients must complete,
# resume deterministically, and skip journaled crashers.
cargo test -q --test chaos
# Protocol chaos gate: a real client through the deterministic fault proxy
# (resets, torn/oversized frames, duplicates, delays) plus the server
# kill-restart and eviction drills must lose zero reports and leave a
# bit-identical history -- see tests/serve_chaos.rs.
cargo test -q --test serve_chaos
# Hot-path equivalence smoke in release mode: the distance-cached NLL,
# W ∘ K gradients, and batched prediction must match their retained
# pre-refactor references to ≤ 1e-12 under the optimizer's reassociations.
cargo test -q --release -p gptune-gp --test equivalence
# Incremental-LCM equivalence smoke in release mode: 64 sequential rank-1
# extensions must match a from-scratch rebuild to ≤ 1e-10, downdate∘update
# must round-trip the factor, and the capped (subset-of-data) posterior
# must stay within its fixed tolerance -- see crates/gp/tests/incremental.rs.
cargo test -q --release -p gptune-gp --test incremental
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
# Domain-specific lint suite (NaN-safety, panic tiers, lock discipline,
# determinism, unsafe hygiene, observability) plus the GX7xx workspace
# concurrency tier (lock-order graph, interprocedural blocking summaries)
# -- see DESIGN.md "Static-analysis policy" and section 6. -D semantics:
# any finding fails the gate. The full sweep must stay interactive
# (< 10s wall) so it never gets skipped locally; the binary is built
# above by `cargo build --release`, so this times the lint itself.
lint_start="$(date +%s%N)"
cargo run -q --release -p gptune-xtask -- lint
lint_ms="$(( ($(date +%s%N) - lint_start) / 1000000 ))"
echo "gptune-xtask lint wall time: ${lint_ms}ms"
if [ "$lint_ms" -ge 10000 ]; then
  echo "gptune-xtask lint took ${lint_ms}ms (>= 10s budget)" >&2
  exit 1
fi
# Trace smoke gate: a tiny traced MLA must export a JSONL trace that
# trace_tool summarizes cleanly, with at least one modeling span per
# iteration (5 iterations at budget 10 on 2 tasks).
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run -q --release --example trace_tool -- demo "$trace_dir/trace.jsonl"
cargo run -q --release --example trace_tool -- summarize "$trace_dir/trace.jsonl" \
  --chrome "$trace_dir/trace_chrome.json"
modeling_spans="$(grep -c '"name":"gptune.core.modeling"' "$trace_dir/trace.jsonl" || true)"
if [ "$modeling_spans" -lt 5 ]; then
  echo "trace smoke: expected >= 1 modeling span per iteration (5), got $modeling_spans" >&2
  exit 1
fi
# Serve smoke gate: a scaled-down serve_bench burst (32 concurrent
# sessions over 8 client connections) plus the kill-the-server WAL-replay,
# archive kill-restart, and eviction drills. The binary exits non-zero on
# any request error, missing latency histogram, lost report, history
# divergence, or cap breach, so a bare run is the assertion.
cargo run -q --release -p gptune-bench --bin serve_bench -- "$trace_dir/BENCH_serve_smoke.json" --smoke
# Both durability sections (WAL kill drill and archive kill-restart)
# report a lost_reports field; every one of them must be exactly 0.
while read -r lost; do
  if [ "$lost" != "0" ]; then
    echo "serve smoke: a durability drill lost $lost report(s)" >&2
    exit 1
  fi
done < <(grep -o '"lost_reports": [0-9-]*' "$trace_dir/BENCH_serve_smoke.json" | grep -o '[0-9-]*$')
if ! grep -q '"bit_identical": true' "$trace_dir/BENCH_serve_smoke.json"; then
  echo "serve smoke: post-recovery history diverged from the clean run" >&2
  exit 1
fi
# Observability smoke gate: obs_tool --smoke stands up a real server,
# drives a WAL-backed burst, scrapes the live `metrics` endpoint (exit 2
# if the dashboard would render zero traffic), and dumps both sides'
# JSONL traces; trace_tool correlate must then link every acknowledged
# client rpc to its server-side spans by request id.
cargo run -q --release --example obs_tool -- --smoke "$trace_dir/obs"
correlate_out="$(cargo run -q --release --example trace_tool -- correlate \
  "$trace_dir/obs/client.jsonl" "$trace_dir/obs/server.jsonl")"
echo "$correlate_out" | tail -n 1
if ! echo "$correlate_out" | grep -q '(100.0% of acked)'; then
  echo "obs smoke: correlate did not link 100% of acked requests" >&2
  exit 1
fi
if echo "$correlate_out" | grep -q ' 0 acked'; then
  echo "obs smoke: no acknowledged requests in the client dump" >&2
  exit 1
fi
