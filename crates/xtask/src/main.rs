//! `gptune-xtask` CLI.
//!
//! ```text
//! cargo run -p gptune-xtask -- lint                 # lint the workspace
//! cargo run -p gptune-xtask -- lint --root P        # lint another checkout
//! cargo run -p gptune-xtask -- lint --lock-graph    # dump the lock-order graph (text + DOT)
//! cargo run -p gptune-xtask -- lint --explain GX701 # long-form rule rationale
//! cargo run -p gptune-xtask -- rules                # print the rule catalogue
//! ```
//!
//! `lint` exits 0 when clean, 1 on violations, 2 on usage/config errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("rules") => {
            println!("{:<7} {:<30} description", "id", "name");
            for r in gptune_xtask::rules::RULES {
                println!("{:<7} {:<30} {}", r.id, r.name, r.desc);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: gptune-xtask <lint [--root PATH] [--quiet] [--lock-graph] [--explain GX###] | rules>"
            );
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut lock_graph = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--quiet" | "-q" => quiet = true,
            "--lock-graph" => lock_graph = true,
            "--explain" => {
                return match it.next() {
                    Some(rule) => explain(rule),
                    None => {
                        eprintln!("--explain needs a rule ID (e.g. GX701)");
                        ExitCode::from(2)
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace this binary was built from (two levels
    // up from crates/xtask), so the gate works from any working directory.
    let root = root.unwrap_or_else(|| {
        let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.pop();
        p.pop();
        p
    });

    if lock_graph {
        return match gptune_xtask::parse_workspace(&root) {
            Ok(parsed) => {
                print!("{}", gptune_xtask::concurrency::lock_graph_report(&parsed));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gptune-xtask: {e}");
                ExitCode::from(2)
            }
        };
    }

    let cfg = match gptune_xtask::load_config(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("gptune-xtask: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match gptune_xtask::lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gptune-xtask: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.diagnostics.is_empty() {
        if !quiet {
            println!(
                "gptune-xtask lint: clean ({} files, {} rules, {} allowlist entries)",
                report.files_scanned,
                gptune_xtask::rules::RULES.len(),
                cfg.allows.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        let files: std::collections::BTreeSet<&str> =
            report.diagnostics.iter().map(|d| d.path.as_str()).collect();
        eprintln!(
            "gptune-xtask lint: {} violation(s) in {} file(s) — see DESIGN.md §\"Static-analysis policy\"",
            report.diagnostics.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

/// `lint --explain GX###`: long-form rationale where one exists, rule
/// table description otherwise.
fn explain(rule: &str) -> ExitCode {
    if let Some(text) = gptune_xtask::concurrency::explain(rule) {
        println!("{text}");
        return ExitCode::SUCCESS;
    }
    if let Some(r) = gptune_xtask::rules::RULES.iter().find(|r| r.id == rule) {
        println!("{} — {}.\n{}", r.id, r.name, r.desc);
        return ExitCode::SUCCESS;
    }
    eprintln!("gptune-xtask: unknown rule {rule:?} (see `gptune-xtask rules`)");
    ExitCode::from(2)
}
