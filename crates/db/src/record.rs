//! Journal record types and their JSONL encoding.
//!
//! A journal line is a single JSON object with a `"kind"` discriminator:
//!
//! * `"eval"` — one archived objective evaluation: problem identity
//!   (name + signature), task values, tuning-configuration values,
//!   objective outputs, and provenance (seed, run id, machine);
//! * `"run"` — a run summary carrying the `stats:` phase breakdown of one
//!   tuner execution, so archived runs render side-by-side like GPTune
//!   runlogs;
//! * `"fail"` — one classified evaluation failure (crash, deadline
//!   expiry, invalid measurement, exhausted transient retries) with its
//!   attempt count and elapsed time, so resumed and warm-started runs
//!   know which configurations are known to fail.
//!
//! Unknown kinds and unknown fields are skipped by readers, which is the
//! forward-compatibility contract: a v2 writer must only *add* fields or
//! kinds.

use crate::json::Json;

/// Current journal format version stamped on every line.
pub const FORMAT_VERSION: i64 = 1;

/// A typed parameter value, mirroring `gptune_space::Value` without the
/// dependency (the core crate converts at the boundary).
#[derive(Debug, Clone, PartialEq)]
pub enum DbValue {
    /// Real-valued parameter.
    Real(f64),
    /// Integer parameter.
    Int(i64),
    /// Categorical parameter (index into the choice list).
    Cat(usize),
}

impl DbValue {
    fn to_json(&self) -> Json {
        match self {
            DbValue::Real(x) => Json::Obj(vec![("r".into(), Json::from_f64(*x))]),
            DbValue::Int(x) => Json::Obj(vec![("i".into(), Json::Int(*x))]),
            DbValue::Cat(i) => Json::Obj(vec![("c".into(), Json::Int(*i as i64))]),
        }
    }

    fn from_json(j: &Json) -> Option<DbValue> {
        if let Some(r) = j.get("r") {
            return Some(DbValue::Real(r.as_f64()?));
        }
        if let Some(i) = j.get("i") {
            return Some(DbValue::Int(i.as_i64()?));
        }
        if let Some(c) = j.get("c") {
            let idx = c.as_i64()?;
            return usize::try_from(idx).ok().map(DbValue::Cat);
        }
        None
    }

    /// Numeric view (matches `Value::as_f64` semantics).
    pub fn as_f64(&self) -> f64 {
        match self {
            DbValue::Real(x) => *x,
            DbValue::Int(x) => *x as f64,
            DbValue::Cat(i) => *i as f64,
        }
    }
}

fn values_to_json(vs: &[DbValue]) -> Json {
    Json::Arr(vs.iter().map(|v| v.to_json()).collect())
}

fn values_from_json(j: &Json) -> Option<Vec<DbValue>> {
    j.as_arr()?.iter().map(DbValue::from_json).collect()
}

/// Where a record came from.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Provenance {
    /// Base RNG seed of the producing run.
    pub seed: u64,
    /// Run identifier (stable for all records of one tuner execution).
    pub run: String,
    /// Machine/model identifier, when known.
    pub machine: Option<String>,
}

impl Provenance {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("seed".to_string(), Json::from_u64(self.seed)),
            ("run".to_string(), Json::Str(self.run.clone())),
        ];
        if let Some(m) = &self.machine {
            pairs.push(("machine".to_string(), Json::Str(m.clone())));
        }
        Json::Obj(pairs)
    }

    fn from_json(j: &Json) -> Provenance {
        Provenance {
            seed: j.get("seed").and_then(Json::as_u64).unwrap_or(0),
            run: j
                .get("run")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            machine: j.get("machine").and_then(Json::as_str).map(str::to_string),
        }
    }
}

/// The `stats:` phase breakdown of one tuner run (mirrors
/// `gptune_runtime::PhaseStats` in plain numbers).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunStats {
    /// Virtual seconds inside simulated application runs.
    pub objective_virtual_secs: f64,
    /// Wall-clock seconds dispatching the objective.
    pub objective_wall_secs: f64,
    /// Wall-clock seconds in the modeling phase.
    pub modeling_wall_secs: f64,
    /// Wall-clock seconds in the search phase.
    pub search_wall_secs: f64,
    /// Number of objective evaluations.
    pub n_evals: u64,
    /// Evaluations whose objective panicked.
    pub n_crashed: u64,
    /// Evaluations expired by the watchdog deadline.
    pub n_timed_out: u64,
    /// Evaluations completed with an unusable measurement.
    pub n_invalid: u64,
    /// Evaluations that exhausted their transient retries.
    pub n_transient: u64,
    /// Total retry executions across all evaluations.
    pub n_retries: u64,
}

impl RunStats {
    pub(crate) fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "objective_s".into(),
                Json::from_f64(self.objective_virtual_secs),
            ),
            (
                "objective_wall_s".into(),
                Json::from_f64(self.objective_wall_secs),
            ),
            ("modeling_s".into(), Json::from_f64(self.modeling_wall_secs)),
            ("search_s".into(), Json::from_f64(self.search_wall_secs)),
            ("n_evals".into(), Json::from_u64(self.n_evals)),
            ("n_crashed".into(), Json::from_u64(self.n_crashed)),
            ("n_timed_out".into(), Json::from_u64(self.n_timed_out)),
            ("n_invalid".into(), Json::from_u64(self.n_invalid)),
            ("n_transient".into(), Json::from_u64(self.n_transient)),
            ("n_retries".into(), Json::from_u64(self.n_retries)),
        ])
    }

    pub(crate) fn from_json(j: &Json) -> RunStats {
        let f = |k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        // Failure counters default to 0 for journals written before the
        // fault-tolerant runtime existed.
        let u = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        RunStats {
            objective_virtual_secs: f("objective_s"),
            objective_wall_secs: f("objective_wall_s"),
            modeling_wall_secs: f("modeling_s"),
            search_wall_secs: f("search_s"),
            n_evals: u("n_evals"),
            n_crashed: u("n_crashed"),
            n_timed_out: u("n_timed_out"),
            n_invalid: u("n_invalid"),
            n_transient: u("n_transient"),
            n_retries: u("n_retries"),
        }
    }

    /// Total tuner seconds (virtual objective + modeling + search), the
    /// "total" column of the paper's Table 3.
    pub fn total_secs(&self) -> f64 {
        self.objective_virtual_secs + self.modeling_wall_secs + self.search_wall_secs
    }

    /// One-line report in the GPTune runlog style (matches
    /// `gptune_runtime::PhaseStats::report`, including the failure
    /// profile when the run saw faults).
    pub fn report(&self) -> String {
        let mut line = format!(
            "stats: total {:.1}s | objective {:.1}s ({} evals) | modeling {:.3}s | search {:.3}s",
            self.total_secs(),
            self.objective_virtual_secs,
            self.n_evals,
            self.modeling_wall_secs,
            self.search_wall_secs
        );
        let faults = self.n_crashed + self.n_timed_out + self.n_invalid + self.n_transient;
        if faults + self.n_retries > 0 {
            line.push_str(&format!(
                " | faults: {} crashed, {} timed-out, {} invalid, {} transient, {} retries",
                self.n_crashed, self.n_timed_out, self.n_invalid, self.n_transient, self.n_retries
            ));
        }
        line
    }
}

/// Failure classification of a `"fail"` journal line — mirrors
/// `gptune_runtime::FailureKind` without the dependency (this crate is
/// deliberately dependency-free; the core crate converts at the
/// boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// The objective panicked.
    Crashed,
    /// The objective exceeded the evaluation deadline.
    TimedOut,
    /// The objective completed with an unusable measurement.
    Invalid,
    /// The objective kept failing transiently.
    Transient,
}

impl FailKind {
    /// Stable lower-case code used on the journal line.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailKind::Crashed => "crashed",
            FailKind::TimedOut => "timed-out",
            FailKind::Invalid => "invalid",
            FailKind::Transient => "transient",
        }
    }

    /// Inverse of [`FailKind::as_str`].
    pub fn parse(s: &str) -> Option<FailKind> {
        match s {
            "crashed" => Some(FailKind::Crashed),
            "timed-out" => Some(FailKind::TimedOut),
            "invalid" => Some(FailKind::Invalid),
            "transient" => Some(FailKind::Transient),
            _ => None,
        }
    }
}

/// One classified evaluation failure, archived alongside the (censored)
/// evaluation record so later runs can tell *why* a configuration has
/// non-finite outputs and skip re-evaluating known crashers.
#[derive(Debug, Clone, PartialEq)]
pub struct FailRecord {
    /// Problem name.
    pub problem: String,
    /// Problem signature.
    pub sig: u64,
    /// Task parameter values.
    pub task: Vec<DbValue>,
    /// Tuning configuration values.
    pub config: Vec<DbValue>,
    /// Failure classification.
    pub kind: FailKind,
    /// Number of execution attempts (> 1 means transient retries ran).
    pub attempts: u64,
    /// Wall-clock seconds from first dispatch to final failure.
    pub elapsed_secs: f64,
    /// Provenance of the failing run.
    pub prov: Provenance,
}

/// One archived evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct DbRecord {
    /// Problem name.
    pub problem: String,
    /// Problem signature (hash of name, spaces, objective count).
    pub sig: u64,
    /// Task parameter values.
    pub task: Vec<DbValue>,
    /// Tuning configuration values.
    pub config: Vec<DbValue>,
    /// Objective outputs (may contain non-finite values for failed runs).
    pub outputs: Vec<f64>,
    /// Provenance of the evaluation.
    pub prov: Provenance,
}

/// A run summary line.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Problem name.
    pub problem: String,
    /// Problem signature.
    pub sig: u64,
    /// Provenance (seed, run id, machine).
    pub prov: Provenance,
    /// Phase breakdown of the run.
    pub stats: RunStats,
}

/// One parsed journal line.
#[derive(Debug, Clone, PartialEq)]
pub enum DbEntry {
    /// An archived evaluation.
    Eval(DbRecord),
    /// A run summary.
    Run(RunSummary),
    /// A classified evaluation failure.
    Fail(FailRecord),
}

impl DbEntry {
    /// Problem signature of the entry.
    pub fn sig(&self) -> u64 {
        match self {
            DbEntry::Eval(r) => r.sig,
            DbEntry::Run(r) => r.sig,
            DbEntry::Fail(r) => r.sig,
        }
    }

    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            DbEntry::Eval(r) => Json::Obj(vec![
                ("v".into(), Json::Int(FORMAT_VERSION)),
                ("kind".into(), Json::Str("eval".into())),
                ("problem".into(), Json::Str(r.problem.clone())),
                ("sig".into(), Json::Str(format!("{:016x}", r.sig))),
                ("task".into(), values_to_json(&r.task)),
                ("config".into(), values_to_json(&r.config)),
                (
                    "outputs".into(),
                    Json::Arr(r.outputs.iter().map(|x| Json::from_f64(*x)).collect()),
                ),
                ("prov".into(), r.prov.to_json()),
            ])
            .to_string(),
            DbEntry::Run(r) => Json::Obj(vec![
                ("v".into(), Json::Int(FORMAT_VERSION)),
                ("kind".into(), Json::Str("run".into())),
                ("problem".into(), Json::Str(r.problem.clone())),
                ("sig".into(), Json::Str(format!("{:016x}", r.sig))),
                ("prov".into(), r.prov.to_json()),
                ("stats".into(), r.stats.to_json()),
            ])
            .to_string(),
            DbEntry::Fail(r) => Json::Obj(vec![
                ("v".into(), Json::Int(FORMAT_VERSION)),
                ("kind".into(), Json::Str("fail".into())),
                ("problem".into(), Json::Str(r.problem.clone())),
                ("sig".into(), Json::Str(format!("{:016x}", r.sig))),
                ("task".into(), values_to_json(&r.task)),
                ("config".into(), values_to_json(&r.config)),
                ("fail_kind".into(), Json::Str(r.kind.as_str().into())),
                ("attempts".into(), Json::from_u64(r.attempts)),
                ("elapsed_s".into(), Json::from_f64(r.elapsed_secs)),
                ("prov".into(), r.prov.to_json()),
            ])
            .to_string(),
        }
    }

    /// Parses one journal line. `Ok(None)` means the line is valid JSON of
    /// an unknown kind (skipped for forward compatibility); `Err` means the
    /// line is torn or malformed.
    pub fn from_line(line: &str) -> Result<Option<DbEntry>, String> {
        let j = crate::json::parse(line).map_err(|e| e.to_string())?;
        let kind = j.get("kind").and_then(Json::as_str).unwrap_or("eval");
        let problem = j
            .get("problem")
            .and_then(Json::as_str)
            .ok_or("missing 'problem'")?
            .to_string();
        let sig = parse_sig(&j).ok_or("missing 'sig'")?;
        let prov = j.get("prov").map(Provenance::from_json).unwrap_or_default();
        match kind {
            "eval" => {
                let task =
                    values_from_json(j.get("task").ok_or("missing 'task'")?).ok_or("bad 'task'")?;
                let config = values_from_json(j.get("config").ok_or("missing 'config'")?)
                    .ok_or("bad 'config'")?;
                let outputs: Vec<f64> = j
                    .get("outputs")
                    .and_then(Json::as_arr)
                    .ok_or("missing 'outputs'")?
                    .iter()
                    .map(|x| x.as_f64().ok_or("bad output"))
                    .collect::<Result<_, _>>()?;
                Ok(Some(DbEntry::Eval(DbRecord {
                    problem,
                    sig,
                    task,
                    config,
                    outputs,
                    prov,
                })))
            }
            "run" => {
                let stats = j.get("stats").map(RunStats::from_json).unwrap_or_default();
                Ok(Some(DbEntry::Run(RunSummary {
                    problem,
                    sig,
                    prov,
                    stats,
                })))
            }
            "fail" => {
                let task =
                    values_from_json(j.get("task").ok_or("missing 'task'")?).ok_or("bad 'task'")?;
                let config = values_from_json(j.get("config").ok_or("missing 'config'")?)
                    .ok_or("bad 'config'")?;
                let kind_str = j
                    .get("fail_kind")
                    .and_then(Json::as_str)
                    .ok_or("missing 'fail_kind'")?;
                // An unknown failure kind comes from a newer writer with a
                // richer classification: skip, same as an unknown line kind.
                let Some(kind) = FailKind::parse(kind_str) else {
                    return Ok(None);
                };
                Ok(Some(DbEntry::Fail(FailRecord {
                    problem,
                    sig,
                    task,
                    config,
                    kind,
                    attempts: j.get("attempts").and_then(Json::as_u64).unwrap_or(1),
                    elapsed_secs: j.get("elapsed_s").and_then(Json::as_f64).unwrap_or(0.0),
                    prov,
                })))
            }
            _ => Ok(None), // unknown kind from a newer writer: skip
        }
    }

    /// Deduplication key: evals collapse on (sig, task, config, outputs);
    /// run summaries on (sig, run id).
    pub fn dedup_key(&self) -> String {
        match self {
            DbEntry::Eval(r) => {
                let mut k = format!("e:{:016x}", r.sig);
                for v in r.task.iter().chain(&r.config) {
                    k.push_str(&format!("|{}", v.to_json()));
                }
                for o in &r.outputs {
                    k.push_str(&format!("|{}", Json::from_f64(*o)));
                }
                k
            }
            DbEntry::Run(r) => format!("r:{:016x}|{}", r.sig, r.prov.run),
            DbEntry::Fail(r) => {
                let mut k = format!("f:{:016x}|{}", r.sig, r.kind.as_str());
                for v in r.task.iter().chain(&r.config) {
                    k.push_str(&format!("|{}", v.to_json()));
                }
                k
            }
        }
    }
}

fn parse_sig(j: &Json) -> Option<u64> {
    let s = j.get("sig")?;
    if let Some(text) = s.as_str() {
        u64::from_str_radix(text, 16).ok()
    } else {
        s.as_u64()
    }
}

/// FNV-1a hash of a byte stream — the problem-signature primitive. Stable
/// across platforms and versions (unlike `DefaultHasher`), so archives
/// written on one machine resolve on another.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> DbRecord {
        DbRecord {
            problem: "pdgeqrf".into(),
            sig: 0xdead_beef_0123_4567,
            task: vec![DbValue::Int(1000), DbValue::Int(1000)],
            config: vec![DbValue::Int(32), DbValue::Real(0.5), DbValue::Cat(2)],
            outputs: vec![1.5, f64::INFINITY],
            prov: Provenance {
                seed: u64::MAX - 1,
                run: "seed3-eps20".into(),
                machine: Some("cori-haswell-4".into()),
            },
        }
    }

    #[test]
    fn eval_roundtrip() {
        let e = DbEntry::Eval(sample_record());
        let line = e.to_line();
        assert!(!line.contains('\n'));
        let back = DbEntry::from_line(&line).unwrap().unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn run_summary_roundtrip() {
        let e = DbEntry::Run(RunSummary {
            problem: "superlu".into(),
            sig: 42,
            prov: Provenance {
                seed: 7,
                run: "seed7".into(),
                machine: None,
            },
            stats: RunStats {
                objective_virtual_secs: 120.5,
                objective_wall_secs: 0.8,
                modeling_wall_secs: 2.25,
                search_wall_secs: 1.125,
                n_evals: 60,
                n_crashed: 3,
                n_timed_out: 1,
                n_invalid: 0,
                n_transient: 2,
                n_retries: 5,
            },
        });
        let back = DbEntry::from_line(&e.to_line()).unwrap().unwrap();
        assert_eq!(back, e);
        if let DbEntry::Run(r) = &back {
            assert!((r.stats.total_secs() - 123.875).abs() < 1e-12);
            assert!(r.stats.report().contains("60 evals"));
            assert!(r
                .stats
                .report()
                .contains("faults: 3 crashed, 1 timed-out, 0 invalid, 2 transient, 5 retries"));
        }
    }

    #[test]
    fn run_summary_without_failure_counters_parses_as_zero() {
        // Journals written before the fault-tolerant runtime carry no
        // failure counters; they must read back as zeros, and the report
        // line must omit the failure profile.
        let line = r#"{"v":1,"kind":"run","problem":"old","sig":"000000000000002a","prov":{"seed":1,"run":"seed1"},"stats":{"objective_s":10.0,"n_evals":5}}"#;
        let back = DbEntry::from_line(line).unwrap().unwrap();
        if let DbEntry::Run(r) = back {
            assert_eq!(r.stats.n_evals, 5);
            assert_eq!(r.stats.n_crashed, 0);
            assert_eq!(r.stats.n_retries, 0);
            assert!(!r.stats.report().contains("faults:"));
        } else {
            panic!("wrong kind");
        }
    }

    fn sample_fail() -> FailRecord {
        FailRecord {
            problem: "pdgeqrf".into(),
            sig: 0xdead_beef_0123_4567,
            task: vec![DbValue::Int(1000), DbValue::Int(1000)],
            config: vec![DbValue::Int(32), DbValue::Real(0.5)],
            kind: FailKind::Crashed,
            attempts: 3,
            elapsed_secs: 1.25,
            prov: Provenance {
                seed: 9,
                run: "seed9-eps20".into(),
                machine: None,
            },
        }
    }

    #[test]
    fn fail_record_roundtrip() {
        for kind in [
            FailKind::Crashed,
            FailKind::TimedOut,
            FailKind::Invalid,
            FailKind::Transient,
        ] {
            let mut r = sample_fail();
            r.kind = kind;
            let e = DbEntry::Fail(r);
            let line = e.to_line();
            assert!(!line.contains('\n'));
            let back = DbEntry::from_line(&line).unwrap().unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn fail_kind_roundtrips_through_str() {
        for k in [
            FailKind::Crashed,
            FailKind::TimedOut,
            FailKind::Invalid,
            FailKind::Transient,
        ] {
            assert_eq!(FailKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(FailKind::parse("oom"), None);
    }

    #[test]
    fn unknown_fail_kind_skipped_not_error() {
        // A newer writer with a richer classification must not break us.
        let line = DbEntry::Fail(sample_fail())
            .to_line()
            .replace("\"crashed\"", "\"oom-killed\"");
        assert_eq!(DbEntry::from_line(&line).unwrap(), None);
    }

    #[test]
    fn fail_dedup_key_separates_kind_and_config() {
        let a = DbEntry::Fail(sample_fail());
        let mut b = sample_fail();
        b.kind = FailKind::TimedOut;
        assert_ne!(a.dedup_key(), DbEntry::Fail(b).dedup_key());
        let mut c = sample_fail();
        c.config[0] = DbValue::Int(64);
        assert_ne!(a.dedup_key(), DbEntry::Fail(c).dedup_key());
        // Same failure seen by two runs merges to one record.
        let mut d = sample_fail();
        d.prov.run = "other".into();
        d.attempts = 1;
        assert_eq!(a.dedup_key(), DbEntry::Fail(d).dedup_key());
    }

    #[test]
    fn nonfinite_outputs_roundtrip() {
        let mut r = sample_record();
        r.outputs = vec![f64::NAN, f64::NEG_INFINITY, 3.0];
        let back = DbEntry::from_line(&DbEntry::Eval(r).to_line())
            .unwrap()
            .unwrap();
        if let DbEntry::Eval(b) = back {
            assert!(b.outputs[0].is_nan());
            assert_eq!(b.outputs[1], f64::NEG_INFINITY);
            assert_eq!(b.outputs[2], 3.0);
        } else {
            panic!("wrong kind");
        }
    }

    #[test]
    fn unknown_kind_skipped_not_error() {
        let line = r#"{"v":3,"kind":"shard-manifest","problem":"x","sig":"00000000000000ff"}"#;
        assert_eq!(DbEntry::from_line(line).unwrap(), None);
    }

    #[test]
    fn newer_version_with_extra_fields_still_parses() {
        let mut e = DbEntry::Eval(sample_record()).to_line();
        // Simulate a v2 writer adding fields.
        e.insert(1, ' ');
        let e = e.replacen("{ ", "{\"future_field\":[1,2,3],", 1);
        let e = e.replace("\"v\":1", "\"v\":2");
        let back = DbEntry::from_line(&e).unwrap().unwrap();
        assert_eq!(back, DbEntry::Eval(sample_record()));
    }

    #[test]
    fn torn_line_is_error() {
        let line = DbEntry::Eval(sample_record()).to_line();
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(DbEntry::from_line(&line[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn dedup_key_separates_records() {
        let a = DbEntry::Eval(sample_record());
        let mut r2 = sample_record();
        r2.outputs = vec![1.5, 2.0];
        let b = DbEntry::Eval(r2);
        assert_ne!(a.dedup_key(), b.dedup_key());
        assert_eq!(a.dedup_key(), a.clone().dedup_key());
        // Provenance does NOT affect eval identity (same measurement from
        // two runs merges to one record).
        let mut r3 = sample_record();
        r3.prov.run = "other-run".into();
        assert_eq!(a.dedup_key(), DbEntry::Eval(r3).dedup_key());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
