//! Fixture: GX101 float equality. Linted under a synthetic production
//! path; the rule must flag IEEE `==`/`!=` against float literals and
//! NaN/infinity constants, and must NOT flag compound assignment,
//! ordering comparisons, or test code.

pub fn violations(x: f64, y: f64) -> bool {
    let a = x == 0.0; // GX101
    let b = y != 1.5; // GX101
    let c = x == f64::NAN; // GX101
    a || b || c
}

pub fn clean(x: f64, mut acc: f64) -> bool {
    acc += 1.0;
    let lt = x < 0.5;
    let ge = acc >= 2.0;
    lt || ge
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_equality_is_fine_in_tests() {
        assert!(super::clean(0.0, 1.0) || 1.0 == 1.0);
    }
}
