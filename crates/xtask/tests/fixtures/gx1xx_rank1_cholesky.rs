//! Fixture (trigger): GX1xx NaN-safety over rank-1 Cholesky kernel
//! shapes written the naive way — IEEE equality on the downdate pivot
//! (a NaN `r2` sails straight past `== 0.0`) and an unwrap'd
//! `partial_cmp` comparator picking the active-set eviction victim.
//! The lint must flag every one. See `gx1xx_rank1_cholesky_clean.rs`
//! for the shipped idiom.

pub fn downdate_diag(diag: &mut [f64], w: &[f64]) -> usize {
    let mut pivot = 0;
    for (j, d) in diag.iter_mut().enumerate() {
        let r2 = *d * *d - w[j] * w[j];
        if r2 == 0.0 {
            // GX101: misses the NaN pivot entirely
            pivot = j;
        }
        if *d != 0.0 {
            // GX101
            *d = r2.sqrt();
        }
    }
    pivot
}

pub fn pick_victim(dist: &[f64]) -> usize {
    dist.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal)) // GX103
        .map(|(i, _)| i)
        .unwrap_or(0)
}
