#!/usr/bin/env bash
# Tier-1 gate: everything must build, pass tests, and be lint-clean.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# Chaos gate: MLA under injected crashes/hangs/transients must complete,
# resume deterministically, and skip journaled crashers.
cargo test -q --test chaos
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
# Domain-specific lint suite (NaN-safety, panic tiers, lock discipline,
# determinism, unsafe hygiene) -- see DESIGN.md "Static-analysis policy".
cargo run -q -p gptune-xtask -- lint
