//! Table 4 — final (`WinTask`) and anytime (`mean stability`) performance
//! of GPTune vs OpenTuner vs HpBandSter on hypre (paper Sec. 6.6).
//!
//! Paper setup: δ = 30 random 3-D grids (10 ≤ n_i ≤ 100), ε_tot ∈
//! {10, 20, 30}, on 1 and 4 Cori nodes; GPTune wins 60–83% of tasks and
//! has the best (lowest) stability in every row.
//!
//! This harness: δ = 12 tasks (reduced from 30 so the full table runs in
//! minutes on a laptop; every other element of the protocol is identical,
//! including both machine sizes and all three budgets).

use gptune::apps::{HpcApp, HypreApp, MachineModel};
use gptune::baselines::{HpBandSterLike, OpenTunerLike, Tuner};
use gptune::core::{metrics, mla, MlaOptions};
use gptune::problem_from_app;
use gptune_bench::{banner, random_hypre_tasks};
use std::sync::Arc;

fn main() {
    banner(
        "Table 4 — WinTask & stability on hypre",
        "δ=30 tasks, ε_tot∈{10,20,30}, 1 and 4 Cori nodes",
        "δ=12 tasks (reduced), same budgets and machine sizes",
    );

    let delta = 12;
    println!(
        "\n{:>5} {:>6} | {:>8} {:>8} | {:>10} {:>10} {:>10}",
        "nodes", "ε_tot", "vs OT", "vs HB", "GPTune", "OT", "HB"
    );

    for &nodes in &[1usize, 4] {
        let app: Arc<dyn HpcApp> = Arc::new(HypreApp::new(MachineModel::cori(nodes)));
        let tasks = random_hypre_tasks(delta, 40 + nodes as u64);
        let problem = problem_from_app(Arc::clone(&app), tasks);

        for &budget in &[10usize, 20, 30] {
            let seed = 1000 * nodes as u64 + budget as u64;
            let mut opts = MlaOptions::default().with_budget(budget).with_seed(seed);
            opts.lcm.n_starts = 2;
            opts.lcm.lbfgs.max_iters = 20;

            let gp = mla::tune(&problem, &opts);
            let gp_best: Vec<f64> = gp.per_task.iter().map(|t| t.best_value).collect();
            let gp_traj: Vec<Vec<f64>> = gp
                .per_task
                .iter()
                .map(|t| t.samples.iter().map(|(_, y)| *y).collect())
                .collect();

            let mut ot_best = Vec::new();
            let mut hb_best = Vec::new();
            let mut ot_traj = Vec::new();
            let mut hb_traj = Vec::new();
            for i in 0..delta {
                let ot =
                    OpenTunerLike::default().tune_task(&problem, i, budget, seed + 300 + i as u64);
                let hb =
                    HpBandSterLike::default().tune_task(&problem, i, budget, seed + 600 + i as u64);
                ot_best.push(ot.best_value);
                hb_best.push(hb.best_value);
                ot_traj.push(ot.trajectory());
                hb_traj.push(hb.trajectory());
            }

            let y_star: Vec<f64> = (0..delta)
                .map(|i| gp_best[i].min(ot_best[i]).min(hb_best[i]))
                .collect();

            println!(
                "{:>5} {:>6} | {:>7.0}% {:>7.0}% | {:>10.2} {:>10.2} {:>10.2}",
                nodes,
                budget,
                metrics::win_task(&gp_best, &ot_best),
                metrics::win_task(&gp_best, &hb_best),
                metrics::mean_stability(&gp_traj, &y_star),
                metrics::mean_stability(&ot_traj, &y_star),
                metrics::mean_stability(&hb_traj, &y_star),
            );
        }
    }

    println!("\nShape check vs paper: WinTask ≥ 50% against both baselines in every row, and");
    println!("GPTune's mean stability is the smallest (best anytime behaviour) of the three.");
}
