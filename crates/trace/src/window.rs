//! Rolling-window metric deltas: a ring of per-window slots behind each
//! counter and histogram so rates and quantiles can reflect the last
//! `count × width` seconds instead of the process lifetime.
//!
//! Each slot is stamped with the window id it currently holds
//! (`now / width`). A recorder whose window id differs from the stamp
//! CAS-claims the slot and zeroes its deltas before adding; every update
//! is a relaxed atomic. Recorders racing a window boundary can bleed a
//! handful of samples into a freshly reset slot (or lose them to the
//! reset) — windowed numbers are operational telemetry, not accounting,
//! and the error is bounded by the writes in flight at one boundary.
//! The lifetime registry in [`crate::metrics`] stays exact.
//!
//! Windows are configured per tracer ([`WindowSpec`]); a disabled spec
//! (the only mode a [`crate::Tracer::disabled`] tracer ever sees) skips
//! ring maintenance entirely, and the enabled fast path adds one clock
//! read plus a few relaxed atomic ops per sample.

use crate::metrics::{HistogramSnapshot, N_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Rolling-window configuration: `count` windows of `width` each. The
/// default (12 × 10s) keeps ~2 minutes of history; `disabled()` turns
/// window bookkeeping off entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    pub width: Duration,
    pub count: usize,
}

impl Default for WindowSpec {
    fn default() -> Self {
        WindowSpec {
            width: Duration::from_secs(10),
            count: 12,
        }
    }
}

impl WindowSpec {
    /// No rolling windows: metrics keep only lifetime totals.
    pub const fn disabled() -> Self {
        WindowSpec {
            width: Duration::ZERO,
            count: 0,
        }
    }

    /// Whether this spec maintains any windows.
    pub fn enabled(&self) -> bool {
        self.count > 0 && !self.width.is_zero()
    }

    /// Maximum span of history the ring can cover.
    pub fn horizon(&self) -> Duration {
        self.width.saturating_mul(self.count as u32)
    }
}

/// Shared clock context for every ring in one registry: the registry's
/// epoch plus the window geometry. `Instant` is `Copy`, so each ring
/// carries its own copy and never touches shared state to read time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WindowCtx {
    epoch: Instant,
    width_ns: u64,
    count: u64,
}

impl WindowCtx {
    pub(crate) fn new(epoch: Instant, spec: WindowSpec) -> Option<WindowCtx> {
        if !spec.enabled() {
            return None;
        }
        Some(WindowCtx {
            epoch,
            width_ns: (spec.width.as_nanos() as u64).max(1),
            count: spec.count as u64,
        })
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn wid(&self, now_ns: u64) -> u64 {
        now_ns / self.width_ns
    }

    /// Span of wall time the live windows cover right now: the full
    /// older windows plus the elapsed part of the current one, capped by
    /// process uptime so early scrapes don't under-report rates.
    pub(crate) fn horizon_ns(&self) -> u64 {
        let now = self.now_ns();
        ((self.count - 1) * self.width_ns + now % self.width_ns).min(now.max(1))
    }
}

/// Window-id stamp meaning "slot never claimed". A real stamp of
/// `u64::MAX` would need ~584 years of nanoseconds, so the sentinel is
/// unreachable.
const EMPTY: u64 = u64::MAX;

/// Claims `stamp` for window `wid` if it is stale, returning true when
/// this caller won the reset race (and must zero the slot's deltas).
fn claim(stamp: &AtomicU64, wid: u64) -> bool {
    let cur = stamp.load(Ordering::Relaxed);
    cur != wid
        && stamp
            .compare_exchange(cur, wid, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
}

/// True when a slot stamped `stamp` belongs to one of the `count` live
/// windows ending at `wid` (inclusive).
fn live(stamp: u64, wid: u64, count: u64) -> bool {
    stamp != EMPTY && stamp <= wid && wid - stamp < count
}

struct CounterSlot {
    wid: AtomicU64,
    value: AtomicU64,
}

/// Per-window deltas for one counter.
pub(crate) struct CounterRing {
    ctx: WindowCtx,
    slots: Vec<CounterSlot>,
}

impl CounterRing {
    pub(crate) fn new(ctx: WindowCtx) -> CounterRing {
        CounterRing {
            slots: (0..ctx.count)
                .map(|_| CounterSlot {
                    wid: AtomicU64::new(EMPTY),
                    value: AtomicU64::new(0),
                })
                .collect(),
            ctx,
        }
    }

    pub(crate) fn add(&self, n: u64) {
        let wid = self.ctx.wid(self.ctx.now_ns());
        let Some(slot) = self.slots.get((wid % self.ctx.count) as usize) else {
            return;
        };
        if claim(&slot.wid, wid) {
            slot.value.store(0, Ordering::Relaxed);
        }
        slot.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Total delta across the live windows.
    pub(crate) fn merged(&self) -> u64 {
        let wid = self.ctx.wid(self.ctx.now_ns());
        self.slots
            .iter()
            .filter(|s| live(s.wid.load(Ordering::Relaxed), wid, self.ctx.count))
            .map(|s| s.value.load(Ordering::Relaxed))
            .sum()
    }
}

struct HistSlot {
    wid: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

/// Per-window deltas for one histogram (full log2 bucket array per slot).
pub(crate) struct HistRing {
    ctx: WindowCtx,
    slots: Vec<HistSlot>,
}

impl HistRing {
    pub(crate) fn new(ctx: WindowCtx) -> HistRing {
        HistRing {
            slots: (0..ctx.count)
                .map(|_| HistSlot {
                    wid: AtomicU64::new(EMPTY),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            ctx,
        }
    }

    pub(crate) fn record(&self, v: u64, bucket: usize) {
        let wid = self.ctx.wid(self.ctx.now_ns());
        let Some(slot) = self.slots.get((wid % self.ctx.count) as usize) else {
            return;
        };
        if claim(&slot.wid, wid) {
            slot.count.store(0, Ordering::Relaxed);
            slot.sum.store(0, Ordering::Relaxed);
            for b in &slot.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(v, Ordering::Relaxed);
        if let Some(b) = slot.buckets.get(bucket) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Merged snapshot across the live windows.
    pub(crate) fn merged(&self) -> HistogramSnapshot {
        let wid = self.ctx.wid(self.ctx.now_ns());
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut buckets = [0u64; N_BUCKETS];
        for slot in &self.slots {
            if !live(slot.wid.load(Ordering::Relaxed), wid, self.ctx.count) {
                continue;
            }
            count += slot.count.load(Ordering::Relaxed);
            sum += slot.sum.load(Ordering::Relaxed);
            for (acc, b) in buckets.iter_mut().zip(&slot.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        HistogramSnapshot {
            count,
            sum,
            buckets: buckets
                .iter()
                .enumerate()
                .filter_map(|(i, &n)| (n > 0).then_some((i as u32, n)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(width: Duration, count: usize) -> WindowCtx {
        WindowCtx::new(Instant::now(), WindowSpec { width, count }).unwrap()
    }

    #[test]
    fn spec_enablement_and_horizon() {
        assert!(!WindowSpec::disabled().enabled());
        let spec = WindowSpec::default();
        assert!(spec.enabled());
        assert_eq!(spec.horizon(), Duration::from_secs(120));
        assert!(WindowCtx::new(Instant::now(), WindowSpec::disabled()).is_none());
    }

    #[test]
    fn counter_ring_accumulates_within_the_horizon() {
        // Wide windows: everything this test does lands in window 0.
        let r = CounterRing::new(ctx(Duration::from_secs(3600), 4));
        r.add(3);
        r.add(4);
        assert_eq!(r.merged(), 7);
    }

    #[test]
    fn counter_ring_forgets_expired_windows() {
        // 1ms windows, 2 of them: after sleeping > 2ms the old delta is
        // outside the horizon even though its slot was never reclaimed.
        let r = CounterRing::new(ctx(Duration::from_millis(1), 2));
        r.add(10);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(r.merged(), 0, "expired windows drop out of the merge");
        r.add(2);
        assert_eq!(r.merged(), 2);
    }

    #[test]
    fn hist_ring_merges_and_recovers() {
        let r = HistRing::new(ctx(Duration::from_millis(2), 3));
        r.record(1000, 10);
        r.record(1000, 10);
        assert_eq!(r.merged().count, 2);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(r.merged().count, 0, "windowed view recovers after idle");
        r.record(5, 3);
        let m = r.merged();
        assert_eq!(m.count, 1);
        assert_eq!(m.sum, 5);
        assert_eq!(m.buckets, vec![(3, 1)]);
    }

    #[test]
    fn slot_reuse_resets_stale_deltas() {
        // One slot: every new window lands on the same slot and must
        // reset it.
        let r = CounterRing::new(ctx(Duration::from_millis(1), 1));
        r.add(100);
        std::thread::sleep(Duration::from_millis(3));
        r.add(1);
        assert_eq!(r.merged(), 1, "stale slot was zeroed before reuse");
    }

    #[test]
    fn concurrent_ring_updates_do_not_underflow() {
        let r = std::sync::Arc::new(CounterRing::new(ctx(Duration::from_secs(3600), 4)));
        let mut threads = Vec::new();
        for _ in 0..8 {
            let r = std::sync::Arc::clone(&r);
            threads.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    r.add(1);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        // A single hour-wide window: no boundary races, so the delta is
        // exact.
        assert_eq!(r.merged(), 8000);
    }
}
