//! Journal sharding: splitting one problem's history across shard files
//! with a manifest for cross-shard query and merge.
//!
//! A long-lived archive accumulates every evaluation of a problem in one
//! JSONL journal; at serving scale that file becomes both large and hot
//! (the serve backend re-reads it on warm starts while tuner runs append
//! to it). Sharding freezes the accumulated history into immutable
//! archive shards — compressed binary v2 files ([`crate::journal_v2`]) —
//! and leaves the live JSONL journal as a small write head:
//!
//! ```text
//! <root>/
//!   <problem>-<sig>.jsonl              live write head (v1, appendable)
//!   <problem>-<sig>.manifest.json      shard manifest
//!   <problem>-<sig>.shard000.gdb2      immutable archive shard (v2)
//!   <problem>-<sig>.shard001.gdb2
//! ```
//!
//! Two split policies: **by task** (one shard per distinct task value —
//! the task-range layout, so a warm start for one task touches one shard)
//! and **window** (append-order windows of fixed entry count — the
//! time-window layout for chronological archival). Run summaries always
//! land in the first shard of a by-task split.
//!
//! Readers go through [`load_all`], which folds manifest shards and the
//! live journal into one deduplicated view — so every crash window of
//! [`split`] (shards written but no manifest; manifest written but the
//! live journal not yet truncated) degrades to duplicates that
//! deduplication removes, never to data loss. Shards in the manifest may
//! be v1 (JSONL) or v2; `db_tool migrate-v2` upgrades v1 shards in place.

use crate::db::sanitize;
use crate::fsio;
use crate::journal::{self, RecoveryReport};
use crate::journal_v2;
use crate::json::{self, Json};
use crate::lock::{FileLock, LockOptions};
use crate::record::DbEntry;
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// How [`split`] partitions entries into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// One shard per distinct task value (task-range sharding). Run
    /// summaries go to the first shard.
    ByTask,
    /// Append-order windows of at most `n` entries (time-window
    /// sharding).
    Window(usize),
}

impl ShardPolicy {
    fn as_str(&self) -> &'static str {
        match self {
            ShardPolicy::ByTask => "by-task",
            ShardPolicy::Window(_) => "window",
        }
    }
}

/// Storage format of one shard file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFormat {
    /// JSONL (journal format v1) — the migration path.
    Jsonl,
    /// Compressed binary journal format v2.
    V2,
}

impl ShardFormat {
    fn as_str(&self) -> &'static str {
        match self {
            ShardFormat::Jsonl => "jsonl",
            ShardFormat::V2 => "v2",
        }
    }

    fn parse(s: &str) -> Option<ShardFormat> {
        match s {
            "jsonl" => Some(ShardFormat::Jsonl),
            "v2" => Some(ShardFormat::V2),
            _ => None,
        }
    }
}

/// One shard listed in a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardInfo {
    /// File name relative to the archive root.
    pub file: String,
    /// Storage format.
    pub format: ShardFormat,
    /// Entry count at write time (informational; readers re-count).
    pub n_entries: usize,
    /// Human-readable partition label (`task:<key>` or `window:<k>`).
    pub label: String,
}

/// The shard manifest of one problem signature.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// Problem name.
    pub problem: String,
    /// Problem signature.
    pub sig: u64,
    /// Policy used by the most recent split.
    pub policy: String,
    /// Shards in partition order.
    pub shards: Vec<ShardInfo>,
}

/// Manifest path for a problem signature.
pub fn manifest_path(root: &Path, problem: &str, sig: u64) -> PathBuf {
    root.join(format!("{}-{sig:016x}.manifest.json", sanitize(problem)))
}

/// Path of shard `idx` for a problem signature.
pub fn shard_path(root: &Path, problem: &str, sig: u64, idx: usize) -> PathBuf {
    root.join(shard_file(problem, sig, idx))
}

fn shard_file(problem: &str, sig: u64, idx: usize) -> String {
    format!("{}-{sig:016x}.shard{idx:03}.gdb2", sanitize(problem))
}

/// Path of the live JSONL write head for a problem signature. Public so
/// archive writers outside this crate (the serve session store) append
/// to the same file `load_all` folds in.
pub fn live_journal_path(root: &Path, problem: &str, sig: u64) -> PathBuf {
    root.join(format!("{}-{sig:016x}.jsonl", sanitize(problem)))
}

impl ShardManifest {
    /// Loads the manifest for `(problem, sig)`; `Ok(None)` when the
    /// problem is unsharded.
    pub fn load(root: &Path, problem: &str, sig: u64) -> io::Result<Option<ShardManifest>> {
        let path = manifest_path(root, problem, sig);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let bad = |msg: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shard manifest {}: {msg}", path.display()),
            )
        };
        let j = json::parse(&text).map_err(|e| bad(&e.to_string()))?;
        let problem = j
            .get("problem")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing problem"))?
            .to_string();
        let sig = j
            .get("sig")
            .and_then(|v| v.as_str())
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| bad("missing sig"))?;
        let policy = j
            .get("policy")
            .and_then(Json::as_str)
            .unwrap_or("window")
            .to_string();
        let mut shards = Vec::new();
        for s in j.get("shards").and_then(Json::as_arr).unwrap_or(&[]) {
            let file = s
                .get("file")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("shard missing file"))?
                .to_string();
            let format = s
                .get("format")
                .and_then(Json::as_str)
                .and_then(ShardFormat::parse)
                .ok_or_else(|| bad("shard missing format"))?;
            let n_entries = s
                .get("n_entries")
                .and_then(Json::as_i64)
                .and_then(|n| usize::try_from(n).ok())
                .unwrap_or(0);
            let label = s
                .get("label")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            shards.push(ShardInfo {
                file,
                format,
                n_entries,
                label,
            });
        }
        Ok(Some(ShardManifest {
            problem,
            sig,
            policy,
            shards,
        }))
    }

    /// Writes the manifest atomically.
    pub fn save(&self, root: &Path) -> io::Result<()> {
        let shards: Vec<Json> = self
            .shards
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("file".into(), Json::Str(s.file.clone())),
                    ("format".into(), Json::Str(s.format.as_str().into())),
                    ("n_entries".into(), Json::Int(s.n_entries as i64)),
                    ("label".into(), Json::Str(s.label.clone())),
                ])
            })
            .collect();
        let j = Json::Obj(vec![
            ("v".into(), Json::Int(1)),
            ("kind".into(), Json::Str("shard-manifest".into())),
            ("problem".into(), Json::Str(self.problem.clone())),
            ("sig".into(), Json::Str(format!("{:016x}", self.sig))),
            ("policy".into(), Json::Str(self.policy.clone())),
            ("shards".into(), Json::Arr(shards)),
        ]);
        let mut text = j.to_string();
        text.push('\n');
        fsio::atomic_write(
            &manifest_path(root, &self.problem, self.sig),
            text.as_bytes(),
        )
    }
}

/// Loads one shard file according to its manifest format. Per-record
/// drop errors come back stamped with the shard's file name.
pub fn load_shard(root: &Path, info: &ShardInfo) -> io::Result<(Vec<DbEntry>, RecoveryReport)> {
    let path = root.join(&info.file);
    let (entries, mut report) = match info.format {
        ShardFormat::Jsonl => journal::load(&path)?,
        ShardFormat::V2 => journal_v2::load(&path)?,
    };
    stamp_file(&mut report, &info.file);
    Ok((entries, report))
}

/// Fills in the source-file name on errors the format readers left blank.
fn stamp_file(report: &mut RecoveryReport, file: &str) {
    for err in &mut report.errors {
        if err.file.is_empty() {
            err.file = file.to_string();
        }
    }
}

/// The complete deduplicated history of `(problem, sig)`: manifest
/// shards (in manifest order) followed by the live journal, with exact
/// duplicates (same [`DbEntry::dedup_key`]) dropped. The recovery
/// report aggregates all files read.
pub fn load_all(
    root: &Path,
    problem: &str,
    sig: u64,
) -> io::Result<(Vec<DbEntry>, RecoveryReport)> {
    let mut entries = Vec::new();
    let mut report = RecoveryReport::default();
    if let Some(manifest) = ShardManifest::load(root, problem, sig)? {
        for info in &manifest.shards {
            let (es, r) = load_shard(root, info)?;
            absorb(&mut report, &r);
            entries.extend(es);
        }
    }
    let live_path = live_journal_path(root, problem, sig);
    let (live, mut r) = journal::load(&live_path)?;
    stamp_file(
        &mut r,
        &live_path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default(),
    );
    absorb(&mut report, &r);
    entries.extend(live);
    let mut seen = BTreeSet::new();
    entries.retain(|e| seen.insert(e.dedup_key()));
    report.n_loaded = entries.len();
    Ok((entries, report))
}

fn absorb(into: &mut RecoveryReport, from: &RecoveryReport) {
    into.n_loaded += from.n_loaded;
    into.n_unknown_kind += from.n_unknown_kind;
    into.n_corrupt_interior += from.n_corrupt_interior;
    into.dropped_torn_tail |= from.dropped_torn_tail;
    into.errors.extend(from.errors.iter().cloned());
}

/// Splits the accumulated history of `(problem, sig)` into v2 archive
/// shards under `policy`, writes the manifest, and truncates the live
/// journal. Pre-existing shards are folded in (re-sharding is
/// idempotent). Returns the new manifest.
///
/// Crash safety: shards are written first, then the manifest (atomic),
/// then the live journal is emptied — every intermediate state re-loads
/// to the same deduplicated history via [`load_all`].
pub fn split(
    root: &Path,
    problem: &str,
    sig: u64,
    policy: ShardPolicy,
    lock: &LockOptions,
) -> io::Result<ShardManifest> {
    let live_path = live_journal_path(root, problem, sig);
    let _guard = FileLock::acquire(&live_path, lock)?;
    let (entries, _) = load_all(root, problem, sig)?;

    // Partition into (label, entries) groups, preserving append order
    // inside each group.
    let mut groups: Vec<(String, Vec<DbEntry>)> = Vec::new();
    match policy {
        ShardPolicy::ByTask => {
            for e in entries {
                let label = match &e {
                    DbEntry::Eval(r) => format!("task:{}", task_key(&r.task)),
                    DbEntry::Fail(r) => format!("task:{}", task_key(&r.task)),
                    // Run summaries are not task-scoped; a by-task split
                    // parks them in the first group so they stay reachable
                    // from the manifest.
                    DbEntry::Run(_) => "runs".to_string(),
                };
                match groups.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, g)) => g.push(e),
                    None => groups.push((label, vec![e])),
                }
            }
        }
        ShardPolicy::Window(n) => {
            let n = n.max(1);
            for e in entries {
                let needs_new = groups.last().is_none_or(|(_, g)| g.len() >= n);
                if needs_new {
                    groups.push((format!("window:{}", groups.len()), Vec::new()));
                }
                if let Some((_, g)) = groups.last_mut() {
                    g.push(e);
                }
            }
        }
    }

    let mut shards = Vec::new();
    for (idx, (label, group)) in groups.iter().enumerate() {
        let file = shard_file(problem, sig, idx);
        journal_v2::write(&root.join(&file), problem, sig, group)?;
        shards.push(ShardInfo {
            file,
            format: ShardFormat::V2,
            n_entries: group.len(),
            label: label.clone(),
        });
    }
    // Remove stale shard files beyond the new count (a re-split can
    // shrink the shard set).
    for idx in groups.len().. {
        let stale = shard_path(root, problem, sig, idx);
        match std::fs::remove_file(&stale) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => break,
            Err(e) => return Err(e),
        }
    }
    let manifest = ShardManifest {
        problem: problem.to_string(),
        sig,
        policy: policy.as_str().to_string(),
        shards,
    };
    manifest.save(root)?;
    // Truncate the write head: its entries now live in shards.
    fsio::atomic_write(&live_path, b"")?;
    Ok(manifest)
}

/// Drops live-journal entries that already exist in archive shards (and
/// interior duplicates), rewriting the live journal atomically. Returns
/// `(kept, dropped)`.
pub fn compact_live(
    root: &Path,
    problem: &str,
    sig: u64,
    lock: &LockOptions,
) -> io::Result<(usize, usize)> {
    let live_path = live_journal_path(root, problem, sig);
    let _guard = FileLock::acquire(&live_path, lock)?;
    let mut seen = BTreeSet::new();
    if let Some(manifest) = ShardManifest::load(root, problem, sig)? {
        for info in &manifest.shards {
            let (es, _) = load_shard(root, info)?;
            for e in &es {
                seen.insert(e.dedup_key());
            }
        }
    }
    let (live, _) = journal::load(&live_path)?;
    let n_before = live.len();
    let mut kept = Vec::new();
    for e in live {
        if seen.insert(e.dedup_key()) {
            kept.push(e);
        }
    }
    let mut text = String::new();
    for e in &kept {
        text.push_str(&e.to_line());
        text.push('\n');
    }
    fsio::atomic_write(&live_path, text.as_bytes())?;
    Ok((kept.len(), n_before - kept.len()))
}

/// Canonical task label used for by-task shard names.
fn task_key(task: &[crate::record::DbValue]) -> String {
    use crate::record::DbValue;
    task.iter()
        .map(|v| match v {
            DbValue::Real(x) => format!("r{x}"),
            DbValue::Int(i) => format!("i{i}"),
            DbValue::Cat(c) => format!("c{c}"),
        })
        .collect::<Vec<_>>()
        .join("_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DbRecord, DbValue, Provenance};

    fn tmp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "gptune_db_shard_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(task: i64, cfg: i64, y: f64) -> DbEntry {
        DbEntry::Eval(DbRecord {
            problem: "toy".into(),
            sig: 0xfeed,
            task: vec![DbValue::Int(task)],
            config: vec![DbValue::Int(cfg)],
            outputs: vec![y],
            prov: Provenance {
                seed: 1,
                run: "r".into(),
                machine: None,
            },
        })
    }

    fn seed_journal(root: &Path, entries: &[DbEntry]) {
        journal::append(
            &live_journal_path(root, "toy", 0xfeed),
            entries,
            &LockOptions::default(),
        )
        .unwrap();
    }

    #[test]
    fn split_by_task_and_reload() {
        let root = tmp_root("bytask");
        let entries: Vec<DbEntry> = (0..12).map(|i| rec(i % 3, i, i as f64)).collect();
        seed_journal(&root, &entries);
        let m = split(
            &root,
            "toy",
            0xfeed,
            ShardPolicy::ByTask,
            &LockOptions::default(),
        )
        .unwrap();
        assert_eq!(m.shards.len(), 3);
        assert!(m.shards.iter().all(|s| s.format == ShardFormat::V2));
        assert_eq!(m.shards.iter().map(|s| s.n_entries).sum::<usize>(), 12);
        // Live journal is now an empty write head.
        let (live, _) = journal::load(&live_journal_path(&root, "toy", 0xfeed)).unwrap();
        assert!(live.is_empty());
        // Cross-shard load returns the full deduplicated history.
        let (all, report) = load_all(&root, "toy", 0xfeed).unwrap();
        assert_eq!(all.len(), 12);
        assert!(report.is_clean());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn split_window_bounds_shard_size() {
        let root = tmp_root("window");
        let entries: Vec<DbEntry> = (0..10).map(|i| rec(0, i, i as f64)).collect();
        seed_journal(&root, &entries);
        let m = split(
            &root,
            "toy",
            0xfeed,
            ShardPolicy::Window(4),
            &LockOptions::default(),
        )
        .unwrap();
        assert_eq!(
            m.shards.iter().map(|s| s.n_entries).collect::<Vec<_>>(),
            [4, 4, 2]
        );
        let (all, _) = load_all(&root, "toy", 0xfeed).unwrap();
        assert_eq!(all.len(), 10);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn appends_after_split_are_visible_and_resplit_folds_them() {
        let root = tmp_root("resplit");
        seed_journal(
            &root,
            &(0..6).map(|i| rec(i % 2, i, i as f64)).collect::<Vec<_>>(),
        );
        split(
            &root,
            "toy",
            0xfeed,
            ShardPolicy::ByTask,
            &LockOptions::default(),
        )
        .unwrap();
        // New evaluations land in the live journal...
        seed_journal(&root, &[rec(0, 100, 1.0), rec(2, 101, 2.0)]);
        let (all, _) = load_all(&root, "toy", 0xfeed).unwrap();
        assert_eq!(all.len(), 8);
        // ...and a re-split folds them into shards (new task ⇒ new shard).
        let m = split(
            &root,
            "toy",
            0xfeed,
            ShardPolicy::ByTask,
            &LockOptions::default(),
        )
        .unwrap();
        assert_eq!(m.shards.len(), 3);
        let (all, _) = load_all(&root, "toy", 0xfeed).unwrap();
        assert_eq!(all.len(), 8);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn resplit_removes_stale_shards() {
        let root = tmp_root("stale");
        seed_journal(
            &root,
            &(0..9).map(|i| rec(0, i, i as f64)).collect::<Vec<_>>(),
        );
        let m = split(
            &root,
            "toy",
            0xfeed,
            ShardPolicy::Window(2),
            &LockOptions::default(),
        )
        .unwrap();
        assert_eq!(m.shards.len(), 5);
        let m = split(
            &root,
            "toy",
            0xfeed,
            ShardPolicy::Window(100),
            &LockOptions::default(),
        )
        .unwrap();
        assert_eq!(m.shards.len(), 1);
        assert!(!shard_path(&root, "toy", 0xfeed, 1).exists());
        let (all, _) = load_all(&root, "toy", 0xfeed).unwrap();
        assert_eq!(all.len(), 9);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn duplicate_between_shard_and_live_is_deduplicated() {
        let root = tmp_root("dup");
        let e = rec(0, 7, 7.0);
        seed_journal(&root, &[e.clone(), rec(0, 8, 8.0)]);
        split(
            &root,
            "toy",
            0xfeed,
            ShardPolicy::ByTask,
            &LockOptions::default(),
        )
        .unwrap();
        // Simulate the crash window where the live journal was not yet
        // truncated / a replayed report: the same entry appends again.
        seed_journal(&root, &[e]);
        let (all, _) = load_all(&root, "toy", 0xfeed).unwrap();
        assert_eq!(all.len(), 2);
        // compact_live drops the duplicate from the write head.
        let (kept, dropped) = compact_live(&root, "toy", 0xfeed, &LockOptions::default()).unwrap();
        assert_eq!((kept, dropped), (0, 1));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_shard_record_is_reported_with_file_context() {
        let root = tmp_root("crcctx");
        seed_journal(
            &root,
            &(0..4).map(|i| rec(0, i, i as f64)).collect::<Vec<_>>(),
        );
        let m = split(
            &root,
            "toy",
            0xfeed,
            ShardPolicy::Window(100),
            &LockOptions::default(),
        )
        .unwrap();
        // Flip a payload byte deep inside the single v2 shard.
        let shard = root.join(&m.shards[0].file);
        let mut bytes = std::fs::read(&shard).unwrap();
        let n = bytes.len();
        bytes[n - 12] ^= 0x10;
        std::fs::write(&shard, &bytes).unwrap();
        let (all, report) = load_all(&root, "toy", 0xfeed).unwrap();
        assert_eq!(all.len(), 3, "one record dropped");
        assert_eq!(report.n_corrupt_interior, 1);
        assert_eq!(report.errors.len(), 1);
        let err = &report.errors[0];
        assert_eq!(err.file, m.shards[0].file, "shard name attached");
        assert!(err.offset > 0);
        assert!(matches!(
            err.kind,
            crate::journal::RecordErrorKind::CrcMismatch { .. }
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_roundtrip() {
        let root = tmp_root("manifest");
        let m = ShardManifest {
            problem: "toy".into(),
            sig: 0xfeed,
            policy: "by-task".into(),
            shards: vec![ShardInfo {
                file: "toy-000000000000feed.shard000.gdb2".into(),
                format: ShardFormat::V2,
                n_entries: 3,
                label: "task:i0".into(),
            }],
        };
        m.save(&root).unwrap();
        assert_eq!(ShardManifest::load(&root, "toy", 0xfeed).unwrap(), Some(m));
        assert_eq!(ShardManifest::load(&root, "other", 1).unwrap(), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unsharded_problem_loads_plain_journal() {
        let root = tmp_root("plain");
        seed_journal(&root, &[rec(0, 1, 1.0)]);
        let (all, report) = load_all(&root, "toy", 0xfeed).unwrap();
        assert_eq!(all.len(), 1);
        assert!(report.is_clean());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn jsonl_shard_format_still_readable() {
        // A manifest may reference v1 shards (pre-migration archives).
        let root = tmp_root("v1shard");
        let entries = vec![rec(0, 1, 1.0), rec(0, 2, 2.0)];
        let file = "toy-000000000000feed.shard000.jsonl".to_string();
        journal::append(&root.join(&file), &entries, &LockOptions::default()).unwrap();
        ShardManifest {
            problem: "toy".into(),
            sig: 0xfeed,
            policy: "window".into(),
            shards: vec![ShardInfo {
                file,
                format: ShardFormat::Jsonl,
                n_entries: 2,
                label: "window:0".into(),
            }],
        }
        .save(&root)
        .unwrap();
        let (all, _) = load_all(&root, "toy", 0xfeed).unwrap();
        assert_eq!(all.len(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }
}
