// GX702 triggering fixture: the conns guard is held across a call whose
// blocking I/O sits two frames down the call graph — invisible to any
// lexical check, caught by the propagated summaries.

fn broadcast(s: &ServerState) {
    let guard = s.conns.lock().unwrap();
    notify_all(s);
    drop(guard);
}

fn notify_all(s: &ServerState) {
    for peer in s.peers() {
        send_frame(peer);
    }
}

fn send_frame(peer: &mut TcpStream) {
    peer.write_all(b"notify").ok();
}
