//! BLAS-like level-1/2/3 kernels.
//!
//! The level-3 `gemm` has both a sequential blocked form and a
//! rayon-parallel form that splits the output by row panels; the parallel
//! form is what the blocked Cholesky uses for its trailing-matrix update,
//! which is where almost all the flops of the LCM covariance factorization
//! live.

use crate::ord::feq;
use crate::Matrix;
use rayon::prelude::*;

/// Cache-friendly block edge for the blocked kernels.
const BLOCK: usize = 64;

/// Number of independent accumulator lanes in [`dot`]. Eight keeps enough
/// parallel chains in flight to cover the floating-add latency and lets the
/// compiler vectorize the reduction.
const DOT_LANES: usize = 8;

/// Dot product `xᵀ y`.
///
/// Reduced over [`DOT_LANES`] independent accumulators instead of one
/// sequential fold: a strict left-to-right sum is a single dependency chain
/// (one multiply-add per add-latency), while independent lanes vectorize
/// and pipeline. The reassociation perturbs the result by a few ulps
/// relative to the sequential sum; every caller in the workspace is
/// tolerance-based. Inputs shorter than one lane block take the sequential
/// tail loop and are bitwise identical to the naive fold.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let xc = x.chunks_exact(DOT_LANES);
    let yc = y.chunks_exact(DOT_LANES);
    let (xt, yt) = (xc.remainder(), yc.remainder());
    let mut acc = [0.0_f64; DOT_LANES];
    for (a, b) in xc.zip(yc) {
        for ((s, &av), &bv) in acc.iter_mut().zip(a).zip(b) {
            *s += av * bv;
        }
    }
    let mut s = ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]));
    for (&av, &bv) in xt.iter().zip(yt) {
        s += av * bv;
    }
    s
}

/// Pre-vectorization [`dot`]: the strict sequential fold the workspace used
/// before the multi-lane reduction. Retained as the baseline for the
/// reference (pre-refactor) modeling paths and the perf benchmarks.
#[inline]
pub fn dot_reference(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y ← y + alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm `‖x‖₂`, with scaling to avoid overflow.
pub fn nrm2(x: &[f64]) -> f64 {
    let amax = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    if feq(amax, 0.0) || !amax.is_finite() {
        return amax;
    }
    let s: f64 = x.iter().map(|v| (v / amax) * (v / amax)).sum();
    amax * s.sqrt()
}

/// `x ← alpha * x`.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// General matrix-vector product `y ← alpha * A x + beta * y`.
pub fn gemv(alpha: f64, a: &Matrix, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.cols(), x.len(), "gemv: A.cols != x.len");
    assert_eq!(a.rows(), y.len(), "gemv: A.rows != y.len");
    for i in 0..a.rows() {
        let row = a.row(i);
        y[i] = beta * y[i] + alpha * dot(row, x);
    }
}

/// Transposed matrix-vector product `y ← alpha * Aᵀ x + beta * y`.
pub fn gemv_t(alpha: f64, a: &Matrix, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.rows(), x.len(), "gemv_t: A.rows != x.len");
    assert_eq!(a.cols(), y.len(), "gemv_t: A.cols != y.len");
    for v in y.iter_mut() {
        *v *= beta;
    }
    for i in 0..a.rows() {
        let row = a.row(i);
        let xi = alpha * x[i];
        axpy(xi, row, y);
    }
}

/// Rank-1 update `A ← A + alpha * x yᵀ`.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut Matrix) {
    assert_eq!(a.rows(), x.len());
    assert_eq!(a.cols(), y.len());
    for i in 0..a.rows() {
        let xi = alpha * x[i];
        axpy(xi, y, a.row_mut(i));
    }
}

/// Sequential blocked general matrix multiply `C ← alpha * A B + beta * C`.
pub fn gemm(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "gemm: inner dims");
    assert_eq!(c.rows(), a.rows(), "gemm: C rows");
    assert_eq!(c.cols(), b.cols(), "gemm: C cols");
    if !feq(beta, 1.0) {
        c.scale(beta);
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    // i-k-j loop order keeps B and C accesses stride-1.
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let arow = &a.row(i)[k0..k1];
                let crow = c.row_mut(i);
                for (kk, &aik) in arow.iter().enumerate() {
                    let aik = alpha * aik;
                    if feq(aik, 0.0) {
                        continue;
                    }
                    let brow = b.row(k0 + kk);
                    for j in 0..n {
                        crow[j] += aik * brow[j];
                    }
                }
            }
        }
    }
}

/// Rayon-parallel `C ← alpha * A B + beta * C`, parallelised over row panels
/// of `C` (each output row depends on one row of `A` only, so panels are
/// independent).
pub fn par_gemm(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "par_gemm: inner dims");
    assert_eq!(c.rows(), a.rows(), "par_gemm: C rows");
    assert_eq!(c.cols(), b.cols(), "par_gemm: C cols");
    let n = c.cols();
    let k = a.cols();
    c.as_mut_slice()
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(i, crow)| {
            if !feq(beta, 1.0) {
                for v in crow.iter_mut() {
                    *v *= beta;
                }
            }
            let arow = a.row(i);
            for k0 in (0..k).step_by(BLOCK) {
                let k1 = (k0 + BLOCK).min(k);
                for (kk, &aik) in arow[k0..k1].iter().enumerate() {
                    let aik = alpha * aik;
                    if feq(aik, 0.0) {
                        continue;
                    }
                    let brow = b.row(k0 + kk);
                    for j in 0..n {
                        crow[j] += aik * brow[j];
                    }
                }
            }
        });
}

/// `C ← alpha * A Bᵀ + beta * C` (sequential).
pub fn gemm_nt(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    assert_eq!(a.cols(), b.cols(), "gemm_nt: inner dims");
    assert_eq!(c.rows(), a.rows());
    assert_eq!(c.cols(), b.rows());
    for i in 0..a.rows() {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for j in 0..b.rows() {
            crow[j] = beta * crow[j] + alpha * dot(arow, b.row(j));
        }
    }
}

/// `C ← alpha * Aᵀ B + beta * C` (sequential).
pub fn gemm_tn(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    assert_eq!(a.rows(), b.rows(), "gemm_tn: inner dims");
    assert_eq!(c.rows(), a.cols());
    assert_eq!(c.cols(), b.cols());
    if !feq(beta, 1.0) {
        c.scale(beta);
    }
    for kk in 0..a.rows() {
        let arow = a.row(kk);
        let brow = b.row(kk);
        for i in 0..a.cols() {
            let aik = alpha * arow[i];
            if feq(aik, 0.0) {
                continue;
            }
            axpy(aik, brow, c.row_mut(i));
        }
    }
}

/// Convenience product returning a fresh matrix `A B`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(1.0, a, b, 0.0, &mut c);
    c
}

/// Convenience parallel product returning a fresh matrix `A B`.
pub fn par_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    par_gemm(1.0, a, b, 0.0, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn arange(r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |i, j| ((i * c + j) % 13) as f64 - 6.0)
    }

    #[test]
    fn dot_matches_reference_fold() {
        let x: Vec<f64> = (0..137)
            .map(|i| ((i * 29 + 3) % 19) as f64 / 7.0 - 1.2)
            .collect();
        let y: Vec<f64> = (0..137)
            .map(|i| ((i * 13 + 5) % 23) as f64 / 9.0 - 1.1)
            .collect();
        let a = dot(&x, &y);
        let b = dot_reference(&x, &y);
        assert!((a - b).abs() <= 1e-12 * (1.0 + b.abs()), "{a} vs {b}");
        // Inputs shorter than one lane block reduce sequentially and match
        // the reference fold bitwise.
        assert_eq!(dot(&x[..5], &y[..5]), dot_reference(&x[..5], &y[..5]));
    }

    #[test]
    fn dot_axpy_nrm2() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn nrm2_avoids_overflow() {
        let big = 1e200;
        let n = nrm2(&[big, big]);
        assert!(n.is_finite());
        assert!((n - big * 2.0_f64.sqrt()).abs() / n < 1e-14);
    }

    #[test]
    fn gemv_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut y = vec![1.0; 3];
        gemv(2.0, &a, &[1.0, 1.0], 1.0, &mut y);
        assert_eq!(y, vec![7.0, 15.0, 23.0]);
        let mut z = vec![0.0; 2];
        gemv_t(1.0, &a, &[1.0, 1.0, 1.0], 0.0, &mut z);
        assert_eq!(z, vec![9.0, 12.0]);
    }

    #[test]
    fn ger_rank1() {
        let mut a = Matrix::zeros(2, 3);
        ger(2.0, &[1.0, 2.0], &[1.0, 0.0, -1.0], &mut a);
        assert_eq!(a.row(0), &[2.0, 0.0, -2.0]);
        assert_eq!(a.row(1), &[4.0, 0.0, -4.0]);
    }

    #[test]
    fn gemm_matches_naive_nonsquare() {
        let a = arange(7, 130);
        let b = arange(130, 5);
        let c = matmul(&a, &b);
        let r = naive_matmul(&a, &b);
        let maxdiff = c
            .as_slice()
            .iter()
            .zip(r.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(maxdiff < 1e-10);
    }

    #[test]
    fn par_gemm_matches_gemm() {
        let a = arange(97, 71);
        let b = arange(71, 83);
        let c1 = matmul(&a, &b);
        let c2 = par_matmul(&a, &b);
        assert_eq!(c1, c2);
    }

    #[test]
    fn gemm_beta_accumulates() {
        let a = Matrix::identity(3);
        let b = Matrix::filled(3, 3, 2.0);
        let mut c = Matrix::filled(3, 3, 1.0);
        gemm(1.0, &a, &b, 3.0, &mut c);
        assert_eq!(c.get(0, 0), 5.0);
    }

    #[test]
    fn gemm_nt_and_tn_match_naive() {
        let a = arange(6, 9);
        let b = arange(4, 9); // for nt: C = A Bᵀ is 6x4
        let mut c = Matrix::zeros(6, 4);
        gemm_nt(1.0, &a, &b, 0.0, &mut c);
        let r = naive_matmul(&a, &b.transpose());
        assert_eq!(c, r);

        let a2 = arange(9, 6);
        let b2 = arange(9, 4);
        let mut c2 = Matrix::zeros(6, 4);
        gemm_tn(1.0, &a2, &b2, 0.0, &mut c2);
        let r2 = naive_matmul(&a2.transpose(), &b2);
        assert_eq!(c2, r2);
    }

    #[test]
    #[should_panic]
    fn gemm_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut c = Matrix::zeros(2, 3);
        gemm(1.0, &a, &b, 0.0, &mut c);
    }
}
