//! Per-tenant SLO accounting.
//!
//! This is the one serve module allowed to mint dynamically-formatted
//! metric names (GX602 carries a lint.toml allow for it): tenant names
//! are caller-chosen strings, so the `gptune.serve.tenant.<tenant>.*`
//! families are inherently dynamic. Cardinality is bounded by the set of
//! tenants admitted through the session table — the same set the
//! in-flight map already keys on — not by request volume.
//!
//! Three counters per tenant, each with lifetime and windowed views:
//!
//! - `…requests` — completed requests attributed to the tenant,
//! - `…over_budget` — requests whose handling latency exceeded
//!   [`crate::ServeOptions::latency_budget`],
//! - `…sheds` — requests rejected with the typed `overloaded` error.
//!
//! Together they give per-tenant SLO attainment straight off a `metrics`
//! scrape: `1 - over_budget/requests` within budget, shed rate, etc.

use crate::protocol::{error_code, CODE_OVERLOADED};
use gptune_db::json::Json;
use gptune_trace::Tracer;
use std::time::Duration;

/// Records one completed request against `tenant`'s SLO ledger.
pub(crate) fn record(
    tracer: &Tracer,
    tenant: &str,
    micros: u64,
    budget: Duration,
    response: &Json,
) {
    tracer
        .counter(&format!("gptune.serve.tenant.{tenant}.requests"))
        .add(1);
    if u128::from(micros) > budget.as_micros() {
        tracer
            .counter(&format!("gptune.serve.tenant.{tenant}.over_budget"))
            .add(1);
    }
    if error_code(response).as_deref() == Some(CODE_OVERLOADED) {
        tracer
            .counter(&format!("gptune.serve.tenant.{tenant}.sheds"))
            .add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{err_with_code, ok_response};

    #[test]
    fn slo_ledger_splits_requests_over_budget_and_sheds() {
        let tracer = Tracer::ring(64);
        let budget = Duration::from_millis(1);
        let ok = ok_response(vec![]);
        record(&tracer, "acme", 500, budget, &ok); // in budget
        record(&tracer, "acme", 5_000, budget, &ok); // over budget
        let shed = err_with_code(CODE_OVERLOADED, "cap", 10);
        record(&tracer, "acme", 10, budget, &shed);
        let snap = tracer.metrics();
        assert_eq!(snap.counter("gptune.serve.tenant.acme.requests"), Some(3));
        assert_eq!(
            snap.counter("gptune.serve.tenant.acme.over_budget"),
            Some(1)
        );
        assert_eq!(snap.counter("gptune.serve.tenant.acme.sheds"), Some(1));
        // Another tenant's ledger is untouched.
        assert_eq!(snap.counter("gptune.serve.tenant.beta.requests"), None);
    }
}
