//! Deterministic protocol-level fault injection.
//!
//! [`ChaosProxy`] sits between a [`crate::ServeClient`] and a server as a
//! frame-aware TCP relay: it reads whole request frames, decides per
//! frame — from a seeded [`FaultSpec`], never a clock or OS entropy —
//! whether to forward, tear, reset, oversize, delay, or duplicate, and
//! relays the response back. Because the schedule is a pure function of
//! `(seed, connection index, frame index)`, a chaos run is replayable:
//! the same seed injects the same faults at the same protocol positions.
//!
//! The proxy exists to *prove* the robustness claims, not to simulate
//! load: suites drive a tuning session through it and assert zero lost
//! reports and bit-identical history against an unfaulted run.

use crate::protocol::{read_frame, write_frame, MAX_FRAME};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The seeded fault schedule. Each `*_every` is a per-connection period:
/// `0` disables the fault, `n` fires it on every `n`-th request frame of
/// a connection, phase-shifted by a hash of the seed and the connection
/// index so different connections fault at different positions. When
/// several faults land on one frame, the most destructive wins
/// (reset > tear > oversize > duplicate > delay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed for the deterministic schedule (phase of each period).
    pub seed: u64,
    /// Close both sides mid-conversation (connection reset).
    pub reset_every: u64,
    /// Forward only half the frame, then close (mid-frame EOF upstream).
    pub tear_every: u64,
    /// Send a length word beyond [`MAX_FRAME`] (framing attack).
    pub oversize_every: u64,
    /// Forward the request twice (at-least-once delivery).
    pub duplicate_every: u64,
    /// Stall the frame by [`FaultSpec::delay_ms`] before forwarding.
    pub delay_every: u64,
    /// Stall length for delayed frames.
    pub delay_ms: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            reset_every: 0,
            tear_every: 0,
            oversize_every: 0,
            duplicate_every: 0,
            delay_every: 0,
            delay_ms: 5,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    Forward,
    Reset,
    Tear,
    Oversize,
    Duplicate,
    Delay,
}

/// splitmix64 — the repo's standard cheap bit mixer (also used for the
/// client's deterministic backoff jitter).
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultSpec {
    /// The fault for request frame `frame` of connection `conn` — a pure
    /// function, so schedules replay exactly.
    fn fault_at(&self, conn: u64, frame: u64) -> Fault {
        let hits = |every: u64, tag: u64| {
            every > 0 && (frame + mix(self.seed ^ tag ^ conn.wrapping_mul(0x9e3779b9))) % every == 0
        };
        if hits(self.reset_every, 0x5245) {
            Fault::Reset
        } else if hits(self.tear_every, 0x5445) {
            Fault::Tear
        } else if hits(self.oversize_every, 0x4f56) {
            Fault::Oversize
        } else if hits(self.duplicate_every, 0x4455) {
            Fault::Duplicate
        } else if hits(self.delay_every, 0x444c) {
            Fault::Delay
        } else {
            Fault::Forward
        }
    }
}

/// Injected-fault tallies, snapshotted via [`ChaosProxy::counts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Request frames relayed unharmed (delayed/duplicated count here too).
    pub forwarded: u64,
    pub resets: u64,
    pub torn: u64,
    pub oversized: u64,
    pub duplicated: u64,
    pub delayed: u64,
}

#[derive(Default)]
struct AtomicCounts {
    forwarded: AtomicU64,
    resets: AtomicU64,
    torn: AtomicU64,
    oversized: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
}

struct ProxyState {
    target: SocketAddr,
    spec: FaultSpec,
    stop: AtomicBool,
    conn_seq: AtomicU64,
    conns: Mutex<Vec<TcpStream>>,
    counts: AtomicCounts,
}

/// A frame-aware fault-injecting relay in front of a serve endpoint.
/// Point a client at [`ChaosProxy::local_addr`]; each inbound connection
/// gets its own upstream connection to the target and its own relay
/// thread.
pub struct ChaosProxy {
    addr: SocketAddr,
    state: Arc<ProxyState>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port relaying to `target` under `spec`.
    pub fn launch(target: SocketAddr, spec: FaultSpec) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ProxyState {
            target,
            spec,
            stop: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            counts: AtomicCounts::default(),
        });
        let accept_state = Arc::clone(&state);
        let acceptor = std::thread::Builder::new()
            .name("gptune-chaos-proxy".into())
            .spawn(move || accept_loop(&listener, &accept_state))
            .expect("spawn chaos acceptor");
        Ok(ChaosProxy {
            addr,
            state,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of how many faults of each kind have been injected.
    pub fn counts(&self) -> FaultCounts {
        let c = &self.state.counts;
        FaultCounts {
            forwarded: c.forwarded.load(Ordering::Relaxed),
            resets: c.resets.load(Ordering::Relaxed),
            torn: c.torn.load(Ordering::Relaxed),
            oversized: c.oversized.load(Ordering::Relaxed),
            duplicated: c.duplicated.load(Ordering::Relaxed),
            delayed: c.delayed.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, severs every relayed connection, and joins.
    pub fn shutdown(mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Take the registry out of the lock before severing: shutdown()
        // can block on a wedged peer and no guard may be held across it
        // (GX702).
        let conns = std::mem::take(&mut *self.state.conns.lock().unwrap());
        for c in &conns {
            let _ = c.shutdown(Shutdown::Both);
        }
        // Unblock the acceptor; the poke socket is deadline-armed like
        // every other serve-side socket (GX303).
        if let Ok(poke) = TcpStream::connect(self.addr) {
            let _ = poke.set_read_timeout(Some(Duration::from_secs(1)));
            let _ = poke.set_write_timeout(Some(Duration::from_secs(1)));
        }
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ProxyState>) {
    let mut relays = Vec::new();
    loop {
        let client = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => break,
        };
        let _ = client.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = client.set_write_timeout(Some(Duration::from_secs(30)));
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let conn_id = state.conn_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = client.try_clone() {
            state.conns.lock().unwrap().push(clone);
        }
        let relay_state = Arc::clone(state);
        relays.push(
            std::thread::Builder::new()
                .name(format!("gptune-chaos-relay-{conn_id}"))
                .spawn(move || {
                    let _ = relay_conn(client, conn_id, &relay_state);
                })
                .expect("spawn chaos relay"),
        );
    }
    for t in relays {
        let _ = t.join();
    }
}

/// Relays one client connection, injecting the scheduled fault per
/// request frame. Strict request/response alternation lets the relay
/// stay single-threaded per connection.
fn relay_conn(mut client: TcpStream, conn_id: u64, state: &Arc<ProxyState>) -> io::Result<()> {
    let mut server = TcpStream::connect(state.target)?;
    let _ = server.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = server.set_write_timeout(Some(Duration::from_secs(30)));
    if let Ok(clone) = server.try_clone() {
        state.conns.lock().unwrap().push(clone);
    }
    let mut frame_idx = 0u64;
    loop {
        let request = match read_frame(&mut client) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => {
                let _ = server.shutdown(Shutdown::Both);
                return Ok(());
            }
        };
        let fault = state.spec.fault_at(conn_id, frame_idx);
        frame_idx += 1;
        match fault {
            Fault::Reset => {
                state.counts.resets.fetch_add(1, Ordering::Relaxed);
                let _ = client.shutdown(Shutdown::Both);
                let _ = server.shutdown(Shutdown::Both);
                return Ok(());
            }
            Fault::Tear => {
                // Real length word, half the payload: the server sees a
                // mid-frame EOF, the client a dead connection.
                state.counts.torn.fetch_add(1, Ordering::Relaxed);
                let len = (request.len() as u32).to_be_bytes();
                let _ = server
                    .write_all(&len)
                    .and_then(|()| server.write_all(&request[..request.len() / 2]))
                    .and_then(|()| server.flush());
                let _ = client.shutdown(Shutdown::Both);
                let _ = server.shutdown(Shutdown::Both);
                return Ok(());
            }
            Fault::Oversize => {
                // A length word past the cap: the server must refuse the
                // frame rather than allocate unboundedly.
                state.counts.oversized.fetch_add(1, Ordering::Relaxed);
                let bogus = ((MAX_FRAME as u32) + 1).to_be_bytes();
                let _ = server.write_all(&bogus).and_then(|()| server.flush());
                let _ = client.shutdown(Shutdown::Both);
                let _ = server.shutdown(Shutdown::Both);
                return Ok(());
            }
            Fault::Duplicate => {
                state.counts.duplicated.fetch_add(1, Ordering::Relaxed);
                state.counts.forwarded.fetch_add(1, Ordering::Relaxed);
                write_frame(&mut server, &request)?;
                write_frame(&mut server, &request)?;
                // Relay the first response; swallow the second so the
                // client still sees strict alternation.
                if !relay_response(&mut server, &mut client)? {
                    return Ok(());
                }
                if read_frame(&mut server)?.is_none() {
                    let _ = client.shutdown(Shutdown::Both);
                    return Ok(());
                }
            }
            Fault::Delay => {
                state.counts.delayed.fetch_add(1, Ordering::Relaxed);
                state.counts.forwarded.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(state.spec.delay_ms));
                write_frame(&mut server, &request)?;
                if !relay_response(&mut server, &mut client)? {
                    return Ok(());
                }
            }
            Fault::Forward => {
                state.counts.forwarded.fetch_add(1, Ordering::Relaxed);
                write_frame(&mut server, &request)?;
                if !relay_response(&mut server, &mut client)? {
                    return Ok(());
                }
            }
        }
    }
}

/// Relays one response frame server→client. Returns `false` when either
/// side is gone (the caller ends the relay).
fn relay_response(server: &mut impl Read, client: &mut TcpStream) -> io::Result<bool> {
    match read_frame(server) {
        Ok(Some(resp)) => {
            write_frame(client, &resp)?;
            Ok(true)
        }
        Ok(None) | Err(_) => {
            let _ = client.shutdown(Shutdown::Both);
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_json, write_json, Request};
    use crate::server::{serve, ServeOptions};

    fn start_server() -> crate::server::ServerHandle {
        serve(
            "127.0.0.1:0",
            ServeOptions {
                workers: 2,
                ..ServeOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn schedules_are_deterministic_and_seed_sensitive() {
        let spec = FaultSpec {
            seed: 42,
            reset_every: 5,
            tear_every: 7,
            duplicate_every: 3,
            ..FaultSpec::default()
        };
        let a: Vec<Fault> = (0..64).map(|f| spec.fault_at(1, f)).collect();
        let b: Vec<Fault> = (0..64).map(|f| spec.fault_at(1, f)).collect();
        assert_eq!(a, b, "schedule must replay");
        let other = FaultSpec { seed: 43, ..spec };
        let c: Vec<Fault> = (0..64).map(|f| other.fault_at(1, f)).collect();
        assert_ne!(a, c, "seed must move the schedule");
        // Each enabled fault fires at its period somewhere in the window.
        assert!(a.contains(&Fault::Reset));
        assert!(a.iter().filter(|f| **f == Fault::Duplicate).count() >= 64 / 3 / 2);
        // Disabled faults never fire.
        assert!(!a.contains(&Fault::Oversize));
        assert!(!a.contains(&Fault::Delay));
    }

    #[test]
    fn clean_proxy_is_transparent() {
        let server = start_server();
        let proxy = ChaosProxy::launch(server.local_addr(), FaultSpec::default()).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        for _ in 0..3 {
            write_json(&mut c, &Request::Ping.to_json()).unwrap();
            let resp = read_json(&mut c).unwrap().expect("response through proxy");
            assert!(crate::protocol::is_ok(&resp));
        }
        assert_eq!(proxy.counts().forwarded, 3);
        assert_eq!(proxy.counts().resets, 0);
        proxy.shutdown();
        server.shutdown();
    }

    /// Regression test for the GX702 teardown fix: proxy shutdown used to
    /// sever relayed connections while holding the registry lock, so a
    /// relay thread registering its next connection could deadlock the
    /// teardown. The fixed path takes the registry first and severs
    /// outside the lock.
    #[test]
    fn shutdown_severs_outside_the_registry_lock() {
        let server = start_server();
        let proxy = ChaosProxy::launch(server.local_addr(), FaultSpec::default()).unwrap();
        let state = Arc::clone(&proxy.state);
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        write_json(&mut c, &Request::Ping.to_json()).unwrap();
        read_json(&mut c).unwrap().expect("response through proxy");
        let blocker = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let guard = state.conns.lock().unwrap();
                std::thread::sleep(Duration::from_millis(50));
                drop(guard);
            })
        };
        proxy.shutdown();
        blocker.join().unwrap();
        assert!(
            state.conns.lock().unwrap().is_empty(),
            "teardown must take the registry, not iterate it in place"
        );
        server.shutdown();
    }

    #[test]
    fn reset_tear_and_oversize_kill_the_connection_but_not_the_server() {
        let server = start_server();
        for spec in [
            FaultSpec {
                reset_every: 1,
                ..FaultSpec::default()
            },
            FaultSpec {
                tear_every: 1,
                ..FaultSpec::default()
            },
            FaultSpec {
                oversize_every: 1,
                ..FaultSpec::default()
            },
        ] {
            let proxy = ChaosProxy::launch(server.local_addr(), spec).unwrap();
            let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
            let dead = write_json(&mut c, &Request::Ping.to_json())
                .and_then(|()| read_json(&mut c))
                .map(|r| r.is_none());
            assert!(matches!(dead, Ok(true) | Err(_)), "fault must surface");
            let counts = proxy.counts();
            assert_eq!(
                counts.resets + counts.torn + counts.oversized,
                1,
                "{counts:?}"
            );
            proxy.shutdown();
            // The server is still healthy for direct clients.
            let mut direct = TcpStream::connect(server.local_addr()).unwrap();
            write_json(&mut direct, &Request::Ping.to_json()).unwrap();
            assert!(crate::protocol::is_ok(
                &read_json(&mut direct).unwrap().unwrap()
            ));
        }
        server.shutdown();
    }

    #[test]
    fn duplicates_and_delays_stay_transparent_to_the_client() {
        let server = start_server();
        let proxy = ChaosProxy::launch(
            server.local_addr(),
            FaultSpec {
                duplicate_every: 1,
                delay_every: 0,
                ..FaultSpec::default()
            },
        )
        .unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        for _ in 0..3 {
            write_json(&mut c, &Request::Ping.to_json()).unwrap();
            let resp = read_json(&mut c)
                .unwrap()
                .expect("one response per request");
            assert!(crate::protocol::is_ok(&resp));
        }
        assert_eq!(proxy.counts().duplicated, 3);
        proxy.shutdown();

        let proxy = ChaosProxy::launch(
            server.local_addr(),
            FaultSpec {
                delay_every: 1,
                delay_ms: 2,
                ..FaultSpec::default()
            },
        )
        .unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        write_json(&mut c, &Request::Ping.to_json()).unwrap();
        assert!(read_json(&mut c).unwrap().is_some());
        assert_eq!(proxy.counts().delayed, 1);
        proxy.shutdown();
        server.shutdown();
    }
}
