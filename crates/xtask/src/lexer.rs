//! Lossless-enough Rust tokenizer for the lint rules.
//!
//! The engine needs token streams with line numbers, with comments and
//! string/char contents *excluded* from the significant-token stream (so
//! a `"partial_cmp"` inside a string literal never trips a rule) but with
//! comments *retained* on the side (so `// SAFETY:` justifications can be
//! verified). A full AST is deliberately out of scope: the rules are
//! pattern checks over token shapes, which a hand-rolled lexer covers
//! without pulling `syn`/`proc-macro2` into an otherwise offline build.
//!
//! Handled: line/doc comments, nested block comments, cooked and raw
//! string literals (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`),
//! char literals vs. lifetimes, integer vs. float literals (including
//! exponents and `f32`/`f64` suffixes), and single-char punctuation.

/// Kind of one significant token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (text retained for matching).
    Ident(String),
    /// Lifetime such as `'a` (text not needed by any rule).
    Lifetime,
    /// Integer literal.
    Int,
    /// Float literal: has a fraction, an exponent, or an `f32`/`f64`
    /// suffix. `1.max(2)` stays an `Int` (method call on an integer).
    Float,
    /// String literal of any flavour; body retained verbatim (escapes
    /// uninterpreted) for the metric-name taxonomy rule.
    Str(String),
    /// Char or byte literal; contents dropped.
    Char,
    /// One punctuation character (`==` arrives as two adjacent `=`).
    Punct(char),
}

/// One significant token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

impl Token {
    /// Identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Tok::Punct(c)
    }

    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, Tok::Ident(t) if t == s)
    }

    /// The string literal's body, when the token is one.
    pub fn str_body(&self) -> Option<&str> {
        match &self.kind {
            Tok::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// A comment with its starting line. Block comments keep interior
/// newlines, so `lines_spanned` reports their full extent.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

impl Comment {
    /// Number of source lines the comment covers (1 for line comments).
    pub fn lines_spanned(&self) -> u32 {
        1 + self.text.bytes().filter(|&b| b == b'\n').count() as u32
    }
}

/// Tokenizer output: significant tokens plus side-channel comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Unterminated constructs (mid-edit files) are closed
/// at end of input rather than reported — the lint gate runs on committed
/// code, where rustc has already rejected malformed syntax.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: Tok, line: u32) {
        self.out.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.cooked_string(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident_or_prefixed_literal(),
                _ => {
                    // Multi-byte UTF-8 only occurs inside strings/comments
                    // in real Rust source; treat stray bytes as punctuation.
                    self.bump();
                    self.push(Tok::Punct(b as char), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment { line, text });
    }

    /// A cooked (escaped) string body, starting at the opening quote. The
    /// body is retained verbatim (escapes uninterpreted) — the metric-name
    /// taxonomy rule (GX602) matches on literal contents.
    fn cooked_string(&mut self) {
        let line = self.line;
        self.bump(); // opening `"`
        let start = self.pos;
        let mut end;
        loop {
            end = self.pos;
            match self.bump() {
                Some(b'\\') => {
                    self.bump();
                }
                Some(b'"') | None => break,
                Some(_) => {}
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.push(Tok::Str(text), line);
    }

    /// A raw string body, starting at the `r`-prefix hashes: `#*"…"#*`.
    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening `"`
        let start = self.pos;
        let mut end;
        loop {
            end = self.pos;
            match self.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
                None => {
                    end = self.pos;
                    break;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.push(Tok::Str(text), line);
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal):
    /// a quote is a char literal iff a closing quote follows the single
    /// (possibly escaped) character.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // opening `'`
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump();
                self.bump(); // escape selector (enough for \u too: loop below)
                while let Some(b) = self.bump() {
                    if b == b'\'' {
                        break;
                    }
                }
                self.push(Tok::Char, line);
            }
            Some(b) if is_ident_char(b) => {
                if self.peek(1) == Some(b'\'') {
                    // 'x'
                    self.bump();
                    self.bump();
                    self.push(Tok::Char, line);
                } else {
                    // Lifetime: consume the identifier characters.
                    while matches!(self.peek(0), Some(c) if is_ident_char(c)) {
                        self.bump();
                    }
                    self.push(Tok::Lifetime, line);
                }
            }
            Some(_) => {
                // Punctuation or multi-byte char literal: scan to the
                // closing quote (multi-byte chars cannot contain `'`).
                while let Some(b) = self.bump() {
                    if b == b'\'' {
                        break;
                    }
                }
                self.push(Tok::Char, line);
            }
            None => self.push(Tok::Punct('\''), line),
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut float = false;
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            // Radix literal: hex/octal/binary, always an integer.
            self.bump();
            self.bump();
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.bump();
            }
            self.push(Tok::Int, line);
            return;
        }
        self.digits();
        // A fraction only when the dot is followed by a digit or ends the
        // expression (`1.`): `1..2` is a range, `1.max(2)` a method call.
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(b'0'..=b'9') => {
                    float = true;
                    self.bump();
                    self.digits();
                }
                Some(b'.') => {}                  // range: `1..n`
                Some(c) if is_ident_char(c) => {} // method: `1.max(n)`
                _ => {
                    float = true;
                    self.bump(); // trailing dot: `1.`
                }
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let sign = matches!(self.peek(1), Some(b'+' | b'-')) as usize;
            if matches!(self.peek(1 + sign), Some(b'0'..=b'9')) {
                float = true;
                self.bump();
                if sign == 1 {
                    self.bump();
                }
                self.digits();
            }
        }
        // Type suffix (`1.0f64`, `3u32`).
        let sfx_start = self.pos;
        while matches!(self.peek(0), Some(c) if is_ident_char(c)) {
            self.bump();
        }
        let suffix = &self.src[sfx_start..self.pos];
        if suffix == b"f32" || suffix == b"f64" {
            float = true;
        }
        self.push(if float { Tok::Float } else { Tok::Int }, line);
    }

    fn digits(&mut self) {
        while matches!(self.peek(0), Some(b'0'..=b'9' | b'_')) {
            self.bump();
        }
    }

    /// An identifier, or a string literal carrying an identifier prefix
    /// (`r"…"`, `b'…'`, `br#"…"#`, `c"…"`, …).
    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let start = self.pos;
        while matches!(self.peek(0), Some(c) if is_ident_char(c)) {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        let raw = matches!(text, b"r" | b"br" | b"cr" | b"rb");
        let cookable = matches!(text, b"b" | b"c");
        match self.peek(0) {
            Some(b'"') if raw || cookable => {
                if raw {
                    self.raw_string(line);
                } else {
                    self.cooked_string();
                }
            }
            Some(b'#') if raw && self.raw_hashes_then_quote() => self.raw_string(line),
            Some(b'\'') if text == b"b" => {
                self.char_or_lifetime();
            }
            _ => {
                let s = String::from_utf8_lossy(text).into_owned();
                self.push(Tok::Ident(s), line);
            }
        }
    }

    /// True when the bytes ahead are `#`+ followed by `"` (a raw-string
    /// opener, as opposed to `r#keyword` raw identifiers).
    fn raw_hashes_then_quote(&self) -> bool {
        let mut k = 0usize;
        while self.peek(k) == Some(b'#') {
            k += 1;
        }
        k > 0 && self.peek(k) == Some(b'"')
    }
}

fn is_ident_char(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("let x = a.b(1);");
        assert_eq!(
            ks,
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Punct('='),
                Tok::Ident("a".into()),
                Tok::Punct('.'),
                Tok::Ident("b".into()),
                Tok::Punct('('),
                Tok::Int,
                Tok::Punct(')'),
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn float_vs_int_vs_range_vs_method() {
        assert_eq!(kinds("1.0"), vec![Tok::Float]);
        assert_eq!(kinds("1e-3"), vec![Tok::Float]);
        assert_eq!(kinds("1f64"), vec![Tok::Float]);
        assert_eq!(kinds("0x1f"), vec![Tok::Int]);
        assert_eq!(
            kinds("1..2"),
            vec![Tok::Int, Tok::Punct('.'), Tok::Punct('.'), Tok::Int]
        );
        assert_eq!(
            kinds("1.max(2)"),
            vec![
                Tok::Int,
                Tok::Punct('.'),
                Tok::Ident("max".into()),
                Tok::Punct('('),
                Tok::Int,
                Tok::Punct(')'),
            ]
        );
    }

    #[test]
    fn strings_keep_their_body_as_one_token() {
        // One Str token per literal — the rules never see into a string as
        // punctuation/idents — but the body itself is retained for GX602.
        assert_eq!(
            kinds(r#"("partial_cmp")"#),
            vec![
                Tok::Punct('('),
                Tok::Str("partial_cmp".into()),
                Tok::Punct(')')
            ]
        );
        assert_eq!(
            kinds(r##"r#"un"wrap"#"##),
            vec![Tok::Str("un\"wrap".into())]
        );
        assert_eq!(kinds(r#"b"bytes""#), vec![Tok::Str("bytes".into())]);
        // Escapes are kept verbatim, not interpreted.
        assert_eq!(
            kinds("\"esc \\\" quote\""),
            vec![Tok::Str("esc \\\" quote".into())]
        );
        assert_eq!(
            kinds("\"unterminated"),
            vec![Tok::Str("unterminated".into())]
        );
    }

    #[test]
    fn chars_and_lifetimes() {
        assert_eq!(kinds("'a'"), vec![Tok::Char]);
        assert_eq!(kinds(r"'\n'"), vec![Tok::Char]);
        assert_eq!(kinds(r"'\''"), vec![Tok::Char]);
        assert_eq!(
            kinds("&'a str"),
            vec![Tok::Punct('&'), Tok::Lifetime, Tok::Ident("str".into())]
        );
        assert_eq!(kinds("b'x'"), vec![Tok::Char]);
    }

    #[test]
    fn comments_are_side_channel() {
        let out = lex("a // SAFETY: fine\nb /* block\nstill */ c");
        let idents: Vec<_> = out.tokens.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
        assert_eq!(out.comments.len(), 2);
        assert!(out.comments[0].text.contains("SAFETY"));
        assert_eq!(out.comments[1].lines_spanned(), 2);
        assert_eq!(out.tokens[2].line, 3, "token after block comment");
    }

    #[test]
    fn raw_identifier_is_not_a_string() {
        assert_eq!(
            kinds("r#fn"),
            vec![
                Tok::Ident("r".into()),
                Tok::Punct('#'),
                Tok::Ident("fn".into())
            ]
        );
        // (good enough: `r#fn` never matches a lint pattern either way)
    }

    #[test]
    fn line_numbers() {
        let out = lex("a\nb\n\nc");
        let lines: Vec<_> = out.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
