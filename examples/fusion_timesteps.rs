//! The fusion-code workflow of paper Sec. 6.5: production M3D_C1/NIMROD
//! simulations need hundreds of time steps, far too expensive to tune
//! directly — so MLA mixes cheap few-step tasks with one expensive task,
//! finds the (step-independent) optimal solver options, and the result
//! transfers to the production run.
//!
//! Run with:
//! ```text
//! cargo run --release --example fusion_timesteps
//! ```

use gptune::apps::{HpcApp, M3dc1App, MachineModel};
use gptune::core::{mla, runlog, MlaOptions};
use gptune::problem_from_app;
use gptune::space::Value;
use std::sync::Arc;

fn main() {
    let app: Arc<dyn HpcApp> = Arc::new(M3dc1App::new(MachineModel::cori(1)));

    // Multitask: three 1-step tasks plus one 3-step task (the paper's
    // t = 1, 1, 1, 3 setting), ε_tot = 20.
    let tasks: Vec<Vec<Value>> = vec![
        vec![Value::Int(1)],
        vec![Value::Int(1)],
        vec![Value::Int(1)],
        vec![Value::Int(3)],
    ];
    let problem = problem_from_app(Arc::clone(&app), tasks);
    let mut opts = MlaOptions::default().with_budget(20).with_seed(33);
    opts.lcm.n_starts = 3;

    println!("M3D_C1 multitask tuning on cheap step counts (t = 1,1,1,3; ε_tot = 20)\n");
    let result = mla::tune(&problem, &opts);
    print!("{}", runlog::format_mla(&problem, &result));

    // Deploy: evaluate the discovered configuration on a production-scale
    // run (200 steps) and compare with the library default.
    let best_cfg = &result.per_task[3].best_config;
    let production = vec![Value::Int(200)];
    let tuned = app.evaluate(&production, best_cfg, 0)[0];
    let default_cfg = app.default_config().unwrap();
    let default = app.evaluate(&production, &default_cfg, 0)[0];

    println!("\nproduction run (200 time steps):");
    println!(
        "  default : {:>10.1}s   {}",
        default,
        problem.tuning_space.format_config(&default_cfg)
    );
    println!(
        "  tuned   : {:>10.1}s   {}",
        tuned,
        problem.tuning_space.format_config(best_cfg)
    );
    println!(
        "  improvement: {:.1}% (paper reports 15–20% over default)",
        100.0 * (1.0 - tuned / default)
    );
    println!(
        "\ntotal tuning cost: {:.0} simulated seconds — a fraction of one production run",
        result.stats.objective_virtual_secs
    );
}
