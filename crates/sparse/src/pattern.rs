//! Symmetric sparsity patterns and generators.

/// A symmetric sparsity pattern in compressed form.
///
/// Stores, for every row, the sorted column indices of its nonzeros
/// *excluding* the diagonal (which is implicitly present — the matrices of
/// interest are structurally SPD-like). Symmetry is an invariant: `j ∈
/// row(i)` iff `i ∈ row(j)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsePattern {
    /// Adjacency lists (sorted, diagonal-free, symmetric).
    adj: Vec<Vec<usize>>,
}

impl SparsePattern {
    /// Builds a pattern from undirected edges `(i, j)`, deduplicating and
    /// ignoring self-loops.
    ///
    /// # Panics
    /// Panics if an endpoint is `≥ n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> SparsePattern {
        let mut adj = vec![Vec::new(); n];
        for &(i, j) in edges {
            assert!(i < n && j < n, "edge ({i},{j}) out of bounds (n={n})");
            if i == j {
                continue;
            }
            adj[i].push(j);
            adj[j].push(i);
        }
        for row in &mut adj {
            row.sort_unstable();
            row.dedup();
        }
        SparsePattern { adj }
    }

    /// Dimension `n`.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of stored off-diagonal nonzeros (both triangles).
    pub fn nnz_offdiag(&self) -> usize {
        self.adj.iter().map(|r| r.len()).sum()
    }

    /// Total structural nonzeros including the diagonal.
    pub fn nnz(&self) -> usize {
        self.nnz_offdiag() + self.n()
    }

    /// Neighbors of `i` (sorted, diagonal-free).
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Applies a permutation: `perm[k]` is the *original* index placed at
    /// position `k` (i.e. the new label of original vertex `perm[k]` is
    /// `k`). Returns the relabelled pattern.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn permute(&self, perm: &[usize]) -> SparsePattern {
        let n = self.n();
        assert_eq!(perm.len(), n, "permute: wrong length");
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(
                old < n && inv[old] == usize::MAX,
                "permute: not a permutation"
            );
            inv[old] = new;
        }
        let mut adj = vec![Vec::new(); n];
        for (new, &old) in perm.iter().enumerate() {
            adj[new] = self.adj[old].iter().map(|&v| inv[v]).collect();
            adj[new].sort_unstable();
        }
        SparsePattern { adj }
    }

    /// 5-point 2-D grid Laplacian pattern on an `nx × ny` grid.
    pub fn grid2d(nx: usize, ny: usize) -> SparsePattern {
        let idx = |x: usize, y: usize| y * nx + x;
        let mut edges = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < ny {
                    edges.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
        SparsePattern::from_edges(nx * ny, &edges)
    }

    /// Random geometric graph: `n` points in the unit cube, connected when
    /// within `radius` — the structure of electronic-structure /
    /// atoms-in-a-box matrices like the PARSEC group. Deterministic per
    /// seed. Uses a spatial hash so construction is near-linear.
    pub fn geometric(n: usize, radius: f64, seed: u64) -> SparsePattern {
        assert!(n > 0 && radius > 0.0);
        // Deterministic low-quality RNG (splitmix64) is plenty here.
        let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut next = || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        let pts: Vec<[f64; 3]> = (0..n).map(|_| [next(), next(), next()]).collect();

        // Spatial hash with cell size = radius.
        let cells_per_dim = (1.0 / radius).floor().max(1.0) as usize;
        let cell_of = |p: &[f64; 3]| {
            let c = |v: f64| ((v * cells_per_dim as f64) as usize).min(cells_per_dim - 1);
            (c(p[0]), c(p[1]), c(p[2]))
        };
        let mut buckets: std::collections::HashMap<(usize, usize, usize), Vec<usize>> =
            std::collections::HashMap::new();
        for (i, p) in pts.iter().enumerate() {
            buckets.entry(cell_of(p)).or_default().push(i);
        }
        let r2 = radius * radius;
        let mut edges = Vec::new();
        for (i, p) in pts.iter().enumerate() {
            let (cx, cy, cz) = cell_of(p);
            for dx in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dz in -1i64..=1 {
                        let nx = cx as i64 + dx;
                        let ny = cy as i64 + dy;
                        let nz = cz as i64 + dz;
                        if nx < 0 || ny < 0 || nz < 0 {
                            continue;
                        }
                        let key = (nx as usize, ny as usize, nz as usize);
                        let Some(neigh) = buckets.get(&key) else {
                            continue;
                        };
                        for &j in neigh {
                            if j <= i {
                                continue;
                            }
                            let q = &pts[j];
                            let d2 = (p[0] - q[0]).powi(2)
                                + (p[1] - q[1]).powi(2)
                                + (p[2] - q[2]).powi(2);
                            if d2 <= r2 {
                                edges.push((i, j));
                            }
                        }
                    }
                }
            }
        }
        SparsePattern::from_edges(n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_symmetrizes() {
        let p = SparsePattern::from_edges(4, &[(0, 1), (1, 0), (0, 1), (2, 2), (1, 3)]);
        assert_eq!(p.neighbors(0), &[1]);
        assert_eq!(p.neighbors(1), &[0, 3]);
        assert_eq!(p.neighbors(2), &[] as &[usize]);
        assert_eq!(p.nnz_offdiag(), 4);
        assert_eq!(p.nnz(), 8);
    }

    #[test]
    fn grid2d_degrees() {
        let p = SparsePattern::grid2d(3, 3);
        assert_eq!(p.n(), 9);
        // Corner has 2 neighbors, edge 3, centre 4.
        assert_eq!(p.neighbors(0).len(), 2);
        assert_eq!(p.neighbors(1).len(), 3);
        assert_eq!(p.neighbors(4).len(), 4);
        // Symmetry.
        for i in 0..9 {
            for &j in p.neighbors(i) {
                assert!(p.neighbors(j).contains(&i));
            }
        }
    }

    #[test]
    fn permute_roundtrip() {
        let p = SparsePattern::grid2d(4, 3);
        let n = p.n();
        let perm: Vec<usize> = (0..n).rev().collect();
        let q = p.permute(&perm);
        assert_eq!(q.nnz(), p.nnz());
        // Applying the inverse gets the original back.
        let mut inv = vec![0; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        assert_eq!(q.permute(&inv), p);
    }

    #[test]
    #[should_panic]
    fn permute_rejects_non_permutation() {
        let p = SparsePattern::grid2d(2, 2);
        let _ = p.permute(&[0, 0, 1, 2]);
    }

    #[test]
    fn geometric_is_deterministic_and_local() {
        let a = SparsePattern::geometric(300, 0.15, 7);
        let b = SparsePattern::geometric(300, 0.15, 7);
        assert_eq!(a, b);
        let c = SparsePattern::geometric(300, 0.15, 8);
        assert_ne!(a, c);
        // Mean degree grows with radius.
        let d = SparsePattern::geometric(300, 0.25, 7);
        assert!(d.nnz_offdiag() > a.nnz_offdiag());
        // Symmetry invariant.
        for i in 0..a.n() {
            for &j in a.neighbors(i) {
                assert!(a.neighbors(j).contains(&i));
            }
        }
    }

    #[test]
    fn geometric_matches_brute_force_small() {
        let p = SparsePattern::geometric(60, 0.3, 3);
        // Count edges by brute force using the same RNG reconstruction is
        // impractical; instead check the spatial hash found *some* local
        // structure and no vertex links to everything.
        assert!(p.nnz_offdiag() > 0);
        assert!(p.neighbors(0).len() < 60);
    }
}
