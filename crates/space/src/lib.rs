//! Parameter spaces for GPTune-rs.
//!
//! The paper (Sec. 2) defines three spaces: the task parameter space `IS`,
//! the tuning parameter space `PS`, and the output space `OS`. `IS` and `PS`
//! are products of typed parameters — real, integer, or categorical — with
//! optional constraints linking them (e.g. `p_r ≤ p` for the ScaLAPACK
//! process grid). This crate provides:
//!
//! * [`Param`]/[`ParamKind`] — typed parameter descriptors with linear or
//!   logarithmic transforms;
//! * [`Value`]/[`Config`] — concrete parameter settings;
//! * [`Space`] — a product space with normalization to the unit hypercube
//!   `[0,1]^β` (all surrogate modelling and acquisition search happens in
//!   normalized coordinates) and constraint predicates;
//! * [`sampling`] — uniform, Latin-hypercube (the `lhsmdu` stand-in), and
//!   Halton samplers with constraint-aware rejection.

pub mod param;
pub mod sampling;
pub mod space;

pub use param::{Param, ParamKind, Value};
pub use space::{Config, Constraint, Space, SpaceBuilder};
