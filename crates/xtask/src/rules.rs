//! The GPTune lint rules.
//!
//! Rule IDs are tiered by the invariant they protect:
//!
//! | tier | IDs   | invariant |
//! |------|-------|-----------|
//! | 1    | GX101–GX103 | NaN-safety: no IEEE `==`/`!=`, no `partial_cmp` escapes into ordering |
//! | 2    | GX201–GX204, GX290 | panic-freedom in the runtime / db / core evaluation path |
//! | 3    | GX301–GX303 | lock & socket discipline: no guard held across channel ops or joins; no blocking I/O under the serve session-table lock; every serve-side socket deadline-armed |
//! | 4    | GX401–GX403 | determinism: every random draw and iteration order is seed-threaded |
//! | 5    | GX501 | unsafe hygiene: every `unsafe` carries a `// SAFETY:` justification |
//! | 6    | GX601–GX602 | observability: no raw `Instant::now()` in the traced crates; every span/metric name a literal in the `gptune.<crate>.<name>` taxonomy |
//! | 7    | GX701–GX704 | workspace concurrency: lock-order inversions, guards across blocking calls (interprocedural), double-acquires, relaxed-atomic handshakes — implemented in [`crate::concurrency`] |
//!
//! Every rule is a pattern walk over the token stream of [`crate::lexer`]
//! — deliberately type-blind, so each check documents the (small) set of
//! shapes it matches. False positives are handled by the `lint.toml`
//! allowlist or, for the panic tier, by `#[allow(clippy::…)]` plus a
//! `// PANIC-SAFETY:` justification comment (verified by GX290).

use crate::config::Config;
use crate::context::{match_delim, FileCtx};
use crate::lexer::{Tok, Token};

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Static description of one rule, for `gptune-xtask rules`.
pub struct RuleInfo {
    pub id: &'static str,
    pub name: &'static str,
    pub desc: &'static str,
}

/// The full rule table.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "GX101",
        name: "float-eq",
        desc: "no `==`/`!=` against float literals or float constants; use gptune_la::ord::feq",
    },
    RuleInfo {
        id: "GX102",
        name: "partial-cmp-unwrap",
        desc: "no `partial_cmp(..).unwrap()/expect()`; use f64::total_cmp or gptune_la::ord",
    },
    RuleInfo {
        id: "GX103",
        name: "sort-by-partial-cmp",
        desc: "no raw `partial_cmp` comparators in sort_by/min_by/max_by (NaN mis-sorts); use total_cmp",
    },
    RuleInfo {
        id: "GX201",
        name: "unwrap",
        desc: "no `.unwrap()` in panic-free tiers (runtime, db, core evaluation path)",
    },
    RuleInfo {
        id: "GX202",
        name: "expect",
        desc: "no `.expect(..)` in panic-free tiers without an #[allow] + justification",
    },
    RuleInfo {
        id: "GX203",
        name: "panic-macro",
        desc: "no panic!/unreachable!/todo!/unimplemented! in panic-free tiers",
    },
    RuleInfo {
        id: "GX204",
        name: "index-without-get",
        desc: "no `x[i]` indexing in strict panic-free crates (runtime, db); use .get()",
    },
    RuleInfo {
        id: "GX290",
        name: "allow-without-justification",
        desc: "#[allow(clippy::unwrap_used/…)] escapes need an adjacent `// PANIC-SAFETY:` comment",
    },
    RuleInfo {
        id: "GX301",
        name: "lock-across-channel",
        desc: "no Mutex/RwLock guard held across channel send/recv or thread join (deadlock shape)",
    },
    RuleInfo {
        id: "GX302",
        name: "serve-lock-io",
        desc: "crates/serve: no blocking I/O while the session-table lock is held; clone the session Arc, drop the guard, then do the work",
    },
    RuleInfo {
        id: "GX303",
        name: "serve-socket-deadline",
        desc: "crates/serve: every socket from accept()/connect() must reach a deadline-arming call (set_read_timeout/set_write_timeout/arm_deadlines, possibly via a helper) before any other may-blocking operation",
    },
    RuleInfo {
        id: "GX401",
        name: "ambient-rng",
        desc: "no thread_rng/from_entropy/OsRng; every RNG must be seeded through MlaOptions",
    },
    RuleInfo {
        id: "GX402",
        name: "time-derived-seed",
        desc: "no SystemTime/Instant-derived seeds; seeds must be explicit and recorded",
    },
    RuleInfo {
        id: "GX403",
        name: "hashmap-iteration",
        desc: "no iteration over HashMap/HashSet locals (nondeterministic order); use BTreeMap or sort",
    },
    RuleInfo {
        id: "GX501",
        name: "unsafe-without-safety-comment",
        desc: "every `unsafe` needs an adjacent `// SAFETY:` comment",
    },
    RuleInfo {
        id: "GX601",
        name: "raw-instant-now",
        desc: "no raw Instant::now() in crates/core or crates/runtime; time through PhaseTimer or gptune-trace spans",
    },
    RuleInfo {
        id: "GX602",
        name: "metric-name-taxonomy",
        desc: "span/metric names passed to .span/.instant/.counter/.gauge/.histogram must be string literals of the form gptune.<segment>.<segment>[.<segment>…] (lowercase/digits/underscores); dynamic names hide cardinality and break scrape grammars — quarantine them behind a lint.toml allowlist with a reason",
    },
    RuleInfo {
        id: "GX701",
        name: "lock-order-inversion",
        desc: "no cycle in the workspace held-while-acquiring graph over the named-lock registry (witness paths printed; see `lint --explain GX701`)",
    },
    RuleInfo {
        id: "GX702",
        name: "guard-across-blocking-call",
        desc: "no registry-lock guard held across a may-blocking call, interprocedurally — a callee blocking frames down the call graph counts",
    },
    RuleInfo {
        id: "GX703",
        name: "double-acquire",
        desc: "no call path re-acquires a non-reentrant named lock it already holds (self-deadlock)",
    },
    RuleInfo {
        id: "GX704",
        name: "relaxed-atomic-handshake",
        desc: "no Relaxed op on an atomic field that is synchronized with Acquire/Release/SeqCst elsewhere in the workspace",
    },
];

/// Crates under the strict panic-freedom tier: unwrap/expect/panic macros
/// *and* bare indexing are violations.
const PANIC_FREE_STRICT_CRATES: &[&str] = &["runtime", "db"];

/// Core evaluation-path files under the panic-freedom tier (indexing is
/// exempt there — the numeric kernels index hot loops by design).
const PANIC_FREE_FILES: &[&str] = &[
    "crates/core/src/mla.rs",
    "crates/core/src/mla_mo.rs",
    "crates/core/src/tla.rs",
    "crates/core/src/db_bridge.rs",
];

/// Crates exempt from the panic tier entirely: the lint tool itself (a
/// dev-side binary whose failure mode is a failed gate, not a lost run).
const DEV_TOOL_CRATES: &[&str] = &["xtask", "bench"];

/// Runs every rule over one file.
pub fn check_file(ctx: &FileCtx<'_>, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let push = |line: u32, rule: &'static str, msg: String, out: &mut Vec<Diagnostic>| {
        if cfg.allowed(rule, ctx.path).is_none() {
            out.push(Diagnostic {
                path: ctx.path.to_string(),
                line,
                rule,
                msg,
            });
        }
    };

    float_eq(ctx, &mut |l, r, m, o: &mut _| push(l, r, m, o), &mut out);
    partial_cmp(ctx, &mut |l, r, m, o: &mut _| push(l, r, m, o), &mut out);
    panic_tier(ctx, &mut |l, r, m, o: &mut _| push(l, r, m, o), &mut out);
    allow_justifications(ctx, &mut |l, r, m, o: &mut _| push(l, r, m, o), &mut out);
    lock_discipline(ctx, &mut |l, r, m, o: &mut _| push(l, r, m, o), &mut out);
    serve_lock_io(ctx, &mut |l, r, m, o: &mut _| push(l, r, m, o), &mut out);
    determinism(ctx, &mut |l, r, m, o: &mut _| push(l, r, m, o), &mut out);
    unsafe_hygiene(ctx, &mut |l, r, m, o: &mut _| push(l, r, m, o), &mut out);
    raw_timing(ctx, &mut |l, r, m, o: &mut _| push(l, r, m, o), &mut out);
    metric_name_taxonomy(ctx, &mut |l, r, m, o: &mut _| push(l, r, m, o), &mut out);
    out
}

type Emit<'e> = dyn FnMut(u32, &'static str, String, &mut Vec<Diagnostic>) + 'e;

// ---------------------------------------------------------------- tier 1

/// GX101: `==` / `!=` where either adjacent operand token is a float
/// literal or an `f64::NAN`-style constant. Type-blind, so comparisons of
/// float *variables* are only caught when one side is a literal — which
/// covers every violation shape seen in this codebase (`x == 0.0`,
/// `beta != 1.0`).
fn float_eq(ctx: &FileCtx<'_>, emit: &mut Emit<'_>, out: &mut Vec<Diagnostic>) {
    let t = ctx.tokens;
    let mut i = 0usize;
    while i + 1 < t.len() {
        let (is_eq, op): (bool, &str) = if t[i].is_punct('=') && t[i + 1].is_punct('=') {
            // Exclude `<=`, `>=`, `+=`… (the `=` then belongs to a
            // compound operator) and `===`-like runs (not Rust anyway).
            let prev_compound =
                i > 0 && matches!(t[i - 1].kind, Tok::Punct(c) if "+-*/%^&|<>!=".contains(c));
            (!prev_compound, "==")
        } else if t[i].is_punct('!') && t[i + 1].is_punct('=') {
            (true, "!=")
        } else {
            (false, "")
        };
        if !is_eq {
            i += 1;
            continue;
        }
        let line = t[i].line;
        if ctx.in_test(line) {
            i += 2;
            continue;
        }
        let left_float = i > 0 && is_float_operand_end(t, i - 1);
        let right_float = is_float_operand_start(t, i + 2);
        if left_float || right_float {
            emit(
                line,
                "GX101",
                format!("IEEE `{op}` on a float (NaN-unsafe); use gptune_la::ord::feq"),
                out,
            );
        }
        i += 2;
    }
}

/// Token at `k` ends a float operand: a float literal, or the last segment
/// of `f64::NAN` / `f64::INFINITY` / `f64::NEG_INFINITY`.
fn is_float_operand_end(t: &[Token], k: usize) -> bool {
    match &t[k].kind {
        Tok::Float => true,
        Tok::Ident(s) if matches!(s.as_str(), "NAN" | "INFINITY" | "NEG_INFINITY") => true,
        _ => false,
    }
}

/// Token at `k` starts a float operand: a float literal, `-` float, or a
/// `f64::NAN`-style constant path.
fn is_float_operand_start(t: &[Token], k: usize) -> bool {
    match t.get(k).map(|x| &x.kind) {
        Some(Tok::Float) => true,
        Some(Tok::Punct('-')) => matches!(t.get(k + 1).map(|x| &x.kind), Some(Tok::Float)),
        Some(Tok::Ident(s)) if matches!(s.as_str(), "f64" | "f32") => {
            // f64::NAN / f64::INFINITY / f64::NEG_INFINITY / f64::EPSILON
            matches!(
                t.get(k + 3).and_then(|x| x.ident()),
                Some("NAN" | "INFINITY" | "NEG_INFINITY" | "EPSILON")
            )
        }
        _ => false,
    }
}

/// GX102 + GX103: `partial_cmp` escapes.
fn partial_cmp(ctx: &FileCtx<'_>, emit: &mut Emit<'_>, out: &mut Vec<Diagnostic>) {
    let t = ctx.tokens;
    // Spans of sort/min/max comparator arguments, for GX103.
    let sort_fns = ["sort_by", "sort_unstable_by", "min_by", "max_by"];
    let mut sort_arg_spans: Vec<(usize, usize)> = Vec::new();
    for (i, tok) in t.iter().enumerate() {
        if let Some(name) = tok.ident() {
            if sort_fns.contains(&name) && t.get(i + 1).is_some_and(|x| x.is_punct('(')) {
                if let Some(end) = match_delim(t, i + 1, '(', ')') {
                    sort_arg_spans.push((i + 1, end));
                }
            }
        }
    }
    for (i, tok) in t.iter().enumerate() {
        if !tok.is_ident("partial_cmp") {
            continue;
        }
        let line = tok.line;
        if ctx.in_test(line) {
            continue;
        }
        if !(i > 0 && t[i - 1].is_punct('.') && t.get(i + 1).is_some_and(|x| x.is_punct('('))) {
            continue;
        }
        let Some(args_end) = match_delim(t, i + 1, '(', ')') else {
            continue;
        };
        // `.partial_cmp(x).unwrap()` / `.expect(..)` → GX102.
        let unwrapped = t.get(args_end + 1).is_some_and(|x| x.is_punct('.'))
            && matches!(
                t.get(args_end + 2).and_then(|x| x.ident()),
                Some("unwrap" | "expect")
            );
        if unwrapped {
            emit(
                line,
                "GX102",
                "partial_cmp().unwrap() panics on NaN; use f64::total_cmp".to_string(),
                out,
            );
        } else if sort_arg_spans.iter().any(|&(a, b)| a < i && i < b) {
            // Un-unwrapped partial_cmp inside a comparator closure
            // (`.unwrap_or(Equal)` shapes): NaN silently breaks the total
            // order the sort requires → GX103.
            emit(
                line,
                "GX103",
                "raw partial_cmp comparator mis-sorts NaN; use f64::total_cmp".to_string(),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------- tier 2

/// Which panic-tier rules apply to this file.
fn panic_scope(ctx: &FileCtx<'_>) -> (bool, bool) {
    let krate = ctx.crate_name();
    if DEV_TOOL_CRATES.contains(&krate) {
        return (false, false);
    }
    let strict = PANIC_FREE_STRICT_CRATES.contains(&krate);
    let eval_path = PANIC_FREE_FILES.contains(&ctx.path);
    (strict || eval_path, strict)
}

/// GX201/GX202/GX203/GX204 over the panic-free tiers.
fn panic_tier(ctx: &FileCtx<'_>, emit: &mut Emit<'_>, out: &mut Vec<Diagnostic>) {
    let (no_panic, strict) = panic_scope(ctx);
    if !no_panic {
        return;
    }
    let t = ctx.tokens;
    for (i, tok) in t.iter().enumerate() {
        let line = tok.line;
        if ctx.in_test(line) {
            continue;
        }
        match &tok.kind {
            Tok::Ident(s) if s == "unwrap" => {
                let is_call = i > 0
                    && t[i - 1].is_punct('.')
                    && t.get(i + 1).is_some_and(|x| x.is_punct('('))
                    && t.get(i + 2).is_some_and(|x| x.is_punct(')'));
                if is_call && ctx.allow_for(line, "unwrap_used").is_none() {
                    emit(
                        line,
                        "GX201",
                        ".unwrap() in a panic-free tier; handle the None/Err or add #[allow(clippy::unwrap_used)] + // PANIC-SAFETY".to_string(),
                        out,
                    );
                }
            }
            Tok::Ident(s) if s == "expect" => {
                let is_call = i > 0
                    && t[i - 1].is_punct('.')
                    && t.get(i + 1).is_some_and(|x| x.is_punct('('));
                if is_call && ctx.allow_for(line, "expect_used").is_none() {
                    emit(
                        line,
                        "GX202",
                        ".expect() in a panic-free tier; handle the error or add #[allow(clippy::expect_used)] + // PANIC-SAFETY".to_string(),
                        out,
                    );
                }
            }
            Tok::Ident(s)
                if matches!(
                    s.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) =>
            {
                let is_macro = t.get(i + 1).is_some_and(|x| x.is_punct('!'));
                let lint: &str = match s.as_str() {
                    "panic" => "panic",
                    "unreachable" => "unreachable",
                    "todo" => "todo",
                    _ => "unimplemented",
                };
                if is_macro && ctx.allow_for(line, lint).is_none() {
                    emit(
                        line,
                        "GX203",
                        format!("{s}! in a panic-free tier; return an error or add #[allow(clippy::{lint})] + // PANIC-SAFETY"),
                        out,
                    );
                }
            }
            Tok::Punct('[') if strict => {
                if i > 0
                    && is_index_base(&t[i - 1])
                    && ctx.allow_for(line, "indexing_slicing").is_none()
                {
                    emit(
                        line,
                        "GX204",
                        "bare indexing in a strict panic-free crate; use .get()/.get_mut() or add #[allow(clippy::indexing_slicing)] + // PANIC-SAFETY".to_string(),
                        out,
                    );
                }
            }
            _ => {}
        }
    }
}

/// The token before `[` that makes it an *index* expression (rather than
/// an array literal, attribute, or slice type).
fn is_index_base(prev: &Token) -> bool {
    match &prev.kind {
        Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('?') => true,
        Tok::Ident(s) => !matches!(
            s.as_str(),
            // Keywords that can directly precede an array-literal or
            // slice-pattern bracket.
            "mut"
                | "in"
                | "dyn"
                | "ref"
                | "move"
                | "return"
                | "break"
                | "as"
                | "else"
                | "match"
                | "if"
                | "while"
                | "loop"
                | "for"
                | "let"
                | "const"
                | "static"
                | "use"
                | "pub"
                | "where"
                | "impl"
                | "fn"
                | "box"
                | "await"
                | "yield"
        ),
        _ => false,
    }
}

/// GX290: every `#[allow(clippy::<monitored>)]` must be justified.
fn allow_justifications(ctx: &FileCtx<'_>, emit: &mut Emit<'_>, out: &mut Vec<Diagnostic>) {
    for span in ctx.allow_spans() {
        if !span.justified && !ctx.in_test(span.attr_line) {
            emit(
                span.attr_line,
                "GX290",
                format!(
                    "#[allow(clippy::{})] without an adjacent `// PANIC-SAFETY:` justification comment",
                    span.lints.join(", clippy::")
                ),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------- tier 3

/// GX301: a `let`-bound lock guard (binding whose initializer *ends* in
/// `.lock()` / `.read()` / `.write()`, optionally `.unwrap()`/`.expect()`/
/// `?`) that is still live when a channel `send`/`recv`/`recv_timeout` or
/// a `join()` executes. Guards die at `drop(name)` or when their block
/// closes. This is exactly the executor's deadlock shape: the master
/// blocking on a channel while holding a lock a worker needs.
fn lock_discipline(ctx: &FileCtx<'_>, emit: &mut Emit<'_>, out: &mut Vec<Diagnostic>) {
    let t = ctx.tokens;
    let mut depth: i32 = 0;
    // (guard name, brace depth at binding, line bound)
    let mut guards: Vec<(String, i32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        match &t[i].kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                guards.retain(|&(_, d, _)| d <= depth);
            }
            Tok::Ident(s) if s == "let" => {
                if let Some((name, stmt_end)) = guard_binding(t, i) {
                    guards.push((name, depth, t[i].line));
                    i = stmt_end;
                    continue;
                }
            }
            Tok::Ident(s) if s == "drop" => {
                // drop(name) / mem::drop(name)
                if t.get(i + 1).is_some_and(|x| x.is_punct('(')) {
                    if let Some(name) = t.get(i + 2).and_then(|x| x.ident()) {
                        if t.get(i + 3).is_some_and(|x| x.is_punct(')')) {
                            guards.retain(|(g, _, _)| g != name);
                        }
                    }
                }
            }
            Tok::Ident(s) if matches!(s.as_str(), "send" | "recv" | "recv_timeout" | "join") => {
                let line = t[i].line;
                let method = i > 0 && t[i - 1].is_punct('.');
                // `.join()` only with empty args: JoinHandle::join takes
                // none, while Path::join / slice::join take one.
                let args_ok = if s == "join" {
                    t.get(i + 1).is_some_and(|x| x.is_punct('('))
                        && t.get(i + 2).is_some_and(|x| x.is_punct(')'))
                } else {
                    t.get(i + 1).is_some_and(|x| x.is_punct('('))
                };
                if method && args_ok && !ctx.in_test(line) {
                    if let Some((g, _, bound)) = guards.first() {
                        emit(
                            line,
                            "GX301",
                            format!(
                                "channel/join op while lock guard `{g}` (bound line {bound}) is live; \
                                 drop the guard first or clone the endpoint out of the lock"
                            ),
                            out,
                        );
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// If the `let` statement starting at token `li` binds a lock guard,
/// returns `(name, index of the terminating ';')`.
fn guard_binding(t: &[Token], li: usize) -> Option<(String, usize)> {
    let mut k = li + 1;
    if t.get(k).is_some_and(|x| x.is_ident("mut")) {
        k += 1;
    }
    let name = t.get(k)?.ident()?.to_string();
    if name == "_" {
        // `let _ = …` drops immediately — not a live guard. (`let _g` is.)
        return None;
    }
    // Find `=` then the terminating `;` at statement nesting level.
    let mut j = k + 1;
    let mut eq = None;
    let (mut p, mut b, mut c) = (0i32, 0i32, 0i32);
    while j < t.len() {
        match t[j].kind {
            Tok::Punct('(') => p += 1,
            Tok::Punct(')') => p -= 1,
            Tok::Punct('[') => b += 1,
            Tok::Punct(']') => b -= 1,
            Tok::Punct('{') => c += 1,
            Tok::Punct('}') => c -= 1,
            Tok::Punct('=') if p == 0 && b == 0 && c == 0 && eq.is_none() => {
                // Skip `==`, `=>`, `<=`… (only plain `=` starts the init).
                let next_eq = t
                    .get(j + 1)
                    .is_some_and(|x| x.is_punct('=') || x.is_punct('>'));
                let prev_op =
                    matches!(t[j - 1].kind, Tok::Punct(ch) if "+-*/%^&|<>!=".contains(ch));
                if !next_eq && !prev_op {
                    eq = Some(j);
                }
            }
            Tok::Punct(';') if p == 0 && b == 0 && c == 0 => {
                let eq = eq?;
                let init = &t[eq + 1..j];
                return if init_is_guard(init) {
                    Some((name, j))
                } else {
                    None
                };
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Does an initializer token sequence end in a lock acquisition?
fn init_is_guard(init: &[Token]) -> bool {
    // Strip a trailing `?`, `.unwrap()`, or `.expect(..)`.
    let mut end = init.len();
    if end > 0 && init[end - 1].is_punct('?') {
        end -= 1;
    }
    if end >= 4
        && init[end - 1].is_punct(')')
        && matches!(init[end - 3].ident(), Some("unwrap"))
        && init[end - 2].is_punct('(')
        && init[end - 4].is_punct('.')
    {
        end -= 4;
    } else if end > 0 && init[end - 1].is_punct(')') {
        // `.expect("msg")`: scan back over one balanced paren group.
        let mut depth = 0i32;
        let mut k = end;
        while k > 0 {
            k -= 1;
            match init[k].kind {
                Tok::Punct(')') => depth += 1,
                Tok::Punct('(') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        if k >= 2 && matches!(init[k - 1].ident(), Some("expect")) && init[k - 2].is_punct('.') {
            end = k - 2;
        }
    }
    // Now the tail must be `.lock()` / `.read()` / `.write()`.
    end >= 4
        && init[end - 1].is_punct(')')
        && init[end - 2].is_punct('(')
        && matches!(init[end - 3].ident(), Some("lock" | "read" | "write"))
        && init[end - 4].is_punct('.')
}

/// Blocking I/O calls that must never run under the serve session-table
/// lock: socket reads/writes, frame codecs, and connection management.
const SERVE_BLOCKING_IO: &[&str] = &[
    "read_frame",
    "write_frame",
    "read_json",
    "write_json",
    "read_exact",
    "read_to_end",
    "write_all",
    "flush",
    "accept",
    "connect",
    "shutdown",
];

/// GX302: in `crates/serve`, no blocking I/O while the session-*table*
/// lock is live. A table guard is a `let` binding whose initializer ends
/// in a lock acquisition *and* mentions `sessions` (the table field);
/// per-session mutexes are exempt — they serialize one tenant's work,
/// which legitimately spans surrogate refits, while the table lock is a
/// global chokepoint every request crosses. The blessed pattern: lock the
/// table, clone the session `Arc`, drop the guard, then do the work.
fn serve_lock_io(ctx: &FileCtx<'_>, emit: &mut Emit<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.path.starts_with("crates/serve/") {
        return;
    }
    let t = ctx.tokens;
    let mut depth: i32 = 0;
    // (guard name, brace depth at binding, line bound)
    let mut guards: Vec<(String, i32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        match &t[i].kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                guards.retain(|&(_, d, _)| d <= depth);
            }
            Tok::Ident(s) if s == "let" => {
                if let Some((name, stmt_end)) = guard_binding(t, i) {
                    let on_table = t[i..=stmt_end]
                        .iter()
                        .any(|x| x.ident().is_some_and(|id| id == "sessions"));
                    if on_table {
                        guards.push((name, depth, t[i].line));
                    }
                    i = stmt_end;
                    continue;
                }
            }
            Tok::Ident(s) if s == "drop" => {
                if t.get(i + 1).is_some_and(|x| x.is_punct('(')) {
                    if let Some(name) = t.get(i + 2).and_then(|x| x.ident()) {
                        if t.get(i + 3).is_some_and(|x| x.is_punct(')')) {
                            guards.retain(|(g, _, _)| g != name);
                        }
                    }
                }
            }
            Tok::Ident(s) if SERVE_BLOCKING_IO.contains(&s.as_str()) => {
                let line = t[i].line;
                let is_call = t.get(i + 1).is_some_and(|x| x.is_punct('('));
                if is_call && !ctx.in_test(line) {
                    if let Some((g, _, bound)) = guards.first() {
                        emit(
                            line,
                            "GX302",
                            format!(
                                "blocking I/O `{s}` while session-table guard `{g}` (bound line \
                                 {bound}) is live; clone the session Arc and drop the table lock \
                                 before any I/O"
                            ),
                            out,
                        );
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

// GX303 (serve-socket-deadline) lives in `crate::concurrency`: the old
// "armed within 12 lines" lexical heuristic was replaced by the
// summary-based check over parsed fn bodies.

// ---------------------------------------------------------------- tier 4

/// GX401/GX402/GX403: nondeterminism sources.
fn determinism(ctx: &FileCtx<'_>, emit: &mut Emit<'_>, out: &mut Vec<Diagnostic>) {
    let t = ctx.tokens;

    // GX401: ambient entropy, flagged even in tests — a test that draws
    // from the OS is a flaky test.
    for tok in t {
        if let Some(s) = tok.ident() {
            if matches!(s, "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng") {
                emit(
                    tok.line,
                    "GX401",
                    format!("`{s}` draws ambient entropy; thread an explicit seed (MlaOptions.seed) instead"),
                    out,
                );
            }
        }
    }

    // GX402: time-derived seeds — `seed_from_u64(..now()..)` shapes and
    // `let seed = ..Instant/SystemTime..` bindings.
    let timey = ["SystemTime", "Instant", "UNIX_EPOCH", "now", "elapsed"];
    for (i, tok) in t.iter().enumerate() {
        if let Some(s) = tok.ident() {
            if matches!(s, "seed_from_u64" | "from_seed")
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
            {
                if let Some(end) = match_delim(t, i + 1, '(', ')') {
                    if t[i + 2..end]
                        .iter()
                        .any(|x| x.ident().is_some_and(|id| timey.contains(&id)))
                    {
                        emit(
                            tok.line,
                            "GX402",
                            "seed derived from wall-clock/monotonic time; seeds must be explicit and recorded".to_string(),
                            out,
                        );
                    }
                }
            }
            if s == "let" {
                let mut ni = i + 1;
                if t.get(ni).is_some_and(|x| x.is_ident("mut")) {
                    ni += 1;
                }
                if let Some(name) = t.get(ni).and_then(|x| x.ident()) {
                    if name.to_ascii_lowercase().contains("seed") {
                        // Scan the statement for time sources.
                        let mut j = ni + 1;
                        while j < t.len() && !t[j].is_punct(';') {
                            if t[j].ident().is_some_and(|id| timey.contains(&id)) {
                                emit(
                                    t[j].line,
                                    "GX402",
                                    format!("`{name}` is seeded from a time source; thread the run seed instead"),
                                    out,
                                );
                                break;
                            }
                            j += 1;
                        }
                    }
                }
            }
        }
    }

    // GX403: iteration over HashMap/HashSet locals in non-test code.
    let mut hash_locals: Vec<String> = Vec::new();
    for (i, tok) in t.iter().enumerate() {
        if tok.is_ident("let") {
            let mut k = i + 1;
            if t.get(k).is_some_and(|x| x.is_ident("mut")) {
                k += 1;
            }
            if let Some(name) = t.get(k).and_then(|x| x.ident()) {
                // Scan the statement for a HashMap/HashSet constructor or
                // type ascription.
                let mut j = k + 1;
                let mut depth = 0i32;
                while j < t.len() {
                    match t[j].kind {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => {
                            depth -= 1;
                            if depth < 0 {
                                break;
                            }
                        }
                        Tok::Punct(';') if depth == 0 => break,
                        _ => {}
                    }
                    if t[j]
                        .ident()
                        .is_some_and(|id| id == "HashMap" || id == "HashSet")
                    {
                        hash_locals.push(name.to_string());
                        break;
                    }
                    j += 1;
                }
            }
        }
    }
    if !hash_locals.is_empty() {
        let iter_fns = [
            "iter",
            "iter_mut",
            "into_iter",
            "keys",
            "values",
            "values_mut",
            "drain",
        ];
        for (i, tok) in t.iter().enumerate() {
            let line = tok.line;
            if ctx.in_test(line) {
                continue;
            }
            if let Some(name) = tok.ident() {
                if !hash_locals.iter().any(|h| h == name) {
                    continue;
                }
                // `name.iter()` etc.
                let method_iter = t.get(i + 1).is_some_and(|x| x.is_punct('.'))
                    && t.get(i + 2)
                        .and_then(|x| x.ident())
                        .is_some_and(|id| iter_fns.contains(&id));
                // `for x in [&[mut]] name {`
                let for_iter = (i >= 1 && t[i - 1].is_ident("in"))
                    || (i >= 2 && t[i - 1].is_punct('&') && t[i - 2].is_ident("in"))
                    || (i >= 3
                        && t[i - 1].is_ident("mut")
                        && t[i - 2].is_punct('&')
                        && t[i - 3].is_ident("in"));
                if method_iter || for_iter {
                    emit(
                        line,
                        "GX403",
                        format!("iteration over hash-ordered `{name}` is nondeterministic; use BTreeMap/BTreeSet or collect+sort"),
                        out,
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------- tier 5

/// GX501: `unsafe` (block, fn, impl, trait) without a `// SAFETY:` comment
/// on the same line or within the three lines above.
fn unsafe_hygiene(ctx: &FileCtx<'_>, emit: &mut Emit<'_>, out: &mut Vec<Diagnostic>) {
    for tok in ctx.tokens {
        if tok.is_ident("unsafe") {
            let line = tok.line;
            if !ctx.justification_near(line.saturating_sub(3), line) {
                emit(
                    line,
                    "GX501",
                    "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------- tier 6

/// Files inside the timed crates that *are* the instrumentation layer:
/// raw clock reads there are the implementation of span timing itself.
const TIMING_EXEMPT_FILES: &[&str] = &["crates/runtime/src/stats.rs"];

/// GX601: raw `Instant::now()` in `crates/core` / `crates/runtime`
/// production code. Phase timing must flow through `PhaseTimer` /
/// `gptune-trace` spans so every measurement lands in both the stats
/// accumulator and the trace; an untraced clock read is a measurement the
/// trace cannot explain. Legitimate non-phase uses (the executor's
/// watchdog deadlines) are allowlisted in `lint.toml` with a reason.
fn raw_timing(ctx: &FileCtx<'_>, emit: &mut Emit<'_>, out: &mut Vec<Diagnostic>) {
    let timed = (ctx.path.starts_with("crates/core/src/")
        || ctx.path.starts_with("crates/runtime/src/"))
        && !TIMING_EXEMPT_FILES.contains(&ctx.path)
        && !ctx.path.contains("trace");
    if !timed {
        return;
    }
    let t = ctx.tokens;
    for (i, tok) in t.iter().enumerate() {
        if tok.is_ident("Instant")
            && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.is_ident("now"))
            && !ctx.in_test(tok.line)
        {
            emit(
                tok.line,
                "GX601",
                "raw `Instant::now()` in a traced crate; time through PhaseTimer / gptune-trace spans (or allowlist in lint.toml with a reason)"
                    .to_string(),
                out,
            );
        }
    }
}

/// Crates exempt from the name-taxonomy rule: the instrumentation layer
/// itself (registries and exposition codecs pass names through variables
/// by design) and this lint suite (rule sources quote violating shapes).
const TAXONOMY_EXEMPT_CRATES: &[&str] = &["trace", "xtask"];

/// Recording/lookup methods whose first argument is a span/metric name.
const METRIC_NAME_METHODS: &[&str] = &["span", "instant", "counter", "gauge", "histogram"];

/// True when `name` fits the workspace metric taxonomy:
/// `gptune.<segment>.<segment>[.<segment>…]` with every segment non-empty
/// lowercase ASCII, digits, or underscores.
fn taxonomy_ok(name: &str) -> bool {
    let mut segments = name.split('.');
    if segments.next() != Some("gptune") {
        return false;
    }
    let mut rest = 0usize;
    for seg in segments {
        rest += 1;
        if seg.is_empty()
            || !seg
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            return false;
        }
    }
    rest >= 2
}

/// GX602: every name handed to `.span(` / `.instant(` / `.counter(` /
/// `.gauge(` / `.histogram(` must be a string literal matching the
/// `gptune.<crate>.<name>` taxonomy. A computed name (variable, `format!`,
/// helper call) creates metric families the dashboards and the exposition
/// grammar cannot enumerate, and a literal outside the taxonomy breaks
/// the scrape's `name="…"` round-trip convention. Deliberate dynamic
/// names (the per-tenant SLO ledger) are quarantined via `lint.toml`.
/// Type-blind like every rule here: it matches the method-name token, so
/// snapshot lookups (`m.histogram(name)`) count too — by design, lookups
/// share the taxonomy.
fn metric_name_taxonomy(ctx: &FileCtx<'_>, emit: &mut Emit<'_>, out: &mut Vec<Diagnostic>) {
    if TAXONOMY_EXEMPT_CRATES.contains(&ctx.crate_name()) {
        return;
    }
    let t = ctx.tokens;
    for i in 1..t.len() {
        let is_name_method = METRIC_NAME_METHODS.iter().any(|m| t[i].is_ident(m));
        if !is_name_method
            || !t[i - 1].is_punct('.')
            || !t.get(i + 1).is_some_and(|x| x.is_punct('('))
            || ctx.in_test(t[i].line)
        {
            continue;
        }
        let Some(arg) = t.get(i + 2) else { continue };
        match arg.str_body() {
            Some(body) if taxonomy_ok(body) => {}
            Some(body) => emit(
                t[i].line,
                "GX602",
                format!(
                    "metric/span name \"{body}\" is outside the `gptune.<crate>.<name>` taxonomy \
                     (lowercase dot-separated segments, at least three)"
                ),
                out,
            ),
            None => emit(
                t[i].line,
                "GX602",
                "metric/span name must be a string literal in the `gptune.<crate>.<name>` \
                 taxonomy; computed names hide metric cardinality — quarantine deliberate \
                 dynamic families in lint.toml with a reason"
                    .to_string(),
                out,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let ctx = FileCtx::new(path, &lexed);
        check_file(&ctx, &Config::default())
    }

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        let mut r: Vec<_> = run(path, src).into_iter().map(|d| d.rule).collect();
        r.dedup();
        r
    }

    #[test]
    fn gx101_float_eq() {
        assert_eq!(
            rules_hit("crates/la/src/x.rs", "fn f(x: f64) -> bool { x == 0.0 }"),
            vec!["GX101"]
        );
        assert_eq!(
            rules_hit("crates/la/src/x.rs", "fn f(x: f64) -> bool { x != 1.0 }"),
            vec!["GX101"]
        );
        assert_eq!(
            rules_hit(
                "crates/la/src/x.rs",
                "fn f(x: f64) -> bool { x == f64::NAN }"
            ),
            vec!["GX101"]
        );
        // Integer comparisons and `<=` are fine.
        assert!(rules_hit(
            "crates/la/src/x.rs",
            "fn f(x: i64) -> bool { x == 0 && x <= 4 }"
        )
        .is_empty());
        // Test code is exempt.
        assert!(rules_hit(
            "crates/la/src/x.rs",
            "#[cfg(test)]\nmod t { fn f(x: f64) -> bool { x == 0.0 } }"
        )
        .is_empty());
    }

    #[test]
    fn gx102_gx103_partial_cmp() {
        assert_eq!(
            rules_hit(
                "crates/opt/src/x.rs",
                "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }"
            ),
            vec!["GX102"]
        );
        assert_eq!(
            rules_hit(
                "crates/opt/src/x.rs",
                "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); }"
            ),
            vec!["GX103"]
        );
        assert!(rules_hit(
            "crates/opt/src/x.rs",
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }"
        )
        .is_empty());
        // partial_cmp that is matched (not unwrapped, not in a sort) is fine.
        assert!(rules_hit(
            "crates/opt/src/x.rs",
            "fn f(a: f64, b: f64) -> bool { matches!(a.partial_cmp(&b), Some(core::cmp::Ordering::Less)) }"
        )
        .is_empty());
    }

    #[test]
    fn gx201_unwrap_scoped() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_hit("crates/db/src/x.rs", src), vec!["GX201"]);
        assert_eq!(rules_hit("crates/runtime/src/x.rs", src), vec!["GX201"]);
        assert_eq!(rules_hit("crates/core/src/mla.rs", src), vec!["GX201"]);
        // Out-of-tier crates and test code are exempt.
        assert!(rules_hit("crates/opt/src/x.rs", src).is_empty());
        assert!(rules_hit("crates/db/tests/x.rs", src).is_empty());
        // unwrap_or is not unwrap.
        assert!(rules_hit(
            "crates/db/src/x.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }"
        )
        .is_empty());
    }

    #[test]
    fn gx202_expect_with_allow() {
        let bad = "fn f(x: Option<u32>) -> u32 { x.expect(\"invariant\") }";
        assert_eq!(rules_hit("crates/db/src/x.rs", bad), vec!["GX202"]);
        // A justified allow silences GX202 and GX290.
        let ok = "// PANIC-SAFETY: checked by construction two lines up.\n#[allow(clippy::expect_used)]\nfn f(x: Option<u32>) -> u32 { x.expect(\"invariant\") }";
        assert!(rules_hit("crates/db/src/x.rs", ok).is_empty());
        // An unjustified allow is GX290.
        let unjust = "#[allow(clippy::expect_used)]\nfn f(x: Option<u32>) -> u32 { x.expect(\"invariant\") }";
        assert_eq!(rules_hit("crates/db/src/x.rs", unjust), vec!["GX290"]);
    }

    #[test]
    fn gx203_panic_macros() {
        assert_eq!(
            rules_hit("crates/runtime/src/x.rs", "fn f() { panic!(\"boom\"); }"),
            vec!["GX203"]
        );
        assert_eq!(
            rules_hit("crates/db/src/x.rs", "fn f() { unreachable!(); }"),
            vec!["GX203"]
        );
        // `panic::catch_unwind` is not the macro.
        assert!(rules_hit(
            "crates/runtime/src/x.rs",
            "fn f() { let _ = std::panic::take_hook(); }"
        )
        .is_empty());
    }

    #[test]
    fn gx204_indexing_strict_only() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] }";
        assert_eq!(rules_hit("crates/db/src/x.rs", src), vec!["GX204"]);
        assert_eq!(rules_hit("crates/runtime/src/x.rs", src), vec!["GX204"]);
        // Core eval path: no-panic but indexing allowed.
        assert!(rules_hit("crates/core/src/mla.rs", src).is_empty());
        // Array literals / types / attributes don't trip it.
        assert!(rules_hit(
            "crates/db/src/x.rs",
            "#[derive(Clone)]\nstruct S { a: [u8; 4] }\nfn f() -> [u8; 2] { [1, 2] }"
        )
        .is_empty());
        assert!(rules_hit(
            "crates/db/src/x.rs",
            "fn f(v: &[u32]) -> Option<&u32> { v.get(0) }"
        )
        .is_empty());
    }

    #[test]
    fn gx301_lock_across_channel() {
        let bad = "fn f(m: &Mutex<Option<Sender<u32>>>, tx: &Sender<u32>) {\n  let guard = m.lock();\n  tx.send(1);\n}";
        assert_eq!(rules_hit("crates/runtime/src/x.rs", bad), vec!["GX301"]);
        // Dropping the guard first is fine.
        let ok = "fn f(m: &Mutex<u32>, tx: &Sender<u32>) {\n  let guard = m.lock();\n  drop(guard);\n  tx.send(1);\n}";
        assert!(rules_hit("crates/runtime/src/x.rs", ok).is_empty());
        // Guard confined to an inner block is fine.
        let scoped = "fn f(m: &Mutex<u32>, tx: &Sender<u32>) {\n  { let guard = m.lock(); }\n  tx.send(1);\n}";
        assert!(rules_hit("crates/runtime/src/x.rs", scoped).is_empty());
        // A temporary (no let binding) is fine: `m.lock().insert(x)` then send.
        let temp = "fn f(m: &Mutex<HashSet<u32>>, tx: &Sender<u32>) {\n  m.lock().insert(3);\n  tx.send(1);\n}";
        assert!(rules_hit("crates/runtime/src/x.rs", temp).is_empty());
        // `.join()` with a guard is flagged; Path::join(arg) is not.
        let join = "fn f(m: &Mutex<u32>, h: JoinHandle<()>) {\n  let g = m.lock();\n  let _ = h.join();\n}";
        assert_eq!(rules_hit("crates/runtime/src/x.rs", join), vec!["GX301"]);
        let path =
            "fn f(m: &Mutex<u32>, p: &Path) -> PathBuf {\n  let g = m.lock();\n  p.join(\"x\")\n}";
        assert!(rules_hit("crates/runtime/src/x.rs", path).is_empty());
        // std guards behind .unwrap() count too (the unwrap itself is a
        // separate GX201 hit in this strict-tier crate).
        let std_guard = "fn f(m: &std::sync::Mutex<u32>, tx: &Sender<u32>) {\n  let g = m.lock().unwrap();\n  tx.send(1);\n}";
        assert_eq!(
            rules_hit("crates/runtime/src/x.rs", std_guard),
            vec!["GX201", "GX301"]
        );
    }

    #[test]
    fn gx302_serve_blocking_io_under_table_lock() {
        let bad = "fn f(state: &ServerState, s: &mut TcpStream) {\n  let table = state.sessions.lock().unwrap();\n  let _ = s.flush();\n}";
        assert_eq!(rules_hit("crates/serve/src/server.rs", bad), vec!["GX302"]);
        // Frame codecs count as blocking I/O too.
        let frame = "fn f(state: &ServerState, s: &mut TcpStream, j: &Json) {\n  let table = state.sessions.lock().unwrap();\n  write_json(s, j);\n}";
        assert_eq!(
            rules_hit("crates/serve/src/server.rs", frame),
            vec!["GX302"]
        );
        // The blessed pattern: clone out of the table, drop, then do I/O.
        let ok = "fn f(state: &ServerState, s: &mut TcpStream) {\n  let table = state.sessions.lock().unwrap();\n  let e = table.get(\"k\").cloned();\n  drop(table);\n  let _ = s.flush();\n}";
        assert!(rules_hit("crates/serve/src/server.rs", ok).is_empty());
        // Per-session guards are exempt — only the table is a chokepoint.
        let session = "fn f(entry: &Mutex<Entry>, s: &mut TcpStream) {\n  let g = entry.lock().unwrap();\n  let _ = s.flush();\n}";
        assert!(rules_hit("crates/serve/src/server.rs", session).is_empty());
        // A guard confined to an inner block dies before the I/O.
        let scoped = "fn f(state: &ServerState, s: &mut TcpStream) {\n  { let table = state.sessions.lock().unwrap(); }\n  let _ = s.flush();\n}";
        assert!(rules_hit("crates/serve/src/server.rs", scoped).is_empty());
        // The rule is scoped to crates/serve.
        assert!(!rules_hit("crates/runtime/src/x.rs", bad).contains(&"GX302"));
    }

    #[test]
    fn gx401_gx402_entropy_and_time_seeds() {
        assert_eq!(
            rules_hit(
                "crates/opt/src/x.rs",
                "fn f() { let mut rng = rand::thread_rng(); }"
            ),
            vec!["GX401"]
        );
        assert_eq!(
            rules_hit(
                "crates/opt/src/x.rs",
                "fn f() { let r = StdRng::seed_from_u64(Instant::now().elapsed().as_nanos() as u64); }"
            ),
            vec!["GX402"]
        );
        assert_eq!(
            rules_hit(
                "crates/core/src/options.rs",
                "fn f() { let seed = SystemTime::now(); }"
            ),
            vec!["GX402"]
        );
        assert!(rules_hit(
            "crates/opt/src/x.rs",
            "fn f(seed: u64) { let r = StdRng::seed_from_u64(seed); }"
        )
        .is_empty());
        // Timing (not seeding) with Instant is fine.
        assert!(rules_hit(
            "crates/runtime/src/stats.rs",
            "fn f() { let t0 = Instant::now(); }"
        )
        .is_empty());
    }

    #[test]
    fn gx403_hashmap_iteration() {
        let bad = "fn f() {\n  let mut m: HashMap<u32, u32> = HashMap::new();\n  for (k, v) in &m { record(k, v); }\n}";
        assert_eq!(rules_hit("crates/core/src/x.rs", bad), vec!["GX403"]);
        let bad2 = "fn f() {\n  let m = HashMap::new();\n  let ks: Vec<_> = m.keys().collect();\n}";
        assert_eq!(rules_hit("crates/core/src/x.rs", bad2), vec!["GX403"]);
        // Lookup-only use and BTreeMap iteration are fine.
        let ok = "fn f() {\n  let m: HashMap<u32, u32> = HashMap::new();\n  let v = m.get(&3);\n  let b: BTreeMap<u32, u32> = BTreeMap::new();\n  for kv in &b {}\n}";
        assert!(rules_hit("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn gx501_unsafe_comment() {
        assert_eq!(
            rules_hit(
                "crates/db/src/x.rs",
                "fn f(b: &[u8]) -> &str { unsafe { std::str::from_utf8_unchecked(b) } }"
            ),
            vec!["GX501"]
        );
        assert!(rules_hit(
            "crates/db/src/x.rs",
            "fn f(b: &[u8]) -> &str {\n  // SAFETY: validated as UTF-8 by the caller.\n  unsafe { std::str::from_utf8_unchecked(b) }\n}"
        )
        .is_empty());
    }

    #[test]
    fn gx601_raw_instant_now_in_traced_crates() {
        let src = "fn f() { let t0 = Instant::now(); }";
        assert_eq!(rules_hit("crates/runtime/src/x.rs", src), vec!["GX601"]);
        assert_eq!(rules_hit("crates/core/src/mla.rs", src), vec!["GX601"]);
        // Fully-qualified paths hit the same token shape.
        assert_eq!(
            rules_hit(
                "crates/core/src/search.rs",
                "fn f() { let t0 = std::time::Instant::now(); }"
            ),
            vec!["GX601"]
        );
        // The instrumentation layer itself, untimed crates, and tests are
        // exempt.
        assert!(rules_hit("crates/runtime/src/stats.rs", src).is_empty());
        assert!(rules_hit("crates/trace/src/tracer.rs", src).is_empty());
        assert!(rules_hit("crates/db/src/lock.rs", src).is_empty());
        assert!(rules_hit(
            "crates/runtime/src/x.rs",
            "#[cfg(test)]\nmod t { fn f() { let t0 = Instant::now(); } }"
        )
        .is_empty());
        // Non-clock `now` idents don't trip it.
        assert!(rules_hit("crates/runtime/src/x.rs", "fn f(now: u64) -> u64 { now }").is_empty());
    }

    #[test]
    fn gx602_metric_names_must_be_taxonomy_literals() {
        // Computed names: a variable, a format!, a helper call.
        assert_eq!(
            rules_hit(
                "crates/serve/src/x.rs",
                "fn f(t: &Tracer, name: &str) { t.counter(name).add(1); }"
            ),
            vec!["GX602"]
        );
        assert_eq!(
            rules_hit(
                "crates/serve/src/x.rs",
                "fn f(t: &Tracer, op: &str) { t.histogram(&format!(\"gptune.serve.latency_us.{op}\")).record(1); }"
            ),
            vec!["GX602"]
        );
        // Literals outside the taxonomy: wrong root, too few segments,
        // uppercase.
        assert_eq!(
            rules_hit(
                "crates/serve/src/x.rs",
                "fn f(t: &Tracer) { t.counter(\"requests\").add(1); }"
            ),
            vec!["GX602"]
        );
        assert_eq!(
            rules_hit(
                "crates/serve/src/x.rs",
                "fn f(t: &Tracer) { t.gauge(\"gptune.sessions\").set(1.0); }"
            ),
            vec!["GX602"]
        );
        assert_eq!(
            rules_hit(
                "crates/serve/src/x.rs",
                "fn f(t: &Tracer) { t.span(\"gptune.Serve.request\"); }"
            ),
            vec!["GX602"]
        );
        // The blessed shape is silent, for recording and snapshot lookups
        // alike, with any segment depth ≥ 3.
        assert!(rules_hit(
            "crates/serve/src/x.rs",
            "fn f(t: &Tracer, m: &MetricsSnapshot) {\n  t.counter(\"gptune.serve.requests\").add(1);\n  t.histogram(\"gptune.serve.latency_us.suggest\").record(9);\n  let _ = m.counter(\"gptune.serve.requests\");\n}"
        )
        .is_empty());
        // Tests, the instrumentation crate, and unrelated method names are
        // exempt.
        assert!(rules_hit(
            "crates/serve/src/x.rs",
            "#[cfg(test)]\nmod t { fn f(t: &Tracer, n: &str) { t.counter(n).add(1); } }"
        )
        .is_empty());
        assert!(rules_hit(
            "crates/trace/src/metrics.rs",
            "fn f(t: &Tracer, n: &str) { t.counter(n).add(1); }"
        )
        .is_empty());
        assert!(rules_hit(
            "crates/serve/src/x.rs",
            "fn f(t: &Tracer) { t.record_span(\"whatever\", 0, d, vec![]); }"
        )
        .is_empty());
    }

    #[test]
    fn lint_toml_allowlist_suppresses() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"GX101\"\npath = \"crates/la/src/ord.rs\"\nreason = \"comparator home\"\n",
        )
        .expect("cfg");
        let lexed = lex("fn feq(a: f64, b: f64) -> bool { a == 0.0 }");
        let ctx = FileCtx::new("crates/la/src/ord.rs", &lexed);
        assert!(check_file(&ctx, &cfg).is_empty());
    }
}
