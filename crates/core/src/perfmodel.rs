//! Coarse-performance-model incorporation (paper Sec. 3.3).
//!
//! Two mechanisms, composable with the MLA loop:
//!
//! 1. **Feature enrichment** — the model outputs `ỹ(t, x)` become extra
//!    LCM input dimensions: points `[x, ỹ(t,x)]` live in an enriched space
//!    of dimension `β + γ̃`. Feature columns are rescaled to the unit
//!    interval (signed-log first, since flop/byte counts span decades) so
//!    the ARD kernel sees comparable coordinates.
//! 2. **Hyperparameter update** — when the model is linear in unknown
//!    machine coefficients (Eq. 7: `ỹ = C_flop·t_flop + C_msg·t_msg +
//!    C_vol·t_vol`), the coefficients are re-fit to the observed samples by
//!    non-negative least squares before each modeling phase, and the fitted
//!    scalar prediction is used as a single enriched feature. The paper
//!    notes a bad coefficient estimate is worse than no model — fitting
//!    on-the-fly is the cure.

use gptune_la::{qr, Matrix};

/// Rescaler for one feature column: signed-log then min–max to `[0, 1]`.
#[derive(Debug, Clone)]
pub struct FeatureScaler {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl FeatureScaler {
    /// Fits the scaler on observed feature rows (needs ≥ 1 row).
    pub fn fit(rows: &[Vec<f64>]) -> FeatureScaler {
        assert!(!rows.is_empty(), "FeatureScaler::fit: no rows");
        let dim = rows[0].len();
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for r in rows {
            assert_eq!(r.len(), dim, "FeatureScaler::fit: ragged rows");
            for (d, &v) in r.iter().enumerate() {
                let t = signed_log(v);
                if t.is_finite() {
                    lo[d] = lo[d].min(t);
                    hi[d] = hi[d].max(t);
                }
            }
        }
        // Degenerate columns map to 0.5.
        for d in 0..dim {
            if !lo[d].is_finite() || !hi[d].is_finite() {
                lo[d] = 0.0;
                hi[d] = 0.0;
            }
        }
        FeatureScaler { lo, hi }
    }

    /// Feature dimension `γ̃`.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Transforms one feature row to unit coordinates (clamped — new
    /// acquisition points may fall outside the observed range).
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.dim());
        row.iter()
            .enumerate()
            .map(|(d, &v)| {
                let span = self.hi[d] - self.lo[d];
                if span <= 0.0 {
                    0.5
                } else {
                    ((signed_log(v) - self.lo[d]) / span).clamp(0.0, 1.0)
                }
            })
            .collect()
    }
}

/// `sign(v) · ln(1 + |v|)` — order-preserving compression for quantities
/// spanning many decades (flop counts vs message counts).
pub fn signed_log(v: f64) -> f64 {
    if v.is_nan() {
        return f64::NAN;
    }
    v.signum() * v.abs().ln_1p()
}

/// The Eq. 7 performance model with unknown non-negative machine
/// coefficients, re-fit on the fly.
#[derive(Debug, Clone)]
pub struct LinearPerfModel {
    /// Fitted coefficients (`t_flop, t_msg, t_vol, …`), one per feature.
    pub coefficients: Vec<f64>,
}

impl LinearPerfModel {
    /// Fits coefficients by non-negative least squares of `y` (or `log` —
    /// the caller passes whichever scale it models) against the feature
    /// columns. Returns `None` when the fit is impossible (too few
    /// samples, rank-deficient features).
    pub fn fit(features: &[Vec<f64>], y: &[f64]) -> Option<LinearPerfModel> {
        let n = features.len();
        if n == 0 || n != y.len() {
            return None;
        }
        let dim = features[0].len();
        if dim == 0 || n < dim {
            return None;
        }
        // Only finite rows participate.
        let rows: Vec<usize> = (0..n)
            .filter(|&i| y[i].is_finite() && features[i].iter().all(|v| v.is_finite()))
            .collect();
        if rows.len() < dim {
            return None;
        }
        let a = Matrix::from_fn(rows.len(), dim, |i, j| features[rows[i]][j]);
        let b: Vec<f64> = rows.iter().map(|&i| y[i]).collect();
        let coefficients = qr::lstsq_nonneg(&a, &b).ok()?;
        if coefficients.iter().all(|&c| gptune_la::ord::feq(c, 0.0)) {
            return None;
        }
        Some(LinearPerfModel { coefficients })
    }

    /// Predicted output `ŷ = Σ_j coef_j · feature_j`.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.coefficients.len());
        features
            .iter()
            .zip(&self.coefficients)
            .map(|(f, c)| f * c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_log_monotone_and_symmetric() {
        assert!(signed_log(10.0) > signed_log(1.0));
        assert!(signed_log(1.0) > signed_log(0.0));
        assert_eq!(signed_log(0.0), 0.0);
        assert_eq!(signed_log(-5.0), -signed_log(5.0));
    }

    #[test]
    fn scaler_roundtrip_bounds() {
        let rows = vec![vec![1.0, 1e12], vec![100.0, 1e6], vec![10.0, 1e9]];
        let s = FeatureScaler::fit(&rows);
        for r in &rows {
            let t = s.transform(r);
            assert!(t.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        // Extremes map to 0 and 1.
        assert_eq!(s.transform(&[1.0, 1e6]), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[100.0, 1e12]), vec![1.0, 1.0]);
        // Out-of-range clamps.
        assert_eq!(s.transform(&[1e9, 1.0]), vec![1.0, 0.0]);
    }

    #[test]
    fn scaler_degenerate_column() {
        let rows = vec![vec![7.0], vec![7.0]];
        let s = FeatureScaler::fit(&rows);
        assert_eq!(s.transform(&[7.0]), vec![0.5]);
        assert_eq!(s.transform(&[123.0]), vec![0.5]);
    }

    #[test]
    fn scaler_ignores_nan_rows_in_range() {
        let rows = vec![vec![f64::NAN], vec![1.0], vec![3.0]];
        let s = FeatureScaler::fit(&rows);
        let t = s.transform(&[2.0]);
        assert!(t[0] > 0.0 && t[0] < 1.0);
    }

    #[test]
    fn linear_model_recovers_coefficients() {
        // y = 2·f0 + 0.5·f1, exactly.
        let features: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![(i + 1) as f64, ((i * 3) % 7) as f64])
            .collect();
        let y: Vec<f64> = features.iter().map(|f| 2.0 * f[0] + 0.5 * f[1]).collect();
        let m = LinearPerfModel::fit(&features, &y).unwrap();
        assert!((m.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((m.coefficients[1] - 0.5).abs() < 1e-9);
        assert!((m.predict(&[4.0, 2.0]) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn linear_model_clamps_negative_physics() {
        // A feature anti-correlated with runtime must not get a negative
        // machine coefficient.
        let features = vec![
            vec![1.0, 5.0],
            vec![2.0, 4.0],
            vec![3.0, 3.0],
            vec![4.0, 2.0],
            vec![5.0, 1.0],
        ];
        let y = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let m = LinearPerfModel::fit(&features, &y).unwrap();
        assert!(m.coefficients.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn linear_model_insufficient_data() {
        assert!(LinearPerfModel::fit(&[vec![1.0, 2.0]], &[1.0]).is_none());
        assert!(LinearPerfModel::fit(&[], &[]).is_none());
    }

    #[test]
    fn linear_model_skips_nonfinite_samples() {
        let features = vec![vec![1.0], vec![2.0], vec![3.0], vec![f64::NAN]];
        let y = vec![2.0, 4.0, 6.0, 100.0];
        let m = LinearPerfModel::fit(&features, &y).unwrap();
        assert!((m.coefficients[0] - 2.0).abs() < 1e-9);
    }
}
