//! Fig. 6 — GPTune vs OpenTuner vs HpBandSter (paper Sec. 6.6).
//!
//! **Left**: PDGEQRF, δ = 10 random tasks `m, n < 20000`, ε_tot = 10,
//! 2048 cores. Paper: GPTune beats OpenTuner by up to 4.9× on 7/10 tasks
//! and HpBandSter by up to 2.9× on 8/10.
//!
//! **Right**: SuperLU_DIST factorization time, δ = 7 PARSEC matrices,
//! ε_tot = 20, 1024 cores. Paper: up to 1.6× vs OpenTuner (6/7) and 1.3×
//! vs HpBandSter (7/7).
//!
//! The harness reproduces both at the paper's task counts and budgets;
//! baselines run per task (they are single-task tuners).

use gptune::apps::{HpcApp, MachineModel, PdgeqrfApp, SuperluApp, PARSEC_MATRICES};
use gptune::baselines::{HpBandSterLike, OpenTunerLike, Tuner};
use gptune::core::{metrics, mla, MlaOptions};
use gptune::{problem_from_app, problem_from_app_objective};
use gptune_bench::{banner, random_qr_tasks};
use std::sync::Arc;

fn opts(budget: usize, seed: u64) -> MlaOptions {
    let mut o = MlaOptions::default().with_budget(budget).with_seed(seed);
    o.lcm.n_starts = 3;
    o.lcm.lbfgs.max_iters = 25;
    o
}

fn compare(
    label: &str,
    problem: &gptune::core::TuningProblem,
    task_names: &[String],
    budget: usize,
    seed: u64,
) {
    let gp = mla::tune(problem, &opts(budget, seed));
    let gp_best: Vec<f64> = gp.per_task.iter().map(|t| t.best_value).collect();

    let mut ot_best = Vec::new();
    let mut hb_best = Vec::new();
    for i in 0..problem.n_tasks() {
        ot_best.push(
            OpenTunerLike::default()
                .tune_task(problem, i, budget, seed + 7000 + i as u64)
                .best_value,
        );
        hb_best.push(
            HpBandSterLike::default()
                .tune_task(problem, i, budget, seed + 9000 + i as u64)
                .best_value,
        );
    }

    let r_ot = metrics::best_ratio(&gp_best, &ot_best);
    let r_hb = metrics::best_ratio(&gp_best, &hb_best);
    println!("\n{label}");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "task", "GPTune", "OpenTuner", "HpBandSter", "OT/GPT", "HB/GPT"
    );
    for i in 0..gp_best.len() {
        println!(
            "{:<28} {:>9.4}s {:>9.4}s {:>9.4}s {:>9.2} {:>9.2}",
            task_names[i], gp_best[i], ot_best[i], hb_best[i], r_ot[i], r_hb[i]
        );
    }
    let ot_wins = r_ot.iter().filter(|&&r| r >= 1.0).count();
    let hb_wins = r_hb.iter().filter(|&&r| r >= 1.0).count();
    let ot_max = r_ot.iter().cloned().fold(0.0, f64::max);
    let hb_max = r_hb.iter().cloned().fold(0.0, f64::max);
    println!(
        "  GPTune ≥ OpenTuner on {ot_wins}/{} tasks (max ratio {ot_max:.1}x); ≥ HpBandSter on {hb_wins}/{} (max {hb_max:.1}x)",
        gp_best.len(),
        gp_best.len()
    );
}

fn main() {
    banner(
        "Fig. 6 — GPTune vs OpenTuner vs HpBandSter",
        "PDGEQRF δ=10 ε_tot=10 (2048 cores); SuperLU_DIST δ=7 PARSEC ε_tot=20 (1024 cores)",
        "identical task counts/budgets on the simulated applications",
    );

    // Left: PDGEQRF.
    let qr_app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(MachineModel::cori(64), 20_000));
    let qr_tasks = random_qr_tasks(10, 20_000, 61);
    let names: Vec<String> = qr_tasks
        .iter()
        .map(|t| format!("m={}, n={}", t[0].as_int(), t[1].as_int()))
        .collect();
    let qr_problem = problem_from_app(Arc::clone(&qr_app), qr_tasks);
    compare("[left] PDGEQRF, ε_tot = 10:", &qr_problem, &names, 10, 71);

    // Right: SuperLU_DIST (time objective only, as in Fig. 6).
    let slu_app: Arc<dyn HpcApp> = Arc::new(SuperluApp::new(MachineModel::cori(32)));
    let slu_tasks = SuperluApp::tasks(7);
    let slu_names: Vec<String> = PARSEC_MATRICES[..7]
        .iter()
        .map(|m| m.name.to_string())
        .collect();
    let slu_problem = problem_from_app_objective(Arc::clone(&slu_app), slu_tasks, 0);
    compare(
        "[right] SuperLU_DIST factorization time, ε_tot = 20:",
        &slu_problem,
        &slu_names,
        20,
        73,
    );

    println!("\nShape check vs paper: GPTune wins the large majority of tasks against both");
    println!("baselines at these small budgets, with larger margins on PDGEQRF than SuperLU.");
}
