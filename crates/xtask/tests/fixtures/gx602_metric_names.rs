//! GX602 fixture: computed and off-taxonomy span/metric names.
use gptune_trace::Tracer;

pub fn computed_name(tracer: &Tracer, tenant: &str) {
    // GX602: format!-built family — unbounded cardinality.
    tracer
        .counter(&format!("gptune.serve.tenant.{tenant}.requests"))
        .add(1);
}

pub fn name_through_variable(tracer: &Tracer, name: &str) {
    tracer.histogram(name).record(7); // GX602: name not a literal
}

pub fn off_taxonomy_literals(tracer: &Tracer) {
    tracer.counter("requests").add(1); // GX602: no gptune. root
    tracer.gauge("gptune.sessions").set(1.0); // GX602: only two segments
    tracer.span("gptune.Serve.request"); // GX602: uppercase segment
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_names_in_tests_are_exempt() {
        let t = Tracer::ring(8);
        let n = String::from("anything goes here");
        t.counter(&n).add(1);
    }
}
