//! Integration tests for the shared history database (`gptune-db`):
//! kill-and-resume determinism, concurrent writers, warm starts, TLA from
//! the archive, and torn-journal recovery — the production properties the
//! GPTune workflow needs from its archive.

use gptune::core::{mla, mla_mo, runlog, MlaOptions, TuningProblem};
use gptune::db::{Db, DbEntry, DbRecord, DbValue, Provenance, Query};
use gptune::space::{Config, Param, Space, Value};
use std::path::PathBuf;

fn tmp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gptune_it_db_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Smooth 1-D family: minimum at x = 0.2 + 0.06·t.
fn toy_problem(delta: usize) -> TuningProblem {
    let ts = Space::builder().param(Param::real("t", 0.0, 10.0)).build();
    let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
    let tasks: Vec<Config> = (0..delta).map(|i| vec![Value::Real(i as f64)]).collect();
    TuningProblem::new("it-db-toy", ts, ps, tasks, |t, x, _| {
        let opt = 0.2 + 0.06 * t[0].as_real();
        vec![1.0 + (x[0].as_real() - opt).powi(2)]
    })
}

fn toy_mo_problem() -> TuningProblem {
    let ts = Space::builder().param(Param::real("t", 0.0, 4.0)).build();
    let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
    TuningProblem::new(
        "it-db-toy-mo",
        ts,
        ps,
        vec![vec![Value::Real(0.0)]],
        |_, x, _| {
            let xv = x[0].as_real();
            vec![1.0 + (xv - 0.2).powi(2), 1.0 + (xv - 0.8).powi(2)]
        },
    )
    .with_objectives(2)
}

fn fast_opts(budget: usize) -> MlaOptions {
    let mut o = MlaOptions::default().with_budget(budget).with_seed(7);
    o.lcm.n_starts = 2;
    o.lcm.lbfgs.max_iters = 20;
    o.pso.particles = 16;
    o.pso.iters = 10;
    o.nsga.population = 16;
    o.nsga.generations = 8;
    o.log_objective = false;
    o
}

/// The tentpole property: a run killed mid-budget and resumed with the
/// same options converges to the IDENTICAL result (Popt, Oopt, full
/// trajectory) as the same-seed run that was never interrupted.
#[test]
fn interrupted_mla_resumes_to_identical_result() {
    let root = tmp_root("resume");
    let p = toy_problem(2);
    let budget = 10;

    // Ground truth: uninterrupted, no database involved at all.
    let full = mla::tune(&p, &fast_opts(budget));
    assert!(full.completed);

    // Interrupted: at most 2 MLA iterations per process, checkpoint every
    // iteration, resume until done — simulating repeated walltime kills.
    let mut o = fast_opts(budget).with_db(&root).checkpoint_every(1);
    o.stop_after_iterations = Some(2);
    let mut last = mla::tune(&p, &o);
    assert!(!last.completed, "budget too small to need a resume");
    let mut resumes = 0;
    while !last.completed {
        last = mla::tune(&p, &o);
        resumes += 1;
        assert!(resumes < 20, "resume loop did not converge");
    }
    assert!(resumes >= 1);

    assert_eq!(last.per_task.len(), full.per_task.len());
    for (a, b) in last.per_task.iter().zip(&full.per_task) {
        assert_eq!(a.best_config, b.best_config, "Popt differs after resume");
        assert_eq!(a.best_value, b.best_value, "Oopt differs after resume");
        assert_eq!(a.samples, b.samples, "trajectory differs after resume");
    }
    // Accumulated stats cover the whole run, not just the last process.
    assert_eq!(last.stats.n_evals, full.stats.n_evals);

    // Completion archived the run and cleared the checkpoint.
    let db = Db::open(&root).unwrap();
    let sig = gptune::core::problem_signature(&p);
    assert!(db.load_checkpoint(sig, o.seed).unwrap().is_none());
    let archived = db.query(&p.name, sig, &Query::default()).unwrap();
    assert_eq!(archived.len(), budget * 2, "every eval archived once");
    let _ = std::fs::remove_dir_all(&root);
}

/// Same property for the multi-objective loop (Algorithm 2).
#[test]
fn interrupted_mla_mo_resumes_to_identical_result() {
    let root = tmp_root("resume_mo");
    let p = toy_mo_problem();
    let mut base = fast_opts(12);
    base.k_per_iter = 2;

    let full = mla_mo::tune_multiobjective(&p, &base);
    assert!(full.completed);

    let mut o = base.clone().with_db(&root).checkpoint_every(1);
    o.stop_after_iterations = Some(1);
    let mut last = mla_mo::tune_multiobjective(&p, &o);
    assert!(!last.completed);
    let mut resumes = 0;
    while !last.completed {
        last = mla_mo::tune_multiobjective(&p, &o);
        resumes += 1;
        assert!(resumes < 20, "resume loop did not converge");
    }

    for (a, b) in last.per_task.iter().zip(&full.per_task) {
        assert_eq!(a.samples, b.samples, "trajectory differs after resume");
        assert_eq!(
            a.pareto_front.len(),
            b.pareto_front.len(),
            "Pareto front differs after resume"
        );
        for (pa, pb) in a.pareto_front.iter().zip(&b.pareto_front) {
            assert_eq!(pa.config, pb.config);
            assert_eq!(pa.objectives, pb.objectives);
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Two threads appending to one shared archive: no record may be lost
/// (the advisory lock serializes appends).
#[test]
fn concurrent_writers_lose_no_records() {
    let root = tmp_root("concurrent");
    let per_thread = 40;
    let mut handles = Vec::new();
    for w in 0..2u64 {
        let root = root.clone();
        handles.push(std::thread::spawn(move || {
            let db = Db::open(&root).unwrap();
            for i in 0..per_thread {
                let rec = DbEntry::Eval(DbRecord {
                    problem: "shared".into(),
                    sig: 0xc0ffee,
                    task: vec![DbValue::Int(w as i64)],
                    config: vec![DbValue::Int(i)],
                    outputs: vec![(w as f64) + (i as f64) / 100.0],
                    prov: Provenance {
                        seed: w,
                        run: format!("writer{w}"),
                        machine: None,
                    },
                });
                db.append(&[rec]).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let db = Db::open(&root).unwrap();
    let (entries, report) = db.load("shared", 0xc0ffee).unwrap();
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(entries.len() as i64, 2 * per_thread, "records were lost");
    // All distinct: nothing overwrote anything.
    let keys: std::collections::HashSet<String> = entries.iter().map(|e| e.dedup_key()).collect();
    assert_eq!(keys.len() as i64, 2 * per_thread);
    let _ = std::fs::remove_dir_all(&root);
}

/// Warm starts preload archived evaluations as free observations: the new
/// run still performs its full own budget, and its reported samples are
/// its own evaluations only.
#[test]
fn warm_start_preloads_archive_without_counting_budget() {
    let root = tmp_root("warm");
    let p = toy_problem(1);
    let budget = 6;

    // First run populates the archive.
    let o1 = fast_opts(budget).with_db(&root);
    let r1 = mla::tune(&p, &o1);
    assert!(r1.completed);

    // Second run, different seed, warm-started from the archive.
    let mut o2 = fast_opts(budget).with_db(&root).with_seed(99);
    o2.warm_start_from_db = true;
    let r2 = mla::tune(&p, &o2);
    assert!(r2.completed);
    assert_eq!(
        r2.per_task[0].samples.len(),
        budget,
        "archived records must not count against the budget or leak into samples"
    );
    assert_eq!(r2.stats.n_evals, budget, "preloaded evals cost nothing");

    // Both runs' fresh evals are archived.
    let db = Db::open(&root).unwrap();
    let sig = gptune::core::problem_signature(&p);
    assert_eq!(
        db.query(&p.name, sig, &Query::default()).unwrap().len(),
        2 * budget
    );
    assert_eq!(db.run_summaries(&p.name, sig).unwrap().len(), 2);
    let _ = std::fs::remove_dir_all(&root);
}

/// TLA-2 fed straight from the archive: records of previously tuned tasks
/// transfer to a new task through the shared journal.
#[test]
fn transfer_tune_reads_archive() {
    let root = tmp_root("tla");
    // Tune two tasks and archive them.
    let sources = toy_problem(2);
    let r = mla::tune(&sources, &fast_opts(8).with_db(&root));
    assert!(r.completed);

    // A third task of the same problem family (same name + spaces → same
    // journal; the signature deliberately excludes the task list).
    let extended = toy_problem(3);
    let budget = 4;
    let (tr, stats) =
        gptune::core::transfer_tune_from_db(&extended, &root, 2, &fast_opts(budget)).unwrap();
    assert_eq!(tr.samples.len(), budget);
    assert_eq!(stats.n_evals, budget, "archived records are free");
    assert!(tr.best_value.is_finite());
    // With near-optimal sources one task away, 4 evals should land close
    // to the true optimum x* = 0.2 + 0.06·2 = 0.32.
    assert!(
        (tr.best_config[0].as_real() - 0.32).abs() < 0.2,
        "best x {}",
        tr.best_config[0].as_real()
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Crash tolerance end to end: a journal torn mid-append loses at most the
/// final partial record, and the archive keeps working.
#[test]
fn torn_journal_tail_recovers_all_but_last_record() {
    let root = tmp_root("torn");
    let p = toy_problem(1);
    let r = mla::tune(&p, &fast_opts(5).with_db(&root));
    assert!(r.completed);

    let db = Db::open(&root).unwrap();
    let sig = gptune::core::problem_signature(&p);
    let journal = db.journal_path(&p.name, sig);
    let (before, _) = db.load(&p.name, sig).unwrap();

    // Simulate a crash mid-append: chop the file inside its final line.
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 10]).unwrap();

    let (after, report) = db.load(&p.name, sig).unwrap();
    assert_eq!(after.len(), before.len() - 1, "lost more than the tail");
    assert!(report.dropped_torn_tail);
    assert_eq!(report.n_corrupt_interior, 0);
    assert_eq!(&before[..after.len()], &after[..], "prefix must survive");

    // The archive still accepts appends and compaction heals the tear.
    db.append(&[DbEntry::Eval(DbRecord {
        problem: p.name.clone(),
        sig,
        task: vec![DbValue::Real(0.0)],
        config: vec![DbValue::Real(0.5)],
        outputs: vec![1.0],
        prov: Provenance::default(),
    })])
    .unwrap();
    let (kept, _) = db.compact(&p.name, sig).unwrap();
    assert_eq!(kept, after.len() + 1);
    let (healed, report) = db.load(&p.name, sig).unwrap();
    assert!(report.is_clean());
    assert_eq!(healed.len(), kept);
    let _ = std::fs::remove_dir_all(&root);
}

/// The archived runlog view renders one stats line per archived run.
#[test]
fn archived_runlog_lists_every_run() {
    let root = tmp_root("runlog");
    let p = toy_problem(1);
    for seed in [1, 2] {
        let r = mla::tune(&p, &fast_opts(5).with_db(&root).with_seed(seed));
        assert!(r.completed);
    }
    let log = runlog::format_archived_runs(&p, &root).unwrap();
    assert_eq!(log.matches("stats:").count(), 2, "{log}");
    assert!(log.contains("seed1-eps5-d1"), "{log}");
    assert!(log.contains("seed2-eps5-d1"), "{log}");
    let _ = std::fs::remove_dir_all(&root);
}
