// GX303 clean fixture: deadlines are armed through the shared helper
// before the first blocking operation — the summary-based check accepts
// arming via any recognized armer, not just a literal set_read_timeout
// within N lines.

fn serve_one(listener: &TcpListener, opts: &ServeOptions) {
    let (mut stream, _) = listener.accept().unwrap();
    arm_deadlines(&stream, opts);
    let mut buf = [0u8; 4];
    stream.read_exact(&mut buf).unwrap();
}

fn arm_deadlines(stream: &TcpStream, opts: &ServeOptions) {
    let _ = stream.set_read_timeout(opts.io_timeout);
    let _ = stream.set_write_timeout(opts.io_timeout);
}
