//! The durable session store: server-side session state in the shared
//! `gptune-db` archive.
//!
//! Every tenant/problem session owns one *problem* in the archive, named
//! `"{tenant}::{problem}"` so tenants stay isolated on disk exactly as
//! they are in the session table. Two kinds of files hold a session:
//!
//! * a **meta file** (`<key>.session.json`, written atomically) carrying
//!   the structural spec, the session options, and the suggest/refit
//!   counters — everything [`gptune_core::TunerSession`] needs beyond the
//!   history to continue the *identical* suggestion stream;
//! * the ordinary **sharded journal** of that problem (live JSONL write
//!   head plus any archive shards), holding one eval record per report.
//!
//! Reports are appended to the journal *before* the server acknowledges
//! them (see [`crate::server`]), so the journal — not the meta file — is
//! the source of truth for history. The meta file is only rewritten at
//! session-lifecycle points (open, evict, drain), which keeps the
//! per-report cost at one fsynced journal append.
//!
//! Restore is the inverse: read the meta, fold the sharded journal via
//! [`gptune_db::shard::load_all`] (which tolerates torn tails and
//! CRC-failed records, reported per record), and replay the rows into a
//! fresh session. A kill -9 between append and acknowledge costs at most
//! one *acknowledged* report — which is zero, because unacknowledged
//! reports are the client's to retry.

use crate::protocol::SessionOptions;
use crate::spec::ProblemSpec;
use gptune_core::ModelState;
use gptune_db::json::{self, Json};
use gptune_db::{
    atomic_write, fnv1a, journal, sanitize, shard, DbEntry, DbRecord, DbValue, LockOptions,
    Provenance, RecoveryReport,
};
use gptune_space::{Config, Value};
use std::io;
use std::path::{Path, PathBuf};

/// Converts a space value to its journal form.
pub(crate) fn value_to_db(v: &Value) -> DbValue {
    match v {
        Value::Real(x) => DbValue::Real(*x),
        Value::Int(x) => DbValue::Int(*x),
        Value::Cat(k) => DbValue::Cat(*k),
    }
}

/// Converts a journal value back to its space form.
pub(crate) fn value_from_db(v: &DbValue) -> Value {
    match v {
        DbValue::Real(x) => Value::Real(*x),
        DbValue::Int(x) => Value::Int(*x),
        DbValue::Cat(k) => Value::Cat(*k),
    }
}

/// A session as recovered from the archive.
pub struct StoredSession {
    /// Structural problem description at save time.
    pub spec: ProblemSpec,
    /// Session options at save time (the seed drives the RNG stream).
    pub opts: SessionOptions,
    /// Suggestions handed out before the save.
    pub n_suggested: u64,
    /// Surrogate refits performed before the save.
    pub n_refits: u64,
    /// Archived `(task, config, outputs)` rows in append order.
    pub history: Vec<(usize, Config, Vec<f64>)>,
    /// Incremental-surrogate replay recipe saved with the meta, when the
    /// session ran an incremental refit schedule (`None` otherwise, and
    /// for meta files written before this field existed).
    pub model_state: Option<ModelState>,
    /// What recovery saw while folding the journal (torn tails, CRC
    /// failures); clean on the happy path.
    pub recovery: RecoveryReport,
}

/// Server-side archive of tuner sessions, rooted at one directory.
pub struct SessionStore {
    root: PathBuf,
}

/// Encodes a [`ModelState`] for the meta file. `u64` counters use the
/// decimal-string encoding (exact beyond 2^53); floats use the shortest
/// round-trip form, so the replayed fit is bit-identical.
fn model_state_to_json(ms: &ModelState) -> Json {
    Json::Obj(vec![
        ("n_full".into(), Json::from_u64(ms.n_full as u64)),
        ("full_seed".into(), Json::from_u64(ms.full_seed)),
        (
            "updates_since_full".into(),
            Json::from_u64(ms.updates_since_full),
        ),
        (
            "warm".into(),
            match &ms.warm {
                Some(w) => Json::Arr(w.iter().map(|v| Json::from_f64(*v)).collect()),
                None => Json::Null,
            },
        ),
        (
            "y".into(),
            Json::Arr(ms.y.iter().map(|v| Json::from_f64(*v)).collect()),
        ),
    ])
}

/// Decodes a meta-file [`ModelState`]; `None` on any missing or
/// ill-typed field (the session then restores via a lazy full refit).
fn model_state_from_json(j: &Json) -> Option<ModelState> {
    let floats = |v: &Json| -> Option<Vec<f64>> { v.as_arr()?.iter().map(Json::as_f64).collect() };
    let warm = match j.get("warm") {
        None | Some(Json::Null) => None,
        Some(w) => Some(floats(w)?),
    };
    Some(ModelState {
        n_full: j.get("n_full")?.as_u64()? as usize,
        full_seed: j.get("full_seed")?.as_u64()?,
        updates_since_full: j.get("updates_since_full")?.as_u64()?,
        warm,
        y: floats(j.get("y")?)?,
    })
}

impl SessionStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<SessionStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(SessionStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The archive-problem name of a session: tenant-qualified so two
    /// tenants tuning the same problem never share journal files.
    pub fn problem_key(tenant: &str, name: &str) -> String {
        format!("{tenant}::{name}")
    }

    /// The problem signature the store journals under.
    pub fn sig_of(spec: &ProblemSpec) -> u64 {
        fnv1a(spec.to_json().to_string().as_bytes())
    }

    fn meta_path(&self, tenant: &str, name: &str) -> PathBuf {
        self.root.join(format!(
            "{}.session.json",
            sanitize(&Self::problem_key(tenant, name))
        ))
    }

    /// Writes the session meta file atomically. Called at lifecycle
    /// points (open, evict, drain) — not per report.
    pub fn save_meta(
        &self,
        tenant: &str,
        spec: &ProblemSpec,
        opts: &SessionOptions,
        n_suggested: u64,
        n_refits: u64,
        model_state: Option<&ModelState>,
    ) -> io::Result<()> {
        let mut fields = vec![
            ("v".into(), Json::Int(1)),
            ("kind".into(), Json::Str("serve-session".into())),
            ("tenant".into(), Json::Str(tenant.into())),
            ("name".into(), Json::Str(spec.name.clone())),
            (
                "sig".into(),
                Json::Str(format!("{:016x}", Self::sig_of(spec))),
            ),
            ("spec".into(), spec.to_json()),
            ("opts".into(), opts.to_json()),
            ("n_suggested".into(), Json::from_u64(n_suggested)),
            ("n_refits".into(), Json::from_u64(n_refits)),
        ];
        if let Some(ms) = model_state {
            fields.push(("model_state".into(), model_state_to_json(ms)));
        }
        let j = Json::Obj(fields);
        let mut text = j.to_string();
        text.push('\n');
        atomic_write(&self.meta_path(tenant, &spec.name), text.as_bytes())
    }

    /// Appends report rows to the session's live journal (fsynced before
    /// return — the durability point of the report path).
    pub fn append_reports(
        &self,
        tenant: &str,
        spec: &ProblemSpec,
        opts: &SessionOptions,
        rows: &[(usize, Config, Vec<f64>)],
    ) -> io::Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let problem = Self::problem_key(tenant, &spec.name);
        let sig = Self::sig_of(spec);
        let mut entries = Vec::with_capacity(rows.len());
        for (task, config, outputs) in rows {
            let task_cfg = spec.tasks.get(*task).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("task {task} out of range for {problem:?}"),
                )
            })?;
            entries.push(DbEntry::Eval(DbRecord {
                problem: problem.clone(),
                sig,
                task: task_cfg.iter().map(value_to_db).collect(),
                config: config.iter().map(value_to_db).collect(),
                outputs: outputs.clone(),
                prov: Provenance {
                    seed: opts.seed,
                    run: "serve-archive".into(),
                    machine: None,
                },
            }));
        }
        let path = shard::live_journal_path(&self.root, &problem, sig);
        journal::append(&path, &entries, &LockOptions::default()).map(|_| ())
    }

    /// Loads a session by its table key components. `Ok(None)` when the
    /// store has never seen this session (or it was purged).
    pub fn load(&self, tenant: &str, name: &str) -> io::Result<Option<StoredSession>> {
        let meta_path = self.meta_path(tenant, name);
        let text = match std::fs::read_to_string(&meta_path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let bad = |msg: String| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("session meta {}: {msg}", meta_path.display()),
            )
        };
        let j = json::parse(&text).map_err(|e| bad(e.to_string()))?;
        let spec_json = j.get("spec").ok_or_else(|| bad("missing spec".into()))?;
        let spec = ProblemSpec::from_json(spec_json).map_err(bad)?;
        let opts = j
            .get("opts")
            .map(SessionOptions::from_json)
            .unwrap_or_default();
        let n_suggested = j.get("n_suggested").and_then(Json::as_u64).unwrap_or(0);
        let n_refits = j.get("n_refits").and_then(Json::as_u64).unwrap_or(0);
        // Absent or malformed state degrades to a lazy full refit.
        let model_state = j.get("model_state").and_then(model_state_from_json);

        // The journal — keyed by the *recomputed* signature, so a meta
        // file whose spec was hand-edited resolves to its own (empty)
        // journal instead of someone else's rows.
        let problem = Self::problem_key(tenant, name);
        let sig = Self::sig_of(&spec);
        let (entries, recovery) = shard::load_all(&self.root, &problem, sig)?;
        let mut history = Vec::new();
        for entry in entries {
            let DbEntry::Eval(rec) = entry else { continue };
            if rec.problem != problem || rec.sig != sig {
                continue;
            }
            let task_cfg: Config = rec.task.iter().map(value_from_db).collect();
            // A row whose task vanished from the spec (it can't: the spec
            // is immutable per signature) is skipped, not fatal.
            let Some(task) = spec.tasks.iter().position(|t| *t == task_cfg) else {
                continue;
            };
            let config: Config = rec.config.iter().map(value_from_db).collect();
            history.push((task, config, rec.outputs));
        }
        Ok(Some(StoredSession {
            spec,
            opts,
            n_suggested,
            n_refits,
            history,
            model_state,
            recovery,
        }))
    }

    /// Removes every trace of a session (meta, live journal, manifest,
    /// shards). `Close` calls this so a re-open starts genuinely fresh.
    pub fn purge(&self, tenant: &str, name: &str) -> io::Result<()> {
        let Some(stored) = self.load(tenant, name)? else {
            return Ok(());
        };
        let problem = Self::problem_key(tenant, name);
        let sig = Self::sig_of(&stored.spec);
        let mut doomed = vec![
            shard::live_journal_path(&self.root, &problem, sig),
            shard::manifest_path(&self.root, &problem, sig),
            self.meta_path(tenant, name),
        ];
        if let Some(manifest) = gptune_db::ShardManifest::load(&self.root, &problem, sig)? {
            for info in &manifest.shards {
                doomed.push(self.root.join(&info.file));
            }
        }
        for path in doomed {
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_space::Param;

    fn tmp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "gptune_serve_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn spec() -> ProblemSpec {
        ProblemSpec {
            name: "toy".into(),
            task_params: vec![Param::real("t", 0.0, 1.0)],
            tuning_params: vec![Param::real("x", 0.0, 1.0)],
            tasks: vec![vec![Value::Real(0.25)], vec![Value::Real(0.75)]],
            n_objectives: 1,
        }
    }

    fn opts() -> SessionOptions {
        SessionOptions {
            seed: 11,
            n_initial: Some(2),
        }
    }

    #[test]
    fn meta_and_journal_roundtrip() {
        let root = tmp_root("roundtrip");
        let store = SessionStore::new(&root).unwrap();
        let rows = vec![
            (0usize, vec![Value::Real(0.1)], vec![1.0]),
            (1usize, vec![Value::Real(0.9)], vec![2.0]),
            (0usize, vec![Value::Real(0.3)], vec![3.0]),
        ];
        store
            .save_meta("acme", &spec(), &opts(), 5, 2, None)
            .unwrap();
        store
            .append_reports("acme", &spec(), &opts(), &rows)
            .unwrap();
        let stored = store.load("acme", "toy").unwrap().expect("stored");
        assert_eq!(stored.spec, spec());
        assert_eq!(stored.opts, opts());
        assert_eq!(stored.n_suggested, 5);
        assert_eq!(stored.n_refits, 2);
        assert_eq!(stored.history, rows, "rows come back in append order");
        assert!(stored.recovery.is_clean());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn model_state_roundtrips_exactly_and_old_metas_load_without_it() {
        let root = tmp_root("modelstate");
        let store = SessionStore::new(&root).unwrap();
        // Awkward values on purpose: a seed beyond 2^53, subnormal-ish and
        // negative floats — the replay recipe must come back bit-exact.
        let ms = ModelState {
            n_full: 7,
            full_seed: u64::MAX - 11,
            updates_since_full: 3,
            warm: Some(vec![-1.5, 0.1, 3.0e-300, 7.25]),
            y: vec![0.1 + 0.2, -0.0, 42.0],
        };
        store
            .save_meta("acme", &spec(), &opts(), 9, 4, Some(&ms))
            .unwrap();
        let stored = store.load("acme", "toy").unwrap().expect("stored");
        let back = stored.model_state.expect("model state saved");
        assert_eq!(back, ms);
        assert_eq!(
            back.y[0].to_bits(),
            ms.y[0].to_bits(),
            "floats survive the meta file bit-for-bit"
        );
        // A meta written without the field (pre-incremental format, or an
        // always-full schedule) loads as `None`.
        store
            .save_meta("acme", &spec(), &opts(), 9, 4, None)
            .unwrap();
        let stored = store.load("acme", "toy").unwrap().expect("stored");
        assert!(stored.model_state.is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_session_loads_as_none() {
        let root = tmp_root("missing");
        let store = SessionStore::new(&root).unwrap();
        assert!(store.load("ghost", "toy").unwrap().is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tenants_are_isolated_on_disk() {
        let root = tmp_root("tenants");
        let store = SessionStore::new(&root).unwrap();
        for tenant in ["alpha", "beta"] {
            store
                .save_meta(tenant, &spec(), &opts(), 0, 0, None)
                .unwrap();
        }
        store
            .append_reports(
                "alpha",
                &spec(),
                &opts(),
                &[(0, vec![Value::Real(0.5)], vec![7.0])],
            )
            .unwrap();
        let a = store.load("alpha", "toy").unwrap().unwrap();
        let b = store.load("beta", "toy").unwrap().unwrap();
        assert_eq!(a.history.len(), 1);
        assert_eq!(b.history.len(), 0, "no cross-tenant leak");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn purge_removes_every_file() {
        let root = tmp_root("purge");
        let store = SessionStore::new(&root).unwrap();
        store.save_meta("t", &spec(), &opts(), 1, 0, None).unwrap();
        store
            .append_reports(
                "t",
                &spec(),
                &opts(),
                &[(0, vec![Value::Real(0.2)], vec![1.0])],
            )
            .unwrap();
        assert!(store.load("t", "toy").unwrap().is_some());
        store.purge("t", "toy").unwrap();
        assert!(store.load("t", "toy").unwrap().is_none());
        // The root holds no leftover session files.
        let leftovers: Vec<_> = std::fs::read_dir(&root).unwrap().collect();
        assert!(leftovers.is_empty(), "leftovers: {leftovers:?}");
        // Purging twice is fine.
        store.purge("t", "toy").unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn duplicate_journal_rows_collapse_on_load() {
        // At-least-once delivery can journal the same report twice (the
        // retry after a lost acknowledgement). Recovery must fold them.
        let root = tmp_root("dups");
        let store = SessionStore::new(&root).unwrap();
        store.save_meta("t", &spec(), &opts(), 2, 0, None).unwrap();
        let row = (0usize, vec![Value::Real(0.4)], vec![4.0]);
        store
            .append_reports("t", &spec(), &opts(), &[row.clone()])
            .unwrap();
        store
            .append_reports("t", &spec(), &opts(), &[row.clone()])
            .unwrap();
        let stored = store.load("t", "toy").unwrap().unwrap();
        assert_eq!(stored.history, vec![row]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_journal_tail_is_survivable_and_reported() {
        let root = tmp_root("torn");
        let store = SessionStore::new(&root).unwrap();
        store.save_meta("t", &spec(), &opts(), 1, 0, None).unwrap();
        store
            .append_reports(
                "t",
                &spec(),
                &opts(),
                &[(0, vec![Value::Real(0.6)], vec![6.0])],
            )
            .unwrap();
        // Simulate a crash mid-append: a torn half-line at the tail.
        let path = shard::live_journal_path(
            &root,
            &SessionStore::problem_key("t", "toy"),
            SessionStore::sig_of(&spec()),
        );
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"v\":1,\"kind\":\"eval\",\"proble");
        std::fs::write(&path, &bytes).unwrap();
        let stored = store.load("t", "toy").unwrap().unwrap();
        assert_eq!(stored.history.len(), 1, "intact row survives");
        assert!(stored.recovery.dropped_torn_tail);
        assert!(!stored.recovery.errors.is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }
}
