//! Transfer Learning Autotuning (TLA).
//!
//! The paper's goal 3 is to "support archiving and reusing tuning data from
//! multiple executions to allow tuning to improve over time"; the GPTune
//! Users Guide develops this into *TLA*: tuning a **new** task by reusing
//! archived samples of previously tuned tasks. Two mechanisms:
//!
//! * [`predict_transfer_config`] (TLA-1): zero new evaluations — predict a
//!   good configuration for the target task by inverse-distance-weighted
//!   regression of the source tasks' optima over the normalized task space;
//! * [`transfer_tune`] (TLA-2): run the MLA loop for the target task only,
//!   with the archived source samples folded into the joint LCM, so the
//!   multitask surrogate transfers the sources' structure to the target
//!   from the very first iteration.

use crate::db_bridge;
use crate::history::History;
use crate::mla::{
    build_inputs, evaluate_batch, load_known_failures, search_task, transform_objective,
    Evaluations, TaskResult,
};
use crate::options::MlaOptions;
use crate::problem::TuningProblem;
use gptune_db::CheckpointKind;
use gptune_gp::{IncrementalLcm, LcmFitOptions};
use gptune_runtime::{with_pool, Phase, PhaseTimer};
use gptune_space::{sampling, Config};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// Seed-space tag separating TLA randomness from the MLA streams.
const TLA_SEED_TAG: u64 = 0x7177_11aa;

/// TLA-1: predicts a configuration for `target_idx` from the best archived
/// configuration of every *other* task, weighted by inverse squared
/// distance in the normalized task space. Returns `None` when no source
/// task has a finite best.
pub fn predict_transfer_config(
    problem: &TuningProblem,
    history: &History,
    target_idx: usize,
) -> Option<Config> {
    let target_u = problem.normalize_task(target_idx);
    let mut weights: Vec<f64> = Vec::new();
    let mut configs: Vec<Vec<f64>> = Vec::new();
    for (i, task) in problem.tasks.iter().enumerate() {
        if i == target_idx {
            continue;
        }
        let Some(best) = history.best_for_task(task) else {
            continue;
        };
        let u = problem.task_space.normalize(task);
        let d2: f64 = u
            .iter()
            .zip(&target_u)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        weights.push(1.0 / (d2 + 1e-6));
        configs.push(problem.tuning_space.normalize(&best.config));
    }
    if configs.is_empty() {
        return None;
    }
    let total: f64 = weights.iter().sum();
    let beta = problem.beta();
    let mut blended = vec![0.0; beta];
    for (w, c) in weights.iter().zip(&configs) {
        for d in 0..beta {
            blended[d] += w / total * c[d];
        }
    }
    let cfg = problem.tuning_space.denormalize(&blended);
    if problem.tuning_space.is_valid(&cfg) {
        Some(cfg)
    } else {
        // Fall back to the nearest source's best configuration verbatim.
        let nearest = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))?
            .0;
        let cfg = problem.tuning_space.denormalize(&configs[nearest]);
        problem.tuning_space.is_valid(&cfg).then_some(cfg)
    }
}

/// TLA-2 fed directly from a `gptune-db` archive: loads every archived
/// evaluation of `problem` (its journal is shared across tasks precisely
/// so transfer learning can reuse other tasks' records) and runs
/// [`transfer_tune`] on `target_idx`.
pub fn transfer_tune_from_db(
    problem: &TuningProblem,
    db_path: &Path,
    target_idx: usize,
    opts: &MlaOptions,
) -> std::io::Result<(TaskResult, gptune_runtime::PhaseStats)> {
    let history = crate::db_bridge::history_from_db(db_path, problem)?;
    Ok(transfer_tune(problem, &history, target_idx, opts))
}

/// TLA-2: tunes only `target_idx`, with every matching archived record of
/// `history` preloaded into the joint LCM. The `opts.eps_total` budget
/// counts *fresh* evaluations of the target task; archived data is free.
///
/// The search phase routes through the same `search_task` acquisition
/// machinery as MLA, so PSO candidate scoring here also runs through the
/// batched [`gptune_gp::LcmModel::predict_batch`] posterior path — archived
/// histories make `n` large, which is exactly where the blocked multi-RHS
/// solve pays off.
///
/// Returns the target's [`TaskResult`] (samples are the fresh evaluations)
/// plus the phase statistics of the run.
///
/// # Checkpoint/resume
/// With [`MlaOptions::with_db`] and [`MlaOptions::checkpoint_every`] > 0
/// the run follows the same checkpoint lifecycle as [`crate::mla::tune`]:
/// the initial design checkpoints immediately, the in-flight state is
/// persisted every `checkpoint_every` iterations (kind
/// [`CheckpointKind::Tla`], keyed by `(signature, seed)`), a run preempted
/// by [`MlaOptions::stop_after_iterations`] writes a final checkpoint, and
/// a completed run archives its fresh evaluations and clears the
/// checkpoint. All post-sampling randomness derives from
/// `(seed, iteration)`, so a resumed run converges to the identical result
/// an uninterrupted run would have produced.
pub fn transfer_tune(
    problem: &TuningProblem,
    history: &History,
    target_idx: usize,
    opts: &MlaOptions,
) -> (TaskResult, gptune_runtime::PhaseStats) {
    assert_eq!(problem.n_objectives, 1, "TLA is single-objective");
    assert!(target_idx < problem.n_tasks());
    let timer = PhaseTimer::new();
    let delta = problem.n_tasks();
    let db = db_bridge::open_db(opts);
    let sig = db_bridge::problem_signature(problem);
    let known_failed = load_known_failures(&db, problem, sig, opts);

    // --- Resume: adopt a checkpoint that matches this exact run ---
    let mut evals = Evaluations::new();
    let mut iteration = 0usize;
    let mut n_preloaded = 0usize;
    let mut resumed = false;
    if opts.checkpointing() {
        // PANIC-SAFETY: checkpointing() returns true only when db_path is
        // set, and open_db opened a Db for every set db_path.
        #[allow(clippy::expect_used)]
        let db = db.as_ref().expect("checkpointing() implies db_path");
        match db_bridge::load_checkpoint_traced(db, sig, opts.seed) {
            Ok(Some(ckpt))
                if db_bridge::checkpoint_matches(&ckpt, CheckpointKind::Tla, opts, delta) =>
            {
                evals = db_bridge::evals_from_checkpoint(&ckpt);
                iteration = ckpt.iteration;
                n_preloaded = ckpt.n_preloaded;
                timer.restore(db_bridge::stats_from_db(&ckpt.stats));
                resumed = true;
            }
            Ok(_) => {} // no checkpoint, or one from a different run shape
            Err(e) => eprintln!("gptune-db: ignoring unreadable checkpoint: {e}"),
        }
    }

    if !resumed {
        // Preload archived records whose task exactly matches a problem
        // task. These are free observations for the surrogate; they are
        // stored ahead of the fresh samples and excluded from the budget.
        for record in &history.records {
            if let Some(idx) = problem.tasks.iter().position(|t| t == &record.task) {
                if problem.tuning_space.is_valid(&record.config)
                    && !evals.contains(idx, &record.config)
                {
                    evals.points.push((idx, record.config.clone()));
                    evals.outputs.push(record.outputs.clone());
                }
            }
        }
        n_preloaded = evals.points.len();

        // Initial fresh samples on the target: the TLA-1 prediction first,
        // then an LHS design.
        let mut rng = StdRng::seed_from_u64(opts.seed ^ TLA_SEED_TAG);
        let n_init = opts.initial_samples().min(opts.eps_total);
        let mut batch: Vec<(usize, Config)> = Vec::new();
        if let Some(cfg) = predict_transfer_config(problem, history, target_idx) {
            if !evals.contains(target_idx, &cfg) {
                batch.push((target_idx, cfg));
            }
        }
        for cfg in sampling::sample_space(&problem.tuning_space, n_init, &mut rng, 200) {
            if batch.len() >= n_init {
                break;
            }
            if !evals.contains(target_idx, &cfg) && !batch.iter().any(|(_, c)| c == &cfg) {
                batch.push((target_idx, cfg));
            }
        }
        let offset = evals.points.len();
        let (outputs, fails) = timer.time(Phase::Objective, || {
            evaluate_batch(problem, batch.clone(), opts, &timer, offset, &known_failed)
        });
        evals.points.extend(batch);
        evals.outputs.extend(outputs);
        evals.failures.extend(fails);

        // Checkpoint the (expensive) initial design immediately: a run
        // killed in its first iteration resumes without re-evaluating.
        if opts.checkpointing() {
            // PANIC-SAFETY: checkpointing() implies db_path is set, and
            // open_db opened a Db for every set db_path.
            #[allow(clippy::expect_used)]
            db_bridge::write_checkpoint(
                db.as_ref().expect("checkpointing() implies db_path"),
                CheckpointKind::Tla,
                sig,
                opts,
                &evals,
                iteration,
                evals.points.len() - n_preloaded,
                n_preloaded,
                &timer.snapshot(),
            );
        }
    }

    // Fresh evaluations (this run's work) reconstructed from the archive
    // — identical whether the archive was just built or resumed.
    let mut fresh: Vec<(Config, f64)> = evals
        .points
        .iter()
        .zip(&evals.outputs)
        .skip(n_preloaded)
        .map(|((_, c), o)| (c.clone(), o.first().copied().unwrap_or(f64::INFINITY)))
        .collect();

    // MLA iterations on the target only.
    let mut iters_this_process = 0usize;
    let mut completed = true;
    // Persistent surrogate; see [`MlaOptions::refit`].
    let mut surrogate = IncrementalLcm::new(opts.refit);
    while fresh.len() < opts.eps_total {
        if opts
            .stop_after_iterations
            .is_some_and(|n| iters_this_process >= n)
        {
            completed = false;
            break;
        }
        let iter_span = timer
            .tracer()
            .span("gptune.core.tla.iteration")
            .with("iteration", iteration as u64)
            .with("target", target_idx as u64);
        // Post-sampling randomness is derived from (seed, iteration) so a
        // resumed run replays the identical stream.
        let mut rng = StdRng::seed_from_u64(
            (opts.seed ^ TLA_SEED_TAG)
                .wrapping_add(0x5bd1e995)
                .wrapping_mul(iteration as u64 + 1)
                .wrapping_add(target_idx as u64 * 104_729),
        );
        let (inputs, y) = build_inputs(problem, &evals, 0, opts);
        let lcm_opts = LcmFitOptions {
            seed: opts.lcm.seed.wrapping_add(iteration as u64 * 104_729),
            ..opts.lcm.clone()
        };
        timer.time_iter(Phase::Modeling, iteration as u64, || {
            with_pool(opts.model_workers, || {
                surrogate.update(&inputs.xs, &inputs.task_of, &y, delta, &lcm_opts)
            })
        });
        // PANIC-SAFETY: update always leaves a fitted model in place.
        #[allow(clippy::expect_used)]
        let model = surrogate.model().expect("surrogate updated this iteration");

        let y_best_model = evals
            .points
            .iter()
            .zip(&evals.outputs)
            .filter(|((t, _), o)| *t == target_idx && o[0].is_finite())
            .map(|(_, o)| transform_objective(o[0], opts.log_objective))
            .fold(f64::INFINITY, f64::min);

        let cfg = timer
            .time_iter(Phase::Search, iteration as u64, || {
                search_task(
                    problem,
                    model,
                    &inputs,
                    &evals,
                    target_idx,
                    y_best_model,
                    opts,
                    &mut rng,
                )
            })
            .0;
        let offset = evals.points.len();
        let (out, fails) = timer.time(Phase::Objective, || {
            evaluate_batch(
                problem,
                vec![(target_idx, cfg.clone())],
                opts,
                &timer,
                offset,
                &known_failed,
            )
        });
        // evaluate_batch returns one output row per submitted point; a
        // missing or empty row is treated as a failed measurement.
        let row = out.into_iter().next().unwrap_or_default();
        fresh.push((cfg.clone(), row.first().copied().unwrap_or(f64::INFINITY)));
        evals.points.push((target_idx, cfg));
        evals.outputs.push(row);
        evals.failures.extend(fails);
        drop(iter_span);
        iteration += 1;
        iters_this_process += 1;

        if opts.checkpointing() && iteration % opts.checkpoint_every == 0 {
            // PANIC-SAFETY: checkpointing() implies db_path is set, and
            // open_db opened a Db for every set db_path.
            #[allow(clippy::expect_used)]
            db_bridge::write_checkpoint(
                db.as_ref().expect("checkpointing() implies db_path"),
                CheckpointKind::Tla,
                sig,
                opts,
                &evals,
                iteration,
                fresh.len(),
                n_preloaded,
                &timer.snapshot(),
            );
        }
    }

    // --- Archive / checkpoint the outcome ---
    if let Some(db) = &db {
        if completed {
            let prov = db_bridge::provenance(opts, delta);
            // PANIC-SAFETY: losing the final archive write would silently
            // discard the run's results; fail loudly instead.
            #[allow(clippy::panic)]
            db_bridge::archive_run(
                db,
                problem,
                sig,
                &evals,
                n_preloaded,
                &prov,
                &timer.snapshot(),
            )
            .unwrap_or_else(|e| panic!("gptune-db: cannot archive run: {e}"));
            if opts.checkpointing() {
                let _ = db.clear_checkpoint(sig, opts.seed);
            }
        } else if opts.checkpointing() {
            // Preempted: persist the final in-flight state for the resumer.
            db_bridge::write_checkpoint(
                db,
                CheckpointKind::Tla,
                sig,
                opts,
                &evals,
                iteration,
                fresh.len(),
                n_preloaded,
                &timer.snapshot(),
            );
        }
    }

    let (best_config, best_value) = fresh
        .iter()
        .filter(|(_, y)| y.is_finite())
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(c, y)| (c.clone(), *y))
        .unwrap_or_else(|| {
            fresh
                .first()
                .map(|(c, _)| (c.clone(), f64::INFINITY))
                .unwrap_or_else(|| {
                    let mid = vec![0.5; problem.beta()];
                    (problem.tuning_space.denormalize(&mid), f64::INFINITY)
                })
        });

    (
        TaskResult {
            task: problem.tasks[target_idx].clone(),
            best_config,
            best_value,
            samples: fresh,
        },
        timer.snapshot(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_space::{Param, Space, Value};

    /// Family with optimum drifting linearly in t: x* = 0.2 + 0.05 t.
    fn family(delta: usize) -> TuningProblem {
        let ts = Space::builder().param(Param::real("t", 0.0, 10.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        let tasks: Vec<Config> = (0..delta).map(|i| vec![Value::Real(i as f64)]).collect();
        TuningProblem::new("family", ts, ps, tasks, |t, x, _| {
            vec![1.0 + (x[0].as_real() - 0.2 - 0.05 * t[0].as_real()).powi(2)]
        })
    }

    fn seeded_history(problem: &TuningProblem, skip: usize) -> History {
        // Archive near-optimal samples for every task except `skip`.
        let mut h = History::new(&problem.name);
        for (i, task) in problem.tasks.iter().enumerate() {
            if i == skip {
                continue;
            }
            let t = task[0].as_real();
            for dx in [-0.05, 0.0, 0.08, 0.3] {
                let x = (0.2 + 0.05 * t + dx).clamp(0.0, 1.0);
                let y = problem.evaluate(i, &[Value::Real(x)], 0)[0];
                h.push(task.clone(), vec![Value::Real(x)], vec![y]);
            }
        }
        h
    }

    fn fast_opts(budget: usize) -> MlaOptions {
        let mut o = MlaOptions::default().with_budget(budget).with_seed(3);
        o.lcm.n_starts = 2;
        o.lcm.lbfgs.max_iters = 20;
        o.pso.particles = 20;
        o.pso.iters = 15;
        o.log_objective = false;
        o
    }

    #[test]
    fn tla1_interpolates_source_optima() {
        let p = family(5);
        let h = seeded_history(&p, 2);
        let cfg = predict_transfer_config(&p, &h, 2).unwrap();
        // Target t=2 → optimum x*=0.30; blended prediction should be close.
        let x = cfg[0].as_real();
        assert!((x - 0.30).abs() < 0.08, "predicted {x}");
    }

    #[test]
    fn tla1_none_without_sources() {
        let p = family(3);
        let h = History::new("family");
        assert!(predict_transfer_config(&p, &h, 1).is_none());
    }

    #[test]
    fn tla2_beats_cold_start_at_tiny_budget() {
        let p = family(5);
        let h = seeded_history(&p, 2);
        let budget = 4;
        let (with_history, _) = transfer_tune(&p, &h, 2, &fast_opts(budget));
        let (cold, _) = transfer_tune(&p, &History::new("family"), 2, &fast_opts(budget));
        assert_eq!(with_history.samples.len(), budget);
        assert!(
            with_history.best_value <= cold.best_value + 1e-9,
            "transfer {} vs cold {}",
            with_history.best_value,
            cold.best_value
        );
        // Near the true optimum 0.30 with only 4 evaluations.
        assert!(
            (with_history.best_config[0].as_real() - 0.30).abs() < 0.08,
            "best x {}",
            with_history.best_config[0].as_real()
        );
    }

    #[test]
    fn tla2_budget_counts_fresh_only() {
        let p = family(4);
        let h = seeded_history(&p, 3);
        let (r, stats) = transfer_tune(&p, &h, 3, &fast_opts(6));
        assert_eq!(r.samples.len(), 6);
        assert_eq!(stats.n_evals, 6);
    }

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gptune_tla_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn tla2_checkpoint_resume_matches_uninterrupted() {
        let p = family(5);
        let h = seeded_history(&p, 2);
        let budget = 5;
        let root_full = tmp_root("full");
        let root_split = tmp_root("split");

        // Uninterrupted reference run.
        let full_opts = fast_opts(budget).with_db(&root_full).checkpoint_every(1);
        let (full, _) = transfer_tune(&p, &h, 2, &full_opts);
        assert_eq!(full.samples.len(), budget);

        // Same run, preempted after one iteration then resumed.
        let mut first = fast_opts(budget).with_db(&root_split).checkpoint_every(1);
        first.stop_after_iterations = Some(1);
        let (partial, _) = transfer_tune(&p, &h, 2, &first);
        assert!(partial.samples.len() < budget, "preempted early");

        let resume_opts = fast_opts(budget).with_db(&root_split).checkpoint_every(1);
        let (resumed, _) = transfer_tune(&p, &h, 2, &resume_opts);
        assert_eq!(resumed.samples.len(), budget);
        assert_eq!(
            resumed.samples, full.samples,
            "resumed run must replay the identical trajectory"
        );
        assert_eq!(resumed.best_config, full.best_config);

        // The completed resume archived the run and cleared its checkpoint.
        let db = gptune_db::Db::open(&root_split).unwrap();
        let sig = crate::db_bridge::problem_signature(&p);
        assert!(db.load_checkpoint(sig, resume_opts.seed).unwrap().is_none());
        let recs = db
            .query(&p.name, sig, &gptune_db::Query::default())
            .unwrap();
        assert_eq!(recs.len(), budget, "exactly the fresh evaluations");
        let _ = std::fs::remove_dir_all(&root_full);
        let _ = std::fs::remove_dir_all(&root_split);
    }

    #[test]
    fn tla2_preemption_writes_tla_kind_checkpoint() {
        let p = family(4);
        let h = seeded_history(&p, 1);
        let root = tmp_root("kind");
        let mut o = fast_opts(6).with_db(&root).checkpoint_every(1);
        o.stop_after_iterations = Some(0);
        let (r, _) = transfer_tune(&p, &h, 1, &o);
        // Only the initial design ran.
        assert_eq!(r.samples.len(), o.initial_samples().min(6));
        let db = gptune_db::Db::open(&root).unwrap();
        let sig = crate::db_bridge::problem_signature(&p);
        let ckpt = db.load_checkpoint(sig, o.seed).unwrap().unwrap();
        assert_eq!(ckpt.kind, gptune_db::CheckpointKind::Tla);
        assert_eq!(ckpt.n_preloaded, h.len());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tla2_skips_invalid_archived_records() {
        let p = family(3);
        let mut h = seeded_history(&p, 1);
        // Poison with an out-of-domain record; it must be ignored.
        h.push(
            p.tasks[0].clone(),
            vec![Value::Real(7.0)], // outside [0,1]
            vec![0.0],
        );
        let (r, _) = transfer_tune(&p, &h, 1, &fast_opts(4));
        assert!(r.best_value.is_finite());
    }
}
