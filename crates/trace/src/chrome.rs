//! Chrome trace-event exporter.
//!
//! Produces the JSON object format understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): a `traceEvents` array of complete
//! (`"ph":"X"`) spans and thread-scoped (`"ph":"i"`) instant events, with
//! `"ph":"M"` `thread_name` metadata naming each track. Timestamps and
//! durations are microseconds (fractional — nanosecond precision is
//! preserved).
//!
//! Track layout: every recording thread is one track (workers are named
//! `gptune-worker-<id>` by the runtime); the master's modeling and search
//! phase spans (`gptune.core.modeling` / `gptune.core.search`) are
//! additionally lifted onto their own synthetic tracks so the two tuner
//! phases read as dedicated swimlanes above the worker timelines.

use crate::jsonl::{args_json, esc};
use crate::tracer::{EventKind, TraceData};
use std::fmt::Write as _;

const PID: u64 = 1;

/// Span names lifted onto dedicated master-phase tracks.
const PHASE_TRACKS: &[(&str, &str)] = &[
    ("gptune.core.modeling", "modeling (master)"),
    ("gptune.core.search", "search (master)"),
];

fn us(ns: u64) -> String {
    // Microseconds with nanosecond precision, no float rounding.
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Exports a [`TraceData`] as a Chrome trace-event JSON string.
pub fn export(data: &TraceData) -> String {
    let max_track = data
        .events
        .iter()
        .map(|e| e.track)
        .chain(data.tracks.iter().map(|(id, _)| *id))
        .max()
        .unwrap_or(0);
    let phase_tid = |name: &str| -> Option<u64> {
        PHASE_TRACKS
            .iter()
            .position(|(n, _)| *n == name)
            .map(|i| max_track + 1 + i as u64)
    };

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };

    // Track metadata: real threads, then any synthetic phase tracks that
    // actually carry events.
    for (id, name) in &data.tracks {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{id},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                esc(name)
            ),
        );
    }
    for (i, (span_name, label)) in PHASE_TRACKS.iter().enumerate() {
        if data.events.iter().any(|e| e.name == *span_name) {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    max_track + 1 + i as u64,
                    esc(label)
                ),
            );
        }
    }

    for ev in &data.events {
        let tid = phase_tid(&ev.name).unwrap_or(ev.track);
        let mut line = format!(
            "{{\"ph\":\"{}\",\"pid\":{PID},\"tid\":{tid},\"ts\":{},\"name\":\"{}\"",
            match ev.kind {
                EventKind::Span { .. } => 'X',
                EventKind::Instant => 'i',
            },
            us(ev.ts_ns),
            esc(&ev.name)
        );
        match ev.kind {
            EventKind::Span { dur_ns } => {
                let _ = write!(line, ",\"dur\":{}", us(dur_ns));
            }
            EventKind::Instant => line.push_str(",\"s\":\"t\""),
        }
        let _ = write!(line, ",\"args\":{}}}", args_json(&ev.fields));
        push(&mut out, line);
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Field, Tracer};
    use std::time::Duration;

    #[test]
    fn microsecond_formatting_preserves_nanos() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_500), "1.500");
        assert_eq!(us(12_345_678), "12345.678");
    }

    #[test]
    fn phase_spans_get_synthetic_tracks() {
        let t = Tracer::ring(16);
        t.record_span("gptune.core.modeling", 0, Duration::from_micros(5), vec![]);
        t.record_span(
            "gptune.core.search",
            5_000,
            Duration::from_micros(2),
            vec![("iteration".into(), Field::U64(0))],
        );
        let json = export(&t.drain());
        assert!(json.contains("\"name\":\"modeling (master)\""));
        assert!(json.contains("\"name\":\"search (master)\""));
        // Phase spans do not sit on the recording thread's track.
        assert!(json.contains("gptune.core.modeling"));
    }
}
