//! Parallel runtime for GPTune-rs — the stand-in for GPTune's MPI-spawning
//! master/worker model (paper Sec. 4).
//!
//! In the reference implementation a single master process runs the GPTune
//! driver and dynamically spawns groups of MPI worker processes for three
//! jobs: objective-function evaluation, the modeling phase (parallel over
//! L-BFGS restarts, with a ScaLAPACK-parallel covariance factorization), and
//! the search phase (parallel over tasks). Here:
//!
//! * [`WorkerGroup`] reproduces the spawn/inter-communicator structure with
//!   OS threads and crossbeam channels (master keeps one endpoint, the
//!   worker group the other — the channel pair plays the role of the
//!   `SpawnedComm`/`ParentComm` inter-communicators of Fig. 1);
//! * [`with_pool`] runs a closure inside a rayon pool of a prescribed
//!   worker count, bounding the parallelism of the modeling phase exactly
//!   like a `-np N` spawn would;
//! * [`stats`] collects the per-phase time breakdown that GPTune prints
//!   after "stats:" in its runlogs (used by Table 3 and Fig. 3);
//! * [`collectives`] offers the MPI collective vocabulary (broadcast,
//!   scatter/gather, reduce, allreduce) over a worker group, so tuner code
//!   reads like its MPI counterpart.

pub mod collectives;
pub mod executor;
pub mod stats;

pub use collectives::{broadcast_map, map_allreduce, map_reduce, scatter_gather};
pub use executor::{with_pool, WorkerGroup};
pub use stats::{Phase, PhaseStats, PhaseTimer};
