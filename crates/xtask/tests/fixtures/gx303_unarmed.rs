// GX303 triggering fixture: the accepted socket reaches a blocking read
// before any deadline-arming call (the arming after the read is too
// late — a silent peer wedges the thread first).

fn serve_one(listener: &TcpListener) {
    let (mut stream, _) = listener.accept().unwrap();
    let mut buf = [0u8; 4];
    stream.read_exact(&mut buf).unwrap();
    stream.set_read_timeout(None).unwrap();
}
