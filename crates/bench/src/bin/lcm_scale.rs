//! Scaling recorder for the incremental-LCM PR. Writes
//! `BENCH_lcm_scale.json` (path overridable as the first CLI argument)
//! with the three acceptance claims:
//!
//! * **per-iteration model cost**: extending a fitted model by one point
//!   via [`LcmModel::extend`] (rank-1 Cholesky row append, O(n²)) vs
//!   rebuilding from scratch at fixed hyperparameters via
//!   [`LcmModel::from_hyperparams`] (O(n³)), at n ∈ {512, 1024, 4096} —
//!   the incremental path must be ≥ 5× faster at n = 4096 and its cost
//!   curve must look quadratic, not cubic;
//! * **capped fit cost**: [`LcmFitOptions::max_active_set`] = 512 keeps
//!   the hyperparameter fit operating on a bounded active set, so fit
//!   wall time stays roughly flat as the history grows past the cap;
//! * **capped predict cost**: per-candidate [`LcmModel::predict_batch`]
//!   latency on the capped model stays flat across n while the uncapped
//!   model's grows linearly with history size.
//!
//! Timing follows the `lcm_perf` discipline: optimized and baseline paths
//! are timed back-to-back in pairs and the reported speedup is the median
//! of per-pair ratios; every timed result feeds a printed sink so the
//! work cannot be elided. Run via `scripts/bench_perf.sh`.

use gptune::gp::{KernelKind, LcmFitOptions, LcmHyperparams, LcmModel};
use gptune::opt::lbfgs::LbfgsOptions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const DIM: usize = 4;
const TASKS: usize = 2;
const Q: usize = 2;
const CAP: usize = 512;
const M_CANDS: usize = 128;
const SIZES: [usize; 3] = [512, 1024, 4096];

fn data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let task_of: Vec<usize> = (0..n).map(|i| i % TASKS).collect();
    let y: Vec<f64> = xs
        .iter()
        .zip(&task_of)
        .map(|(x, &t)| (x[0] * 5.0).sin() + x[1] + 0.2 * t as f64)
        .collect();
    (xs, task_of, y)
}

fn hp() -> LcmHyperparams {
    LcmHyperparams {
        q: Q,
        n_tasks: TASKS,
        dim: DIM,
        lengthscales: vec![vec![0.4; DIM], vec![0.8; DIM]],
        a: vec![vec![0.6; TASKS], vec![0.3; TASKS]],
        b: vec![vec![0.02; TASKS]; Q],
        d: vec![0.05; TASKS],
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_lcm_scale.json".to_string());
    let mut sink = 0.0;

    // --- extend vs from-scratch rebuild, one appended point per pair ------
    let mut extend_rows = Vec::new();
    for &n in &SIZES {
        // One extra point per repetition so every pair appends a point the
        // model has not seen (an exact duplicate would trip the non-PSD
        // guard and fall back — a different code path than the one timed).
        let reps = if n >= 4096 { 3 } else { 5 };
        let (xs, task_of, y) = data(n + reps, 9);
        let base = LcmModel::from_hyperparams(
            &xs[..n],
            &task_of[..n],
            &y[..n],
            TASKS,
            KernelKind::SquaredExponential,
            hp(),
            None,
        );
        let mut t_inc = Vec::with_capacity(reps);
        let mut t_scr = Vec::with_capacity(reps);
        let mut ratio = Vec::with_capacity(reps);
        for r in 0..reps {
            let m = n + r + 1;
            // Clone outside the timer: the incremental path in the tuner
            // mutates a long-lived model in place and never pays a copy.
            let mut inc = base.clone();
            if r > 0 {
                inc.extend(&xs[n..n + r], &task_of[n..n + r], &y[n..n + r])
                    .expect("warm-up extension");
            }
            let t = Instant::now();
            inc.extend(&xs[m - 1..m], &task_of[m - 1..m], &y[m - 1..m])
                .expect("timed extension");
            let inc_ns = t.elapsed().as_nanos() as f64;
            sink += inc.nll_from_factor();

            let t = Instant::now();
            let scratch = LcmModel::from_hyperparams(
                &xs[..m],
                &task_of[..m],
                &y[..m],
                TASKS,
                KernelKind::SquaredExponential,
                hp(),
                None,
            );
            let scr_ns = t.elapsed().as_nanos() as f64;
            sink += scratch.nll_from_factor();

            t_inc.push(inc_ns);
            t_scr.push(scr_ns);
            ratio.push(scr_ns / inc_ns);
        }
        extend_rows.push((n, median(t_inc), median(t_scr), median(ratio)));
    }

    // --- capped fit + capped vs uncapped predict, per history size --------
    let fit_opts = LcmFitOptions {
        n_starts: 1,
        max_active_set: Some(CAP),
        lbfgs: LbfgsOptions {
            max_iters: 8,
            ..Default::default()
        },
        seed: 5,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(17);
    let cands: Vec<Vec<f64>> = (0..M_CANDS)
        .map(|_| (0..DIM).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let mc = M_CANDS as f64;
    let mut cap_rows = Vec::new();
    for &n in &SIZES {
        let (xs, task_of, y) = data(n, 9);
        // Capped fit: the active set is bounded at CAP points, so this
        // cost must stay roughly flat as n grows past the cap.
        let t = Instant::now();
        let capped = LcmModel::fit(&xs, &task_of, &y, TASKS, &fit_opts);
        let fit_ms = t.elapsed().as_nanos() as f64 / 1e6;
        sink += capped.nll();
        // Uncapped counterpart at the same hyperparameters — prediction
        // over the full n-point history.
        let uncapped = LcmModel::from_hyperparams(
            &xs,
            &task_of,
            &y,
            TASKS,
            fit_opts.kernel,
            capped.hyperparams().clone(),
            None,
        );
        let reps = if n >= 4096 { 3 } else { 5 };
        let mut t_cap = Vec::with_capacity(reps);
        let mut t_unc = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            sink += capped
                .predict_batch(0, &cands)
                .iter()
                .map(|p| p.mean + p.variance)
                .sum::<f64>();
            t_cap.push(t.elapsed().as_nanos() as f64);
            let t = Instant::now();
            sink += uncapped
                .predict_batch(0, &cands)
                .iter()
                .map(|p| p.mean + p.variance)
                .sum::<f64>();
            t_unc.push(t.elapsed().as_nanos() as f64);
        }
        cap_rows.push((n, fit_ms, median(t_cap) / mc, median(t_unc) / mc));
    }

    // --- report -----------------------------------------------------------
    let mut json = String::from("{\n  \"config\": {");
    json.push_str(&format!(
        "\"dim\": {DIM}, \"n_tasks\": {TASKS}, \"q\": {Q}, \"cap\": {CAP}, \
         \"m_candidates\": {M_CANDS}}},\n"
    ));
    json.push_str("  \"per_iteration_model_cost\": {\n");
    for (idx, (n, inc, scr, speedup)) in extend_rows.iter().enumerate() {
        let comma = if idx + 1 < extend_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"n{n}\": {{\"incremental_ns\": {inc:.0}, \"from_scratch_ns\": {scr:.0}, \
             \"speedup\": {speedup:.1}}}{comma}\n",
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"capped_active_set\": {\n");
    for (idx, (n, fit_ms, cap_ns, unc_ns)) in cap_rows.iter().enumerate() {
        let comma = if idx + 1 < cap_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"n{n}\": {{\"capped_fit_ms\": {fit_ms:.1}, \
             \"capped_predict_ns_per_cand\": {cap_ns:.0}, \
             \"uncapped_predict_ns_per_cand\": {unc_ns:.0}}}{comma}\n",
        ));
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_lcm_scale.json");
    print!("{json}");
    eprintln!("sink {sink}");
    eprintln!("wrote {out_path}");

    // Acceptance tripwires, enforced at the largest size.
    let (_, _, _, speedup_4096) = extend_rows[extend_rows.len() - 1];
    assert!(
        speedup_4096 >= 5.0,
        "incremental extension only {speedup_4096:.1}x faster than from-scratch at n=4096"
    );
    let (_, _, cap_small, _) = cap_rows[0];
    let (_, _, cap_large, unc_large) = cap_rows[cap_rows.len() - 1];
    assert!(
        cap_large <= unc_large,
        "capped predict slower than uncapped at n=4096"
    );
    assert!(
        cap_large <= cap_small * 4.0,
        "capped predict cost is not flat: {cap_small:.0}ns at n={}, {cap_large:.0}ns at n={}",
        SIZES[0],
        SIZES[SIZES.len() - 1]
    );
}
