//! Fault model for the evaluation runtime.
//!
//! Real GPTune deployments tune applications that crash, hang, and OOM
//! mid-run (invalid ScaLAPACK block sizes, node failures on Cori). The
//! executor therefore classifies every job into a typed [`EvalOutcome`]
//! instead of letting a misbehaving objective kill a worker or deadlock
//! the master:
//!
//! | outcome     | cause                                   | retried? |
//! |-------------|------------------------------------------|----------|
//! | `Ok`        | job returned a value                     | —        |
//! | `Crashed`   | job panicked                             | no       |
//! | `TimedOut`  | job exceeded the [`FaultPolicy`] deadline | no       |
//! | `Invalid`   | job completed but the measurement is unusable (e.g. non-finite runtime) | no |
//! | `Transient` | job signalled a retryable fault and exhausted its retries | yes, with exponential backoff |
//!
//! Transient faults are signalled either by returning
//! [`JobStatus::Transient`] or by panicking with [`TransientSignal`]
//! (`std::panic::panic_any(TransientSignal(..))`), so an objective deep
//! inside a call stack can request a retry without threading a `Result`
//! all the way up.

use std::time::Duration;

/// Retry/deadline policy applied to every job of a
/// [`try_map`](crate::WorkerGroup::try_map) batch.
#[derive(Debug, Clone)]
pub struct FaultPolicy {
    /// Per-job wall-clock deadline enforced by the master-side watchdog.
    /// A job still running past the deadline is marked
    /// [`EvalOutcome::TimedOut`], its worker is retired, and a
    /// replacement worker is spawned. `None` disables the watchdog.
    pub deadline: Option<Duration>,
    /// Maximum number of *re*-executions after a transient fault
    /// (0 disables retries; a job runs at most `max_retries + 1` times).
    pub max_retries: u32,
    /// Backoff before retry `k` is `backoff_base · 2^k`, capped at
    /// [`FaultPolicy::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            deadline: None,
            max_retries: 0,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
        }
    }
}

impl FaultPolicy {
    /// No deadline, no retries — the policy behind the infallible
    /// [`map`](crate::WorkerGroup::map).
    pub fn none() -> Self {
        FaultPolicy::default()
    }

    /// Backoff sleep before re-running a job that has already executed
    /// `attempt + 1` times: `backoff_base · 2^attempt`, capped.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 2u32.saturating_pow(attempt.min(16));
        self.backoff_base
            .checked_mul(factor)
            .map_or(self.backoff_cap, |d| d.min(self.backoff_cap))
    }
}

/// What a job reports about a single execution attempt.
#[derive(Debug)]
pub enum JobStatus<R> {
    /// The attempt produced a usable value.
    Ok(R),
    /// The attempt completed but the measurement is unusable (e.g. a
    /// non-finite runtime). Carries the raw value so the caller can
    /// still record it; never retried.
    Invalid(R),
    /// The attempt hit a retryable fault (node glitch, flaky launcher).
    /// Retried up to [`FaultPolicy::max_retries`] times with backoff.
    Transient(String),
}

/// Panic payload that classifies the panic as a transient fault: the
/// executor retries the job (with backoff) instead of recording a crash.
#[derive(Debug, Clone)]
pub struct TransientSignal(pub String);

/// Classified result of one job of a
/// [`try_map`](crate::WorkerGroup::try_map) batch. `attempts` counts
/// executions, so `attempts > 1` means transient retries happened.
#[derive(Debug)]
pub enum EvalOutcome<R> {
    /// The job produced a usable value.
    Ok {
        /// The job's return value.
        value: R,
        /// Number of execution attempts (1 = no retries).
        attempts: u32,
    },
    /// The job panicked (with a payload other than [`TransientSignal`]).
    Crashed {
        /// Rendered panic message.
        message: String,
        /// Number of execution attempts.
        attempts: u32,
        /// Wall-clock from first dispatch to the crash.
        elapsed: Duration,
    },
    /// The watchdog expired the job's deadline; its worker was retired
    /// and replaced.
    TimedOut {
        /// Wall-clock the job had been running when it was expired.
        elapsed: Duration,
        /// Attempt that was running when the deadline expired.
        attempts: u32,
    },
    /// The job completed but its measurement is unusable; carries the
    /// raw value.
    Invalid {
        /// The job's (unusable) return value.
        value: R,
        /// Number of execution attempts.
        attempts: u32,
    },
    /// The job kept failing transiently and exhausted its retries.
    Transient {
        /// Message from the last transient fault.
        message: String,
        /// Number of execution attempts.
        attempts: u32,
        /// Wall-clock from first dispatch to the final failure.
        elapsed: Duration,
    },
}

impl<R> EvalOutcome<R> {
    /// `true` for [`EvalOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, EvalOutcome::Ok { .. })
    }

    /// The produced value, for `Ok` and `Invalid` outcomes.
    pub fn value(&self) -> Option<&R> {
        match self {
            EvalOutcome::Ok { value, .. } | EvalOutcome::Invalid { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Number of execution attempts behind this outcome.
    pub fn attempts(&self) -> u32 {
        match self {
            EvalOutcome::Ok { attempts, .. }
            | EvalOutcome::Crashed { attempts, .. }
            | EvalOutcome::TimedOut { attempts, .. }
            | EvalOutcome::Invalid { attempts, .. }
            | EvalOutcome::Transient { attempts, .. } => *attempts,
        }
    }

    /// The failure classification, `None` for `Ok`.
    pub fn failure_kind(&self) -> Option<FailureKind> {
        match self {
            EvalOutcome::Ok { .. } => None,
            EvalOutcome::Crashed { .. } => Some(FailureKind::Crashed),
            EvalOutcome::TimedOut { .. } => Some(FailureKind::TimedOut),
            EvalOutcome::Invalid { .. } => Some(FailureKind::Invalid),
            EvalOutcome::Transient { .. } => Some(FailureKind::Transient),
        }
    }

    /// Short human-readable description, for panics and logs.
    pub fn describe(&self) -> String {
        match self {
            EvalOutcome::Ok { attempts, .. } => format!("ok after {attempts} attempt(s)"),
            EvalOutcome::Crashed { message, .. } => format!("crashed: {message}"),
            EvalOutcome::TimedOut { elapsed, .. } => {
                format!("timed out after {:.3}s", elapsed.as_secs_f64())
            }
            EvalOutcome::Invalid { .. } => "invalid measurement".to_string(),
            EvalOutcome::Transient {
                message, attempts, ..
            } => {
                format!("transient failure after {attempts} attempt(s): {message}")
            }
        }
    }
}

/// Failure classification shared by the executor, the phase statistics,
/// and the persisted failure records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The objective panicked.
    Crashed,
    /// The objective exceeded its deadline.
    TimedOut,
    /// The objective completed with an unusable measurement.
    Invalid,
    /// The objective kept failing transiently.
    Transient,
}

impl FailureKind {
    /// Stable lower-case code, used in logs and the database journal.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureKind::Crashed => "crashed",
            FailureKind::TimedOut => "timed-out",
            FailureKind::Invalid => "invalid",
            FailureKind::Transient => "transient",
        }
    }

    /// Inverse of [`FailureKind::as_str`].
    pub fn parse(s: &str) -> Option<FailureKind> {
        match s {
            "crashed" => Some(FailureKind::Crashed),
            "timed-out" => Some(FailureKind::TimedOut),
            "invalid" => Some(FailureKind::Invalid),
            "transient" => Some(FailureKind::Transient),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Typed error returned by [`try_map`](crate::WorkerGroup::try_map) when
/// the group has been closed ([`close`](crate::WorkerGroup::close) /
/// [`shutdown`](crate::WorkerGroup::shutdown)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupClosed;

impl std::fmt::Display for GroupClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("worker group has been shut down")
    }
}

impl std::error::Error for GroupClosed {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = FaultPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(65),
            ..FaultPolicy::default()
        };
        assert_eq!(p.backoff_for(0), Duration::from_millis(10));
        assert_eq!(p.backoff_for(1), Duration::from_millis(20));
        assert_eq!(p.backoff_for(2), Duration::from_millis(40));
        assert_eq!(p.backoff_for(3), Duration::from_millis(65));
        assert_eq!(p.backoff_for(60), Duration::from_millis(65));
    }

    #[test]
    fn kind_roundtrips_through_str() {
        for k in [
            FailureKind::Crashed,
            FailureKind::TimedOut,
            FailureKind::Invalid,
            FailureKind::Transient,
        ] {
            assert_eq!(FailureKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(FailureKind::parse("oom"), None);
    }

    #[test]
    fn outcome_accessors() {
        let ok: EvalOutcome<i32> = EvalOutcome::Ok {
            value: 7,
            attempts: 2,
        };
        assert!(ok.is_ok());
        assert_eq!(ok.value(), Some(&7));
        assert_eq!(ok.attempts(), 2);
        assert_eq!(ok.failure_kind(), None);

        let crashed: EvalOutcome<i32> = EvalOutcome::Crashed {
            message: "boom".into(),
            attempts: 1,
            elapsed: Duration::ZERO,
        };
        assert!(!crashed.is_ok());
        assert!(crashed.value().is_none());
        assert_eq!(crashed.failure_kind(), Some(FailureKind::Crashed));
        assert!(crashed.describe().contains("boom"));
    }
}
