//! ARD stationary kernels — the paper's Eq. 3 Gaussian kernel
//! (`σ_q = 1`), plus a Matérn 5/2 alternative for ablation studies.

/// Kernel family of an [`ArdKernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Squared exponential (the paper's Eq. 3 Gaussian kernel):
    /// `k(x,x') = exp(−½ Σ_d ((x_d−x'_d)/l_d)²)`.
    SquaredExponential,
    /// Matérn 5/2: `k(r) = (1 + √5 r + 5r²/3)·exp(−√5 r)` with
    /// `r² = Σ_d ((x_d−x'_d)/l_d)²` — rougher sample paths, often a better
    /// match for performance surfaces with kinks (cache-size cliffs).
    Matern52,
}

/// Automatic-relevance-determination stationary kernel with one
/// lengthscale per input dimension and unit amplitude (the task
/// coefficients `a_{i,q}` of the LCM absorb the scale, as the paper notes
/// when fixing `σ_q = 1`).
#[derive(Debug, Clone)]
pub struct ArdKernel {
    /// Kernel family.
    pub kind: KernelKind,
    /// Per-dimension lengthscales, all strictly positive.
    pub lengthscales: Vec<f64>,
}

/// Backwards-compatible name: the paper's default Gaussian ARD kernel.
pub type SeArdKernel = ArdKernel;

impl ArdKernel {
    /// Squared-exponential kernel with the given lengthscales (the
    /// default used throughout the tuner, matching the paper).
    pub fn new(lengthscales: Vec<f64>) -> Self {
        Self::with_kind(KernelKind::SquaredExponential, lengthscales)
    }

    /// Kernel of an explicit family.
    pub fn with_kind(kind: KernelKind, lengthscales: Vec<f64>) -> Self {
        assert!(
            lengthscales.iter().all(|&l| l > 0.0 && l.is_finite()),
            "ArdKernel: lengthscales must be positive and finite"
        );
        ArdKernel { kind, lengthscales }
    }

    /// Isotropic kernel with `dim` equal lengthscales (squared exponential).
    pub fn isotropic(dim: usize, l: f64) -> Self {
        ArdKernel::new(vec![l; dim])
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.lengthscales.len()
    }

    /// Scaled squared distance `r² = Σ_d ((x_d − y_d)/l_d)²`.
    #[inline]
    fn r2(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim());
        debug_assert_eq!(y.len(), self.dim());
        let mut s = 0.0;
        for ((xi, yi), l) in x.iter().zip(y).zip(&self.lengthscales) {
            let z = (xi - yi) / l;
            s += z * z;
        }
        s
    }

    /// Kernel value `k(x, y)`.
    #[inline]
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        self.eval_r2(self.r2(x, y))
    }

    /// Kernel value from a precomputed scaled squared distance `r²` — the
    /// distance-cached entry point: the LCM fit computes `r²` once per pair
    /// as a weighted dot of cached `(x_d − y_d)²` with `1/l_d²`.
    #[inline]
    pub fn eval_r2(&self, r2: f64) -> f64 {
        match self.kind {
            KernelKind::SquaredExponential => (-0.5 * r2).exp(),
            KernelKind::Matern52 => {
                let r = r2.sqrt();
                let s5r = 5.0_f64.sqrt() * r;
                (1.0 + s5r + 5.0 * r2 / 3.0) * (-s5r).exp()
            }
        }
    }

    /// Per-dimension inverse squared lengthscales `1/l_d²` — the weights of
    /// the distance-cached form `r² = Σ_d (x_d − y_d)²/l_d²`.
    pub fn inv_lengthscales_sq(&self) -> Vec<f64> {
        self.lengthscales.iter().map(|l| 1.0 / (l * l)).collect()
    }

    /// Dimension-independent gradient prefactor `g(r², k)` such that
    /// `∂k/∂log l_d = g · z_d²` with `z_d = (x_d − y_d)/l_d`. Finite at
    /// `r = 0` for both families (`g = k` for SE, `g = 5/3` for Matérn), so
    /// the distance-cached gradient can run one prefactor per pair across
    /// all `dim` lengthscale derivatives, diagonal included.
    #[inline]
    pub fn grad_factor_r2(&self, r2: f64, k_val: f64) -> f64 {
        match self.kind {
            // ∂k/∂log l_d = k · z_d².
            KernelKind::SquaredExponential => k_val,
            // k(r) = (1 + √5 r + 5r²/3) e^{−√5 r};
            // dk/dr = −(5r/3)(1 + √5 r) e^{−√5 r};
            // ∂r/∂log l_d = −z_d²/r  ⇒
            // ∂k/∂log l_d = (5/3)(1 + √5 r) e^{−√5 r} · z_d².
            KernelKind::Matern52 => {
                let r = r2.sqrt();
                let s5r = 5.0_f64.sqrt() * r;
                (5.0 / 3.0) * (1.0 + s5r) * (-s5r).exp()
            }
        }
    }

    /// Partial derivative of `k(x, y)` with respect to `log l_d`
    /// (hyperparameters are optimized in log space).
    ///
    /// `k_val` must be `self.eval(x, y)` — passing it avoids recomputing
    /// the exponential for the squared-exponential case.
    #[inline]
    pub fn grad_log_lengthscale(&self, x: &[f64], y: &[f64], d: usize, k_val: f64) -> f64 {
        let z = (x[d] - y[d]) / self.lengthscales[d];
        let z2 = z * z;
        match self.kind {
            KernelKind::SquaredExponential => k_val * z2,
            KernelKind::Matern52 => self.grad_factor_r2(self.r2(x, y), k_val) * z2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_similarity_is_one_for_both_kinds() {
        let x = [0.1, 0.7, 0.3];
        for kind in [KernelKind::SquaredExponential, KernelKind::Matern52] {
            let k = ArdKernel::with_kind(kind, vec![0.5; 3]);
            assert_eq!(k.eval(&x, &x), 1.0, "{kind:?}");
        }
    }

    #[test]
    fn symmetric_and_decaying() {
        for kind in [KernelKind::SquaredExponential, KernelKind::Matern52] {
            let k = ArdKernel::with_kind(kind, vec![0.3, 0.6]);
            let a = [0.0, 0.0];
            let b = [0.2, 0.1];
            let c = [0.9, 0.9];
            assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
            assert!(k.eval(&a, &b) > k.eval(&a, &c));
            assert!(k.eval(&a, &c) > 0.0);
        }
    }

    #[test]
    fn known_value_se() {
        let k = ArdKernel::new(vec![1.0]);
        let v = k.eval(&[0.0], &[1.0]);
        assert!((v - (-0.5f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn known_value_matern() {
        // r = 1: k = (1 + √5 + 5/3) e^{−√5}.
        let k = ArdKernel::with_kind(KernelKind::Matern52, vec![1.0]);
        let v = k.eval(&[0.0], &[1.0]);
        let s5 = 5.0_f64.sqrt();
        let expect = (1.0 + s5 + 5.0 / 3.0) * (-s5).exp();
        assert!((v - expect).abs() < 1e-14);
    }

    #[test]
    fn matern_has_heavier_tail_than_se() {
        let se = ArdKernel::new(vec![0.2]);
        let mt = ArdKernel::with_kind(KernelKind::Matern52, vec![0.2]);
        // Far apart, the Matérn kernel decays only exponentially while SE
        // decays like exp(−r²/2).
        assert!(mt.eval(&[0.0], &[1.0]) > se.eval(&[0.0], &[1.0]));
    }

    #[test]
    fn ard_lengthscales_weight_dimensions() {
        let k = ArdKernel::new(vec![0.05, 5.0]);
        let base = [0.5, 0.5];
        let move0 = [0.6, 0.5];
        let move1 = [0.5, 0.6];
        assert!(k.eval(&base, &move0) < k.eval(&base, &move1));
    }

    #[test]
    fn gradient_matches_finite_difference_both_kinds() {
        let x = [0.2, 0.8];
        let y = [0.6, 0.3];
        let l = [0.4, 0.9];
        for kind in [KernelKind::SquaredExponential, KernelKind::Matern52] {
            let k = ArdKernel::with_kind(kind, l.to_vec());
            let kv = k.eval(&x, &y);
            for d in 0..2 {
                let g = k.grad_log_lengthscale(&x, &y, d, kv);
                let h = 1e-6_f64;
                let mut lp = l.to_vec();
                lp[d] *= h.exp();
                let mut lm = l.to_vec();
                lm[d] *= (-h).exp();
                let fd = (ArdKernel::with_kind(kind, lp).eval(&x, &y)
                    - ArdKernel::with_kind(kind, lm).eval(&x, &y))
                    / (2.0 * h);
                assert!(
                    (g - fd).abs() < 1e-6,
                    "{kind:?} dim {d}: analytic {g} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn eval_r2_matches_eval_through_cached_distances() {
        let x = [0.2, 0.8, 0.4];
        let y = [0.6, 0.3, 0.1];
        let l = [0.4, 0.9, 0.25];
        for kind in [KernelKind::SquaredExponential, KernelKind::Matern52] {
            let k = ArdKernel::with_kind(kind, l.to_vec());
            // Cached form: r² as a weighted dot of (x_d − y_d)² with 1/l_d².
            let inv_l2 = k.inv_lengthscales_sq();
            let r2: f64 = x
                .iter()
                .zip(&y)
                .zip(&inv_l2)
                .map(|((a, b), w)| (a - b) * (a - b) * w)
                .sum();
            let direct = k.eval(&x, &y);
            assert!(
                (k.eval_r2(r2) - direct).abs() <= 1e-15 * (1.0 + direct.abs()),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn grad_factor_matches_grad_log_lengthscale() {
        let x = [0.2, 0.8];
        let y = [0.6, 0.3];
        let l = [0.4, 0.9];
        for kind in [KernelKind::SquaredExponential, KernelKind::Matern52] {
            let k = ArdKernel::with_kind(kind, l.to_vec());
            let kv = k.eval(&x, &y);
            let r2: f64 = x
                .iter()
                .zip(&y)
                .zip(&l)
                .map(|((a, b), li)| ((a - b) / li) * ((a - b) / li))
                .sum();
            let g = k.grad_factor_r2(r2, kv);
            for d in 0..2 {
                let z = (x[d] - y[d]) / l[d];
                let expect = k.grad_log_lengthscale(&x, &y, d, kv);
                assert!(
                    (g * z * z - expect).abs() <= 1e-14 * (1.0 + expect.abs()),
                    "{kind:?} dim {d}"
                );
            }
            // Finite prefactor at r = 0 keeps the diagonal in the cached loop.
            assert!(k.grad_factor_r2(0.0, 1.0).is_finite());
        }
    }

    #[test]
    #[should_panic]
    fn nonpositive_lengthscale_rejected() {
        let _ = ArdKernel::new(vec![0.5, 0.0]);
    }
}
