//! Checked float ordering and comparison helpers.
//!
//! IEEE-754 comparisons are partial: `NaN == NaN` is false, and
//! `partial_cmp` returns `None` for NaN operands, so `sort_by(|a, b|
//! a.partial_cmp(b).unwrap())` panics the moment a failed measurement or a
//! degenerate kernel evaluation produces a NaN. GPTune's search loop must
//! survive those values (a NaN objective is a *data point* — "this
//! configuration failed" — not a programming error), so every float
//! comparison that feeds a sort, an argmin, or a recorded decision goes
//! through the total-order helpers here.
//!
//! The total order used is [`f64::total_cmp`] (IEEE-754 `totalOrder`):
//! `-NaN < -inf < … < -0.0 < +0.0 < … < +inf < +NaN`. Positive NaNs sort
//! *last*, which is exactly what a minimizing tuner wants — failed
//! configurations lose ties against every finite objective value.
//!
//! The GX1xx lint tier (see `crates/xtask`) rewrites the rest of the
//! workspace onto these helpers; this module is the one place allowed to
//! touch raw float comparison operators (allowlisted in `lint.toml`).

use std::cmp::Ordering;

/// Total-order comparator for `f64`, usable directly as a sort key:
/// `v.sort_by(cmp_f64)`. Thin named wrapper over [`f64::total_cmp`] so
/// call sites read as "checked comparator" rather than a method chain.
#[inline]
pub fn cmp_f64(a: &f64, b: &f64) -> Ordering {
    a.total_cmp(b)
}

/// NaN-reflexive equality: like `==` except that `feq(NAN, NAN)` is true
/// and `feq(0.0, -0.0)` remains true. Use this wherever code needs "is
/// this the same stored value" semantics (cache hits, convergence checks
/// against an exact sentinel) rather than IEEE equality.
#[inline]
pub fn feq(a: f64, b: f64) -> bool {
    (a == b) || (a.is_nan() && b.is_nan())
}

/// Index of the minimum non-NaN element, first occurrence on ties, or
/// `None` for an empty slice. NaNs are shed, not ordered: a raw
/// `total_cmp` minimum would let a negative-sign NaN beat `-inf`, so a
/// failed measurement could silently become the "best" configuration.
/// An all-NaN slice still returns `Some(0)` (the tuner can then observe
/// that its best is a failure and act on it).
#[inline]
pub fn argmin(values: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if v >= b => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
        .or_else(|| (!values.is_empty()).then_some(0))
}

/// Index of the maximum non-NaN element, first occurrence on ties, or
/// `None` for an empty slice. NaNs are shed, not ordered: positive NaN
/// sorts *above* `+inf` in the total order, so a raw `total_cmp` maximum
/// would hand a failed measurement the win over every real value. An
/// all-NaN slice still returns `Some(0)`.
#[inline]
pub fn argmax(values: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if v <= b => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
        .or_else(|| (!values.is_empty()).then_some(0))
}

/// Sorts a float slice ascending under the IEEE total order (NaNs last).
/// Stable, so equal keys keep their relative order.
#[inline]
pub fn sort_floats(values: &mut [f64]) {
    values.sort_by(f64::total_cmp);
}

/// NaN-shedding minimum: if exactly one operand is NaN the other wins;
/// NaN only survives when both operands are NaN.
#[inline]
pub fn min_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() {
        return b;
    }
    if b.is_nan() {
        return a;
    }
    if b < a {
        b
    } else {
        a
    }
}

/// NaN-shedding maximum: if exactly one operand is NaN the other wins;
/// NaN only survives when both operands are NaN.
#[inline]
pub fn max_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() {
        return b;
    }
    if b.is_nan() {
        return a;
    }
    if b > a {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_f64_is_total_on_nan() {
        let mut v = vec![3.0, f64::NAN, -1.0, f64::INFINITY, 0.5];
        v.sort_by(cmp_f64);
        assert_eq!(v[0], -1.0);
        assert_eq!(v[1], 0.5);
        assert_eq!(v[2], 3.0);
        assert_eq!(v[3], f64::INFINITY);
        assert!(v[4].is_nan());
    }

    #[test]
    fn feq_is_nan_reflexive() {
        assert!(feq(f64::NAN, f64::NAN));
        assert!(feq(1.5, 1.5));
        assert!(feq(0.0, -0.0));
        assert!(!feq(1.0, 2.0));
        assert!(!feq(f64::NAN, 1.0));
        assert!(!feq(1.0, f64::NAN));
    }

    #[test]
    fn argmin_skips_nan_when_finite_exists() {
        let v = [f64::NAN, 2.0, 1.0, f64::NAN, 3.0];
        assert_eq!(argmin(&v), Some(2));
    }

    #[test]
    fn argmin_prefers_neg_infinity_and_first_tie() {
        assert_eq!(argmin(&[1.0, f64::NEG_INFINITY, -5.0]), Some(1));
        assert_eq!(argmin(&[2.0, 1.0, 1.0]), Some(1));
    }

    #[test]
    fn argmin_of_all_nan_still_returns_an_index() {
        assert_eq!(argmin(&[f64::NAN, f64::NAN]), Some(0));
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn argmax_sheds_nan_when_finite_exists() {
        // Positive NaN sorts *above* +inf in the total order, so a naive
        // total_cmp argmax would hand the win to a failed measurement —
        // argmax must shed NaNs instead.
        let v = [1.0, f64::NAN, 3.0];
        assert_eq!(argmax(&v), Some(2));
        assert_eq!(argmax(&[f64::NAN, 2.0, f64::INFINITY]), Some(2));
        let finite = [1.0, 7.0, 3.0];
        assert_eq!(argmax(&finite), Some(1));
        assert_eq!(argmax(&[4.0, 7.0, 7.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), Some(0));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmin_sheds_negative_sign_nan() {
        // A NaN with the sign bit set sorts *below* -inf under total_cmp;
        // shedding by is_nan() is immune to the sign bit.
        let neg_nan = f64::from_bits(f64::NAN.to_bits() | (1 << 63));
        assert!(neg_nan.is_nan());
        assert_eq!(argmin(&[neg_nan, f64::NEG_INFINITY, 1.0]), Some(1));
        assert_eq!(argmax(&[1.0, neg_nan]), Some(0));
    }

    #[test]
    fn sort_floats_orders_nan_last() {
        let mut v = vec![f64::NAN, 1.0, -2.0, f64::NAN, 0.0];
        sort_floats(&mut v);
        assert_eq!(&v[..3], &[-2.0, 0.0, 1.0]);
        assert!(v[3].is_nan() && v[4].is_nan());
    }

    #[test]
    fn min_max_shed_nan() {
        assert_eq!(min_f64(f64::NAN, 2.0), 2.0);
        assert_eq!(min_f64(2.0, f64::NAN), 2.0);
        assert_eq!(max_f64(f64::NAN, 2.0), 2.0);
        assert_eq!(max_f64(2.0, f64::NAN), 2.0);
        assert!(min_f64(f64::NAN, f64::NAN).is_nan());
        assert_eq!(min_f64(1.0, 2.0), 1.0);
        assert_eq!(max_f64(1.0, 2.0), 2.0);
    }
}
