//! SuperLU_DIST (sparse direct LU) simulator with two objectives:
//! factorization **time** and **memory** (paper Secs. 6.6–6.7).
//!
//! Task = matrix (the PARSEC group of the SuiteSparse collection, as in the
//! paper), tuning `x = [COLPERM, LOOK, p, p_r, NSUP, NREL]` (Sec. 6.2):
//! column permutation (categorical), look-ahead depth, MPI process count and
//! grid rows, maximum supernode size and relaxed-supernode size.
//!
//! The cost model captures the interactions that make this a genuinely
//! multi-objective problem (Fig. 7, Table 5):
//!
//! * COLPERM controls fill-in (`nnz(L+U)`), which drives *both* time and
//!   memory — with per-matrix variation in which ordering wins;
//! * large `NSUP`/`NREL` pad supernodes with explicit zeros (more memory,
//!   better BLAS-3 efficiency → less time): the central time/memory
//!   trade-off, matching Table 5 where the time-optimal `NSUP = 295` and
//!   the memory-optimal `NSUP = 31`;
//! * look-ahead hides communication up to a scheduling-overhead knee;
//! * the 2-D process grid has a matrix-dependent sweet spot.

use crate::{noise, HpcApp, MachineModel};
use gptune_space::{Config, Param, Space, Value};

/// One matrix of the built-in catalogue.
#[derive(Debug, Clone)]
pub struct MatrixInfo {
    /// SuiteSparse name.
    pub name: &'static str,
    /// Dimension.
    pub n: f64,
    /// Nonzeros of `A`.
    pub nnz: f64,
    /// Base fill growth (nnz(L+U)/nnz with the best ordering).
    pub base_fill: f64,
}

/// The PARSEC matrices used in Figs. 6–7 (dimensions/nnz from the
/// SuiteSparse collection; `base_fill` calibrated to give realistic
/// sparse-direct factor sizes).
pub const PARSEC_MATRICES: &[MatrixInfo] = &[
    MatrixInfo {
        name: "Si2",
        n: 769.0,
        nnz: 17801.0,
        base_fill: 8.0,
    },
    MatrixInfo {
        name: "SiH4",
        n: 5041.0,
        nnz: 171903.0,
        base_fill: 14.0,
    },
    MatrixInfo {
        name: "SiNa",
        n: 5743.0,
        nnz: 102265.0,
        base_fill: 18.0,
    },
    MatrixInfo {
        name: "Na5",
        n: 5832.0,
        nnz: 305630.0,
        base_fill: 12.0,
    },
    MatrixInfo {
        name: "benzene",
        n: 8219.0,
        nnz: 242669.0,
        base_fill: 16.0,
    },
    MatrixInfo {
        name: "Si10H16",
        n: 17077.0,
        nnz: 875923.0,
        base_fill: 22.0,
    },
    MatrixInfo {
        name: "Si5H12",
        n: 19896.0,
        nnz: 738598.0,
        base_fill: 24.0,
    },
    MatrixInfo {
        name: "SiO",
        n: 33401.0,
        nnz: 1317655.0,
        base_fill: 28.0,
    },
];

/// Column-permutation choices (SuperLU_DIST's `ColPerm_t` order, so the
/// integer codes in Table 5 line up: 4 = METIS_AT_PLUS_A).
pub const COLPERM_CHOICES: [&str; 5] = [
    "NATURAL",
    "MMD_ATA",
    "MMD_AT_PLUS_A",
    "COLAMD",
    "METIS_AT_PLUS_A",
];

/// SuperLU_DIST simulator bound to a machine.
pub struct SuperluApp {
    machine: MachineModel,
    task_space: Space,
    tuning_space: Space,
    /// Optional symbolically calibrated fill multipliers,
    /// indexed `[matrix][colperm]` (see [`SuperluApp::new_with_symbolic`]).
    fill_table: Option<Vec<[f64; 5]>>,
}

impl SuperluApp {
    /// Creates the app on the given machine.
    pub fn new(machine: MachineModel) -> SuperluApp {
        let p_max = machine.total_cores() as i64;
        let task_space = Space::builder()
            .param(Param::categorical(
                "matrix",
                &PARSEC_MATRICES.iter().map(|m| m.name).collect::<Vec<_>>(),
            ))
            .build();
        let tuning_space = Space::builder()
            .param(Param::categorical("COLPERM", &COLPERM_CHOICES))
            .param(Param::int("LOOK", 2, 30))
            .param(Param::int_log("p", 1, p_max))
            .param(Param::int_log("p_r", 1, p_max))
            .param(Param::int_log("NSUP", 16, 512))
            .param(Param::int("NREL", 4, 64))
            .constraint("p_r<=p", |c| c[3].as_int() <= c[2].as_int())
            .constraint("NREL<=NSUP", |c| c[5].as_int() <= c[4].as_int())
            .build();
        SuperluApp {
            machine,
            task_space,
            tuning_space,
            fill_table: None,
        }
    }

    /// Like [`SuperluApp::new`], but computes the per-(matrix, COLPERM)
    /// fill multipliers by *symbolic factorization* instead of the built-in
    /// analytic table: each catalogue matrix is modelled as a random
    /// geometric graph with matching density (the structure of the PARSEC
    /// electronic-structure matrices), ordered by the algorithm family the
    /// COLPERM choice belongs to, and its exact Cholesky fill counted
    /// (`gptune-sparse`). Three ordering algorithms are implemented
    /// (natural, reverse Cuthill–McKee, greedy minimum degree); the five
    /// COLPERM choices map onto those measured anchors:
    /// NATURAL → natural, MMD_ATA/COLAMD → RCM-grade, MMD_AT_PLUS_A →
    /// slightly degraded minimum degree, METIS_AT_PLUS_A → minimum degree.
    ///
    /// Patterns are down-scaled to at most `max_pattern_n` vertices so the
    /// one-time analysis stays fast; fill *ratios* transfer across scale
    /// for this graph family.
    pub fn new_with_symbolic(machine: MachineModel, max_pattern_n: usize) -> SuperluApp {
        use gptune_sparse::{
            fill_count, minimum_degree, natural_order, reverse_cuthill_mckee, SparsePattern,
        };
        let mut app = SuperluApp::new(machine);
        let table = PARSEC_MATRICES
            .iter()
            .enumerate()
            .map(|(idx, mat)| {
                let n = (mat.n as usize).min(max_pattern_n.max(64));
                // Match the catalogue's off-diagonal density: mean degree
                // deg = nnz/n − 1; geometric graphs in 3-D have
                // deg ≈ n·(4π/3)·r³.
                let deg = (mat.nnz / mat.n - 1.0).max(2.0);
                let radius = (deg / (n as f64 * 4.0 * std::f64::consts::PI / 3.0))
                    .cbrt()
                    .clamp(0.01, 0.45);
                let pattern = SparsePattern::geometric(n, radius, 0xC0DE + idx as u64);

                let nat = fill_count(&pattern.permute(&natural_order(pattern.n()))).fill_ratio;
                let rcm = fill_count(&pattern.permute(&reverse_cuthill_mckee(&pattern))).fill_ratio;
                let md = fill_count(&pattern.permute(&minimum_degree(&pattern))).fill_ratio;

                // Normalise so the best measured ordering has multiplier 1
                // relative to the catalogue's base_fill (which represents
                // the best ordering's absolute fill).
                let best = md.min(rcm).min(nat);
                [
                    nat / best,        // NATURAL
                    rcm / best,        // MMD_ATA (RCM-grade)
                    1.08 * md / best,  // MMD_AT_PLUS_A (slightly behind MD)
                    rcm / best * 0.95, // COLAMD (between RCM and MD)
                    md / best,         // METIS_AT_PLUS_A (best)
                ]
            })
            .collect();
        app.fill_table = Some(table);
        app
    }

    /// Fill multiplier in effect for `(matrix, perm)` — symbolic when
    /// calibrated, analytic otherwise.
    pub fn fill(&self, mat_idx: usize, perm: usize) -> f64 {
        match &self.fill_table {
            Some(t) => t[mat_idx][perm],
            None => Self::fill_multiplier(mat_idx, perm),
        }
    }

    /// Task list covering the first `k` PARSEC matrices.
    pub fn tasks(k: usize) -> Vec<Vec<Value>> {
        (0..k.min(PARSEC_MATRICES.len()))
            .map(|i| vec![Value::Cat(i)])
            .collect()
    }

    /// Fill multiplier of ordering `perm` on matrix `mat` (≥ 1; per-matrix
    /// variation makes different orderings win on different matrices, so
    /// per-task tuning genuinely matters).
    fn fill_multiplier(mat: usize, perm: usize) -> f64 {
        // Baseline ordering quality: NATURAL ≫ everything else.
        let base = match perm {
            0 => 6.0,  // NATURAL
            1 => 1.6,  // MMD_ATA
            2 => 1.25, // MMD_AT_PLUS_A
            3 => 1.45, // COLAMD
            _ => 1.15, // METIS_AT_PLUS_A
        };
        // Deterministic per-(matrix, perm) wobble of ±20%.
        let h = noise::hash_point(&[Value::Cat(mat)], &[Value::Cat(perm)], 0x5eed);
        let wobble = 0.8 + 0.4 * noise::uniform01(h);
        if perm == 0 {
            base // natural ordering is always bad
        } else {
            base * wobble
        }
    }

    /// Noise-free `(time_s, memory_MB)` model.
    #[allow(clippy::too_many_arguments)] // mirrors the app's six tuning knobs
    pub fn cost_model(
        &self,
        mat_idx: usize,
        perm: usize,
        look: f64,
        p: f64,
        p_r: f64,
        nsup: f64,
        nrel: f64,
    ) -> (f64, f64) {
        let mat = &PARSEC_MATRICES[mat_idx];
        let p_c = (p / p_r).floor().max(1.0);

        // Fill-in from the ordering.
        let nnz_lu = mat.nnz * mat.base_fill * self.fill(mat_idx, perm);

        // Supernode padding: relaxed/max supernode sizes trade explicit
        // zeros (memory + flops) for BLAS-3 efficiency (time).
        let pad = 1.0 + 0.0020 * nsup + 0.0045 * nrel;
        let nnz_stored = nnz_lu * pad;

        // Factorization flops grow superlinearly with the factor size.
        let flops = 2.0 * nnz_stored * (nnz_stored / mat.n) * 0.5;

        // BLAS-3 efficiency of supernodal GEMMs; sparse updates never reach
        // dense efficiency.
        let eff = self.machine.block_efficiency(nsup) * 0.6 + 0.05 * (nrel / 64.0); // relaxation slightly improves small blocks
                                                                                    // Sparse LU strong-scales sub-linearly.
        let p_eff = p.powf(0.72);
        // Grid aspect: SuperLU_DIST prefers modestly flat grids (p_r ≲ p_c).
        let ideal_pr = (p.sqrt() * 0.7).max(1.0);
        let aspect = 1.0 + 0.08 * ((p_r / ideal_pr).ln()).powi(2);

        let t_comp = flops / (self.machine.flop_rate * eff * p_eff) * aspect;

        // Communication: one message wave per supernodal panel; look-ahead
        // hides a fraction of it but large depths add scheduling overhead.
        let panels = mat.n / nsup;
        let overlap = 1.0 / (1.0 + 0.35 * look) + 0.012 * look;
        let c_msg = panels * 8.0 * (p.max(2.0)).log2();
        let c_vol = nnz_stored / p.sqrt() * 2.0;
        let t_comm = (c_msg * self.machine.latency * 50.0
            + c_vol * 8.0 * self.machine.time_per_word)
            * overlap
            * aspect;

        // Symbolic + ordering setup time: METIS is the most expensive
        // ordering to compute.
        let t_setup = match perm {
            4 => 3.0e-7 * mat.nnz,
            1 | 2 => 1.2e-7 * mat.nnz,
            3 => 0.8e-7 * mat.nnz,
            _ => 0.1e-7 * mat.nnz,
        };

        // Memory: stored factors + per-process buffers that grow with the
        // look-ahead window and process count.
        let mem_factors = nnz_stored * 12.0; // value + index bytes
        let mem_buffers = p * (mat.n / p_c * nsup * 8.0 * (1.0 + 0.15 * look)).min(mat.n * 64.0);
        let mem_mb = (mem_factors + mem_buffers) / 1.0e6;

        (t_comp + t_comm + t_setup, mem_mb)
    }
}

impl HpcApp for SuperluApp {
    fn name(&self) -> &str {
        "superlu_dist"
    }

    fn task_space(&self) -> &Space {
        &self.task_space
    }

    fn tuning_space(&self) -> &Space {
        &self.tuning_space
    }

    fn n_objectives(&self) -> usize {
        2
    }

    fn evaluate(&self, task: &[Value], config: &[Value], seed: u64) -> Vec<f64> {
        if !self.tuning_space.is_valid(config) {
            return vec![f64::INFINITY, f64::INFINITY];
        }
        let mat_idx = task[0].as_cat();
        let perm = config[0].as_cat();
        let look = config[1].as_int() as f64;
        let p = config[2].as_int() as f64;
        let p_r = config[3].as_int() as f64;
        let nsup = config[4].as_int() as f64;
        let nrel = config[5].as_int() as f64;
        let (t, mem) = self.cost_model(mat_idx, perm, look, p, p_r, nsup, nrel);
        let f = noise::lognormal_factor(
            noise::hash_point(task, config, seed),
            self.machine.noise_sigma,
        );
        // Memory is deterministic on the real code too; only time is noisy.
        vec![t * f, mem]
    }

    fn default_config(&self) -> Option<Config> {
        // Table 5 defaults: COLPERM=4 (METIS), LOOK=10, p=256, p_r=16,
        // NSUP=128, NREL=20 — p clamped to the machine.
        let p = 256.min(self.machine.total_cores()) as i64;
        Some(vec![
            Value::Cat(4),
            Value::Int(10),
            Value::Int(p),
            Value::Int(16.min(p)),
            Value::Int(128),
            Value::Int(20),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> SuperluApp {
        SuperluApp::new(MachineModel::cori_noiseless(8))
    }

    fn cfg(perm: usize, look: i64, p: i64, p_r: i64, nsup: i64, nrel: i64) -> Vec<Value> {
        vec![
            Value::Cat(perm),
            Value::Int(look),
            Value::Int(p),
            Value::Int(p_r),
            Value::Int(nsup),
            Value::Int(nrel),
        ]
    }

    #[test]
    fn natural_ordering_is_terrible() {
        let a = app();
        // Use a matrix large enough that factorization flops dominate the
        // (ordering-independent) latency terms.
        let t = vec![Value::Cat(5)]; // Si10H16
        let natural = a.evaluate(&t, &cfg(0, 10, 64, 8, 128, 20), 0);
        let metis = a.evaluate(&t, &cfg(4, 10, 64, 8, 128, 20), 0);
        assert!(
            natural[0] > metis[0] * 2.0,
            "time {} vs {}",
            natural[0],
            metis[0]
        );
        assert!(
            natural[1] > metis[1] * 2.0,
            "mem {} vs {}",
            natural[1],
            metis[1]
        );
    }

    #[test]
    fn nsup_trades_time_for_memory() {
        let a = app();
        let t = vec![Value::Cat(5)]; // Si10H16
        let small = a.evaluate(&t, &cfg(4, 10, 64, 8, 24, 8), 0);
        let large = a.evaluate(&t, &cfg(4, 10, 64, 8, 320, 40), 0);
        assert!(
            large[0] < small[0],
            "large NSUP should be faster: {} vs {}",
            large[0],
            small[0]
        );
        assert!(
            large[1] > small[1],
            "large NSUP should use more memory: {} vs {}",
            large[1],
            small[1]
        );
    }

    #[test]
    fn lookahead_has_interior_optimum() {
        let a = app();
        let t = vec![Value::Cat(7)]; // SiO (largest → comm matters)
        let times: Vec<f64> = [2i64, 8, 30]
            .iter()
            .map(|&l| a.evaluate(&t, &cfg(4, l, 256, 11, 128, 20), 0)[0])
            .collect();
        assert!(times[1] < times[0], "look 8 {} vs 2 {}", times[1], times[0]);
        assert!(
            times[1] < times[2],
            "look 8 {} vs 30 {}",
            times[1],
            times[2]
        );
    }

    #[test]
    fn bigger_matrices_cost_more() {
        let a = app();
        let c = cfg(4, 10, 64, 8, 128, 20);
        let si2 = a.evaluate(&[Value::Cat(0)], &c, 0);
        let sio = a.evaluate(&[Value::Cat(7)], &c, 0);
        assert!(sio[0] > si2[0] * 5.0);
        assert!(sio[1] > si2[1] * 5.0);
    }

    #[test]
    fn constraints_enforced() {
        let a = app();
        let t = vec![Value::Cat(0)];
        assert!(a.evaluate(&t, &cfg(4, 10, 8, 16, 128, 20), 0)[0].is_infinite());
        assert!(a.evaluate(&t, &cfg(4, 10, 64, 8, 32, 60), 0)[0].is_infinite());
    }

    #[test]
    fn memory_deterministic_time_noisy() {
        let a = SuperluApp::new(MachineModel::cori(8));
        let t = vec![Value::Cat(3)];
        let c = cfg(4, 10, 64, 8, 128, 20);
        let r1 = a.evaluate(&t, &c, 1);
        let r2 = a.evaluate(&t, &c, 2);
        assert_ne!(r1[0], r2[0]);
        assert_eq!(r1[1], r2[1]);
    }

    #[test]
    fn ordering_winner_varies_by_matrix() {
        // At least one matrix should prefer a non-METIS ordering thanks to
        // the per-matrix wobble — otherwise per-task tuning of COLPERM is
        // pointless.
        let a = app();
        let mut winners = std::collections::HashSet::new();
        for mat in 0..PARSEC_MATRICES.len() {
            let t = vec![Value::Cat(mat)];
            let best = (1..5)
                .min_by(|&x, &y| {
                    let tx = a.evaluate(&t, &cfg(x, 10, 64, 8, 128, 20), 0)[0];
                    let ty = a.evaluate(&t, &cfg(y, 10, 64, 8, 128, 20), 0)[0];
                    tx.partial_cmp(&ty).unwrap()
                })
                .unwrap();
            winners.insert(best);
        }
        assert!(winners.len() >= 2, "winners {winners:?}");
    }

    #[test]
    fn default_config_valid() {
        let a = app();
        let d = a.default_config().unwrap();
        assert!(
            a.tuning_space().is_valid(&d),
            "{:?}",
            a.tuning_space().violated_constraints(&d)
        );
    }

    #[test]
    fn symbolic_calibration_orders_permutations_sensibly() {
        let a = SuperluApp::new_with_symbolic(MachineModel::cori_noiseless(8), 400);
        for mat in 0..PARSEC_MATRICES.len() {
            let natural = a.fill(mat, 0);
            let metis = a.fill(mat, 4);
            assert!(
                natural > 1.5 * metis,
                "matrix {mat}: natural {natural} vs metis {metis}"
            );
            // All multipliers at least the best ordering's 1.0.
            for perm in 0..5 {
                assert!(a.fill(mat, perm) >= 1.0 - 1e-12, "mat {mat} perm {perm}");
            }
        }
    }

    #[test]
    fn symbolic_mode_evaluates_and_preserves_tradeoffs() {
        let a = SuperluApp::new_with_symbolic(MachineModel::cori_noiseless(8), 300);
        let t = vec![Value::Cat(5)];
        let natural = a.evaluate(&t, &cfg(0, 10, 64, 8, 128, 20), 0);
        let metis = a.evaluate(&t, &cfg(4, 10, 64, 8, 128, 20), 0);
        assert!(natural[0] > metis[0]);
        assert!(natural[1] > metis[1]);
        // NSUP time/memory trade-off survives calibration.
        let small = a.evaluate(&t, &cfg(4, 10, 64, 8, 24, 8), 0);
        let large = a.evaluate(&t, &cfg(4, 10, 64, 8, 320, 40), 0);
        assert!(large[0] < small[0]);
        assert!(large[1] > small[1]);
    }

    #[test]
    fn symbolic_is_deterministic() {
        let a = SuperluApp::new_with_symbolic(MachineModel::cori_noiseless(8), 200);
        let b = SuperluApp::new_with_symbolic(MachineModel::cori_noiseless(8), 200);
        for mat in 0..PARSEC_MATRICES.len() {
            for perm in 0..5 {
                assert_eq!(a.fill(mat, perm), b.fill(mat, perm));
            }
        }
    }

    #[test]
    fn tasks_helper() {
        let t = SuperluApp::tasks(7);
        assert_eq!(t.len(), 7);
        assert_eq!(t[6][0].as_cat(), 6);
        assert_eq!(SuperluApp::tasks(100).len(), PARSEC_MATRICES.len());
    }
}
