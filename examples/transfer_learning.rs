//! Transfer Learning Autotuning (TLA): reuse archived tuning data to tune
//! a brand-new task with a tiny fresh budget.
//!
//! This exercises the paper's goal 3 ("support archiving and reusing
//! tuning data from multiple executions to allow tuning to improve over
//! time"): an MLA run on several PDGEQRF tasks is archived to a history
//! database; a new task then gets tuned with only a handful of fresh
//! evaluations, warm-started both by TLA-1 (predicting a starting
//! configuration from the sources' optima) and TLA-2 (folding the archive
//! into the joint LCM).
//!
//! Run with:
//! ```text
//! cargo run --release --example transfer_learning
//! ```

use gptune::apps::{HpcApp, MachineModel, PdgeqrfApp};
use gptune::core::{mla, tla, History, MlaOptions};
use gptune::problem_from_app;
use gptune::space::Value;
use std::sync::Arc;

fn main() {
    let app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(MachineModel::cori(4), 20_000));

    // Phase 1: tune four source tasks and archive the samples.
    let source_tasks: Vec<Vec<Value>> = [4000i64, 8000, 12_000, 16_000]
        .iter()
        .map(|&n| vec![Value::Int(n), Value::Int(n)])
        .collect();
    let mut all_tasks = source_tasks.clone();
    // The future target task, unseen during phase 1.
    let target = vec![Value::Int(10_000), Value::Int(10_000)];
    all_tasks.push(target.clone());
    let target_idx = all_tasks.len() - 1;

    let source_problem = problem_from_app(Arc::clone(&app), source_tasks.clone());
    let mut opts = MlaOptions::default().with_budget(16).with_seed(21);
    opts.lcm.n_starts = 3;
    println!(
        "Phase 1: tuning {} source tasks with ε_tot = 16 each…",
        source_tasks.len()
    );
    let source_result = mla::tune(&source_problem, &opts);
    let history = History::from_mla(&source_problem.name, &source_result);
    println!("  archived {} evaluations\n", history.len());

    // Phase 2: tune the new task with a tiny fresh budget.
    let problem = problem_from_app(Arc::clone(&app), all_tasks);
    let fresh_budget = 5;
    let mut topts = MlaOptions::default()
        .with_budget(fresh_budget)
        .with_seed(22);
    topts.lcm.n_starts = 3;
    topts.n_initial = Some(3);

    println!("Phase 2: new task (m = n = 10000), fresh budget = {fresh_budget} evaluations");

    // TLA-1: pure prediction, zero evaluations.
    if let Some(cfg) = tla::predict_transfer_config(&problem, &history, target_idx) {
        let y = app.evaluate(&target, &cfg, 0)[0];
        println!(
            "  TLA-1 prediction (0 evals)   : {:.4}s  {}",
            y,
            problem.tuning_space.format_config(&cfg)
        );
    }

    // TLA-2: MLA on the target with the archive folded in.
    let (transfer, stats) = tla::transfer_tune(&problem, &history, target_idx, &topts);
    println!(
        "  TLA-2 ({fresh_budget} evals + archive): {:.4}s  {}",
        transfer.best_value,
        problem.tuning_space.format_config(&transfer.best_config)
    );

    // Cold start: the same budget with no history.
    let (cold, _) = tla::transfer_tune(&problem, &History::new(&problem.name), target_idx, &topts);
    println!(
        "  cold start ({fresh_budget} evals)      : {:.4}s  {}",
        cold.best_value,
        problem.tuning_space.format_config(&cold.best_config)
    );

    println!(
        "\n  transfer vs cold-start improvement: {:.1}%",
        100.0 * (1.0 - transfer.best_value / cold.best_value)
    );
    println!("  {}", stats.report());
}
