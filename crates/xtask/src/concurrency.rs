//! GX7xx — whole-workspace concurrency analysis, plus the summary-based
//! GX303 socket-deadline check.
//!
//! Built on [`crate::parse`] (per-fn event recovery) and
//! [`crate::summary`] (interprocedural blocking/acquisition summaries):
//!
//! * **GX701** — lock-order inversion: a cycle in the held-while-acquiring
//!   graph over the named-lock registry, reported with every edge's
//!   witness acquisition path.
//! * **GX702** — guard held across a may-blocking call, *interprocedurally*:
//!   the callee blocking three frames down is caught. Subsumes the lexical
//!   GX301/GX302 shapes (which remain as fast per-file checks).
//! * **GX703** — double-acquire of a non-reentrant lock on any call path
//!   (a self-loop in the lock graph).
//! * **GX704** — a relaxed atomic op on a field that participates in a
//!   release/acquire (or SeqCst) handshake elsewhere.
//!
//! Only locks in the [`LOCKS`] registry participate: cross-function
//! analysis on name-matched locals would produce junk edges. Fn-scoped
//! allowlist entries (`fn = "dispatch"` in lint.toml) suppress individual
//! findings with written rationale.

use crate::config::Config;
use crate::graph::{render_dot, render_text, LockGraph};
use crate::parse::{EventKind, ParsedFile, DB_ADVISORY};
use crate::rules::Diagnostic;
use crate::summary::{render_chain, Frame, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// One monitored named lock.
pub struct LockSpec {
    pub name: &'static str,
    pub desc: &'static str,
    /// True when holding this lock across blocking I/O is the lock's
    /// *purpose* (the db advisory lock serializes file writes) — GX702
    /// does not fire for it; GX701/GX703 still do.
    pub io_allowed: bool,
}

/// The workspace lock registry. Receiver identifiers outside this table
/// (`m.lock()` on a local) are ignored by the cross-function tier.
pub const LOCKS: &[LockSpec] = &[
    LockSpec {
        name: "sessions",
        desc: "serve session table (ServerState::sessions)",
        io_allowed: false,
    },
    LockSpec {
        name: "conns",
        desc: "serve connection registry (ServerState::conns)",
        io_allowed: false,
    },
    LockSpec {
        name: "inflight",
        desc: "serve per-tenant in-flight counters",
        io_allowed: false,
    },
    LockSpec {
        name: "entry",
        desc: "per-session slot lock (SessionSlot::entry)",
        io_allowed: false,
    },
    LockSpec {
        name: "job_tx",
        desc: "runtime executor job-sender slot",
        io_allowed: false,
    },
    LockSpec {
        name: "handles",
        desc: "runtime executor worker handles",
        io_allowed: false,
    },
    LockSpec {
        name: "abandoned",
        desc: "runtime executor abandoned-worker set",
        io_allowed: false,
    },
    LockSpec {
        name: "inner",
        desc: "runtime phase-stats cell",
        io_allowed: false,
    },
    LockSpec {
        name: "shard",
        desc: "trace event ring shard",
        io_allowed: false,
    },
    LockSpec {
        name: "tracks",
        desc: "trace track table",
        io_allowed: false,
    },
    LockSpec {
        name: "counters",
        desc: "trace counter registry",
        io_allowed: false,
    },
    LockSpec {
        name: "gauges",
        desc: "trace gauge registry",
        io_allowed: false,
    },
    LockSpec {
        name: "histograms",
        desc: "trace histogram registry",
        io_allowed: false,
    },
    LockSpec {
        name: DB_ADVISORY,
        desc: "db advisory file lock (FileLock::acquire)",
        io_allowed: true,
    },
];

fn lock_spec(name: &str) -> Option<&'static LockSpec> {
    LOCKS.iter().find(|l| l.name == name)
}

/// Deadline-arming calls recognised by GX303.
const DEADLINE_ARMERS: &[&str] = &["set_read_timeout", "set_write_timeout", "arm_deadlines"];

/// Call names that start or end socket lifecycles — not counted as "the
/// blocking op after accept/connect" by GX303 (each is its own check
/// site; severing before arming is fine).
const GX303_NEUTRAL: &[&str] = &["accept", "connect", "shutdown"];

/// Synchronising orderings for GX704.
const SYNC_ORDERINGS: &[&str] = &["Acquire", "Release", "AcqRel", "SeqCst"];

/// Runs the whole GX7xx tier plus GX303 over the parsed workspace.
pub fn check(files: &[ParsedFile], cfg: &Config) -> Vec<Diagnostic> {
    let ws = Workspace::build(files);
    let graph = build_lock_graph(&ws);
    let mut out = Vec::new();
    check_gx701(&graph, cfg, &mut out);
    check_gx702(&ws, cfg, &mut out);
    check_gx703(&graph, cfg, &mut out);
    check_gx704(&ws, cfg, &mut out);
    check_gx303(&ws, cfg, &mut out);
    out
}

/// The held-while-acquiring graph over registry locks, from direct
/// acquisitions and from calls whose callees (transitively) acquire.
pub fn build_lock_graph(ws: &Workspace) -> LockGraph {
    let mut graph = LockGraph::default();
    for (i, f) in ws.fns.iter().enumerate() {
        let _ = i;
        for ev in &f.events {
            let held: Vec<&str> = ev
                .held
                .iter()
                .map(String::as_str)
                .filter(|h| lock_spec(h).is_some())
                .collect();
            if held.is_empty() {
                continue;
            }
            match &ev.kind {
                EventKind::Acquire { lock } => {
                    if lock_spec(lock).is_none() {
                        continue;
                    }
                    for h in &held {
                        graph.add(
                            h,
                            lock,
                            vec![Frame {
                                path: f.path.clone(),
                                line: ev.line,
                                func: f.name.clone(),
                                what: format!("holding `{h}`, acquires `{lock}`"),
                            }],
                        );
                    }
                }
                EventKind::Call { name, .. } => {
                    for &callee in ws.resolve(name) {
                        for (lock, chain) in &ws.summaries[callee].acquires {
                            if lock_spec(lock).is_none() {
                                continue;
                            }
                            for h in &held {
                                let mut witness = vec![Frame {
                                    path: f.path.clone(),
                                    line: ev.line,
                                    func: f.name.clone(),
                                    what: format!("holding `{h}`, calls `{name}`"),
                                }];
                                witness.extend(chain.iter().cloned());
                                graph.add(h, lock, witness);
                            }
                        }
                    }
                }
                EventKind::Atomic { .. } => {}
            }
        }
    }
    graph
}

fn check_gx701(graph: &LockGraph, cfg: &Config, out: &mut Vec<Diagnostic>) {
    for cycle in graph.cycles() {
        let mut paths = Vec::new();
        for (k, a) in cycle.iter().enumerate() {
            let b = &cycle[(k + 1) % cycle.len()];
            if let Some(w) = graph.witness(a, b) {
                paths.push(format!("path {}: {}", k + 1, render_chain(w)));
            }
        }
        let head = cycle
            .first()
            .and_then(|a| graph.witness(a, &cycle[1 % cycle.len()]))
            .and_then(|w| w.first().cloned());
        let Some(head) = head else { continue };
        if cfg.allowed_fn("GX701", &head.path, &head.func) {
            continue;
        }
        let ring = cycle
            .iter()
            .chain(cycle.first())
            .map(|l| format!("`{l}`"))
            .collect::<Vec<_>>()
            .join(" -> ");
        out.push(Diagnostic {
            path: head.path.clone(),
            line: head.line,
            rule: "GX701",
            msg: format!("lock-order inversion {ring}; {}", paths.join("; ")),
        });
    }
}

fn check_gx702(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for f in &ws.fns {
        for ev in &f.events {
            let EventKind::Call { name, argless } = &ev.kind else {
                continue;
            };
            let monitored: Vec<&str> = ev
                .held
                .iter()
                .map(String::as_str)
                .filter(|h| lock_spec(h).is_some_and(|s| !s.io_allowed))
                .collect();
            if monitored.is_empty() {
                continue;
            }
            let blocking: Option<String> =
                if let Some(desc) = Workspace::blocking_primitive(name, *argless) {
                    Some(format!("`{name}` ({desc})"))
                } else {
                    ws.resolve(name)
                        .iter()
                        .find_map(|&c| ws.summaries[c].blocks.as_ref())
                        .map(|chain| format!("`{name}`: {}", render_chain(chain)))
                };
            let Some(blocking) = blocking else { continue };
            if cfg.allowed_fn("GX702", &f.path, &f.name) {
                continue;
            }
            for lock in monitored {
                if !seen.insert((f.path.clone(), ev.line, lock.to_string())) {
                    continue;
                }
                out.push(Diagnostic {
                    path: f.path.clone(),
                    line: ev.line,
                    rule: "GX702",
                    msg: format!(
                        "guard on `{lock}` held across may-blocking call {blocking} — \
                         release the guard (clone/take what you need) before blocking"
                    ),
                });
            }
        }
    }
}

fn check_gx703(graph: &LockGraph, cfg: &Config, out: &mut Vec<Diagnostic>) {
    for (lock, witness) in graph.self_loops() {
        let Some(head) = witness.first() else {
            continue;
        };
        if cfg.allowed_fn("GX703", &head.path, &head.func) {
            continue;
        }
        out.push(Diagnostic {
            path: head.path.clone(),
            line: head.line,
            rule: "GX703",
            msg: format!(
                "double-acquire of non-reentrant `{lock}` on a call path: {}",
                render_chain(&witness)
            ),
        });
    }
}

struct AtomicSite {
    path: String,
    line: u32,
    func: String,
    op: String,
    /// Effective (success) ordering.
    ordering: String,
}

fn check_gx704(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let mut by_field: BTreeMap<String, Vec<AtomicSite>> = BTreeMap::new();
    for f in &ws.fns {
        for ev in &f.events {
            let EventKind::Atomic {
                field,
                op,
                orderings,
            } = &ev.kind
            else {
                continue;
            };
            let Some(ordering) = orderings.first() else {
                continue;
            };
            by_field.entry(field.clone()).or_default().push(AtomicSite {
                path: f.path.clone(),
                line: ev.line,
                func: f.name.clone(),
                op: op.clone(),
                ordering: ordering.clone(),
            });
        }
    }
    for (field, sites) in &by_field {
        let sync = sites
            .iter()
            .find(|s| SYNC_ORDERINGS.contains(&s.ordering.as_str()));
        let Some(sync) = sync else { continue };
        for s in sites.iter().filter(|s| s.ordering == "Relaxed") {
            if cfg.allowed_fn("GX704", &s.path, &s.func) {
                continue;
            }
            out.push(Diagnostic {
                path: s.path.clone(),
                line: s.line,
                rule: "GX704",
                msg: format!(
                    "relaxed `{}` on atomic `{field}` mixes with {} `{}` at {}:{} — \
                     a release/acquire handshake needs matching orderings on both sides",
                    s.op, sync.ordering, sync.op, sync.path, sync.line
                ),
            });
        }
    }
}

/// GX303, summary-based: in `crates/serve`, every socket obtained from
/// `accept()` / `connect(..)` must reach a deadline-arming call before
/// the function performs any other may-blocking operation. Replaces the
/// old "armed within 12 lines" lexical heuristic.
fn check_gx303(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) {
    for f in ws
        .fns
        .iter()
        .filter(|f| f.path.starts_with("crates/serve/"))
    {
        for (i, ev) in f.events.iter().enumerate() {
            let EventKind::Call { name, argless } = &ev.kind else {
                continue;
            };
            let is_socket_source =
                (name == "accept" && *argless) || (name == "connect" && !*argless);
            if !is_socket_source {
                continue;
            }
            let mut armer: Option<usize> = None;
            let mut blocker: Option<(usize, String)> = None;
            for (j, later) in f.events.iter().enumerate().skip(i + 1) {
                let EventKind::Call {
                    name: n,
                    argless: al,
                } = &later.kind
                else {
                    continue;
                };
                if DEADLINE_ARMERS.contains(&n.as_str()) {
                    armer = Some(j);
                    break;
                }
                if GX303_NEUTRAL.contains(&n.as_str()) {
                    continue;
                }
                let blocks = Workspace::blocking_primitive(n, *al).is_some()
                    || ws
                        .resolve(n)
                        .iter()
                        .any(|&c| ws.summaries[c].blocks.is_some());
                if blocks && blocker.is_none() {
                    blocker = Some((j, n.clone()));
                }
            }
            let flagged = match (armer, &blocker) {
                (Some(a), Some((b, _))) => b < &a,
                (None, Some(_)) => true,
                _ => false,
            };
            if !flagged {
                continue;
            }
            if cfg.allowed_fn("GX303", &f.path, &f.name) {
                continue;
            }
            let (_, bname) = blocker.expect("flagged implies blocker");
            out.push(Diagnostic {
                path: f.path.clone(),
                line: ev.line,
                rule: "GX303",
                msg: format!(
                    "socket from `{name}` reaches may-blocking `{bname}` before any \
                     deadline-arming call ({}) — a slow peer wedges this thread forever",
                    DEADLINE_ARMERS.join("/")
                ),
            });
        }
    }
}

/// Text + DOT dump of the acquisition graph (`lint --lock-graph`).
pub fn lock_graph_report(files: &[ParsedFile]) -> String {
    let ws = Workspace::build(files);
    let graph = build_lock_graph(&ws);
    let mut out = render_text(&graph);
    out.push('\n');
    out.push_str(&render_dot(&graph));
    out
}

/// Text-only dump (golden-file tested).
pub fn lock_graph_text(files: &[ParsedFile]) -> String {
    let ws = Workspace::build(files);
    render_text(&build_lock_graph(&ws))
}

/// Long-form `--explain` texts for the rules with non-obvious models.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "GX303" => {
            "GX303 — serve sockets must be deadline-armed before blocking.\n\
             Every socket obtained from accept()/connect(..) in crates/serve must\n\
             reach set_read_timeout/set_write_timeout/arm_deadlines before the\n\
             function performs any other may-blocking operation (summary-based:\n\
             a callee that blocks three frames down counts). An unarmed socket\n\
             plus a slow peer wedges an acceptor thread forever — the exact\n\
             failure the serve chaos suite injects."
        }
        "GX701" => {
            "GX701 — lock-order inversion.\n\
             The analyzer builds a held-while-acquiring graph over the named-lock\n\
             registry (session table, conns, inflight, per-session entry, runtime\n\
             executor locks, trace shards, the db advisory file lock): an edge\n\
             a -> b means some call path acquires b while holding a, including\n\
             acquisitions buried in callees (summaries propagated to fixpoint).\n\
             Any cycle is a potential deadlock; the diagnostic prints one witness\n\
             acquisition path per edge. Fix by committing to one acquisition\n\
             order (DESIGN.md §6 documents the canonical order) or by narrowing\n\
             a guard so the second lock is taken after release."
        }
        "GX702" => {
            "GX702 — guard held across a may-blocking call (interprocedural).\n\
             Per-function summaries record whether each fn may block (socket/file\n\
             I/O, channel recv, join, sleep) and which named locks it acquires;\n\
             propagation over the workspace call graph means a callee that blocks\n\
             three frames down is caught at the guard-holding frame. This\n\
             generalizes the lexical GX301/GX302. Fix by cloning/taking what you\n\
             need and dropping the guard before blocking; deliberate exceptions\n\
             (journal-before-ack under the per-session entry lock) carry\n\
             fn-scoped lint.toml allows with written rationale."
        }
        "GX703" => {
            "GX703 — double-acquire of a non-reentrant lock.\n\
             A self-loop in the held-while-acquiring graph: some call path\n\
             re-acquires a std::sync::Mutex (or parking_lot lock) it already\n\
             holds — a guaranteed self-deadlock, often hidden behind a helper\n\
             that locks internally. The witness chain shows the re-entry path."
        }
        "GX704" => {
            "GX704 — relaxed atomic in a release/acquire handshake.\n\
             Atomic ops are grouped by field name across the workspace; if a\n\
             field is written/read with Acquire/Release/SeqCst anywhere, every\n\
             Relaxed op on the same field is flagged: mixing orderings silently\n\
             removes the happens-before edge the synchronized side was built to\n\
             provide. Pure counters/stamps (all-Relaxed) are fine."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn run(srcs: &[(&str, &str)]) -> Vec<Diagnostic> {
        let lexed: Vec<_> = srcs.iter().map(|(_, s)| lex(s)).collect();
        let parsed: Vec<_> = srcs
            .iter()
            .zip(&lexed)
            .map(|((p, _), l)| parse_file(&FileCtx::new(p, l)))
            .collect();
        check(&parsed, &Config::default())
    }

    fn rule_lines(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
        diags
            .iter()
            .filter(|d| d.rule == rule)
            .map(|d| d.line)
            .collect()
    }

    #[test]
    fn gx701_inversion_across_helpers() {
        let diags = run(&[(
            "crates/serve/src/a.rs",
            "fn ab(s: &S) { let g = s.sessions.lock().unwrap(); take_inflight(s); }\n\
             fn take_inflight(s: &S) { let h = s.inflight.lock().unwrap(); h.bump(); }\n\
             fn ba(s: &S) { let g = s.inflight.lock().unwrap(); take_sessions(s); }\n\
             fn take_sessions(s: &S) { let h = s.sessions.lock().unwrap(); h.bump(); }\n",
        )]);
        let gx701: Vec<_> = diags.iter().filter(|d| d.rule == "GX701").collect();
        assert_eq!(gx701.len(), 1, "{diags:?}");
        let msg = &gx701[0].msg;
        assert!(msg.contains("path 1:") && msg.contains("path 2:"), "{msg}");
        assert!(msg.contains("ab") && msg.contains("ba"), "{msg}");
    }

    #[test]
    fn gx702_two_frames_deep() {
        let diags = run(&[(
            "crates/serve/src/a.rs",
            "fn top(s: &S) { let g = s.conns.lock().unwrap(); mid(s); }\n\
             fn mid(s: &S) { bot(s); }\n\
             fn bot(s: &mut TcpStream) { s.read_exact(&mut [0u8; 4]).unwrap(); }\n",
        )]);
        assert_eq!(rule_lines(&diags, "GX702"), vec![1], "{diags:?}");
        let msg = &diags.iter().find(|d| d.rule == "GX702").unwrap().msg;
        assert!(msg.contains("mid") && msg.contains("read_exact"), "{msg}");
    }

    #[test]
    fn gx702_clean_when_guard_dropped_first() {
        let diags = run(&[(
            "crates/serve/src/a.rs",
            "fn top(s: &S) { let g = s.conns.lock().unwrap(); drop(g); mid(s); }\n\
             fn mid(s: &mut TcpStream) { s.read_exact(&mut [0u8; 4]).unwrap(); }\n",
        )]);
        assert!(rule_lines(&diags, "GX702").is_empty(), "{diags:?}");
    }

    #[test]
    fn gx703_reacquire_via_helper() {
        let diags = run(&[(
            "crates/serve/src/a.rs",
            "fn f(s: &S) { let g = s.sessions.lock().unwrap(); helper(s); }\n\
             fn helper(s: &S) { let h = s.sessions.lock().unwrap(); h.bump(); }\n",
        )]);
        assert_eq!(rule_lines(&diags, "GX703"), vec![1], "{diags:?}");
    }

    #[test]
    fn gx704_mixed_orderings() {
        let diags = run(&[(
            "crates/runtime/src/a.rs",
            "fn publish(s: &S) { s.ready.store(true, Ordering::Release); }\n\
             fn poll(s: &S) -> bool { s.ready.load(Ordering::Relaxed) }\n",
        )]);
        assert_eq!(rule_lines(&diags, "GX704"), vec![2], "{diags:?}");
    }

    #[test]
    fn gx704_all_relaxed_counter_is_clean() {
        let diags = run(&[(
            "crates/runtime/src/a.rs",
            "fn bump(s: &S) { s.hits.fetch_add(1, Ordering::Relaxed); }\n\
             fn read(s: &S) -> u64 { s.hits.load(Ordering::Relaxed) }\n",
        )]);
        assert!(rule_lines(&diags, "GX704").is_empty(), "{diags:?}");
    }

    #[test]
    fn gx303_blocker_before_armer() {
        let diags = run(&[(
            "crates/serve/src/a.rs",
            "fn f(l: &TcpListener) {\n\
             let (mut s, _) = l.accept().unwrap();\n\
             s.read_exact(&mut [0u8; 4]).unwrap();\n\
             s.set_read_timeout(None).unwrap();\n\
             }\n",
        )]);
        assert_eq!(rule_lines(&diags, "GX303"), vec![2], "{diags:?}");
    }

    #[test]
    fn gx303_armed_via_helper_summary_is_clean() {
        let diags = run(&[(
            "crates/serve/src/a.rs",
            "fn f(l: &TcpListener) {\n\
             let (mut s, _) = l.accept().unwrap();\n\
             arm_deadlines(&s);\n\
             s.read_exact(&mut [0u8; 4]).unwrap();\n\
             }\n\
             fn arm_deadlines(s: &TcpStream) { s.set_read_timeout(None).unwrap(); }\n",
        )]);
        assert!(rule_lines(&diags, "GX303").is_empty(), "{diags:?}");
    }

    #[test]
    fn gx303_does_not_apply_outside_serve() {
        let diags = run(&[(
            "crates/runtime/src/a.rs",
            "fn f(l: &TcpListener) {\n\
             let (mut s, _) = l.accept().unwrap();\n\
             s.read_exact(&mut [0u8; 4]).unwrap();\n\
             }\n",
        )]);
        assert!(rule_lines(&diags, "GX303").is_empty(), "{diags:?}");
    }

    #[test]
    fn unregistered_local_locks_are_ignored() {
        let diags = run(&[(
            "crates/runtime/src/a.rs",
            "fn f(m: &Mutex<u8>, s: &mut TcpStream) { let g = m.lock().unwrap(); s.read_exact(&mut [0u8; 1]).unwrap(); }\n",
        )]);
        assert!(rule_lines(&diags, "GX702").is_empty(), "{diags:?}");
    }

    #[test]
    fn db_advisory_io_is_allowed_but_graphed() {
        let srcs = &[(
            "crates/db/src/a.rs",
            "fn append(p: &Path, o: &LockOptions, buf: &[u8], w: &mut File) -> io::Result<()> {\n\
             let _guard = FileLock::acquire(p, o)?;\n\
             w.write_all(buf)\n\
             }\n",
        )];
        let diags = run(srcs);
        assert!(rule_lines(&diags, "GX702").is_empty(), "{diags:?}");
    }
}
