//! Table 3 — phase-time breakdown of single-task vs multitask tuning.
//!
//! Paper (upper): PDGEQRF (64 nodes, budget δ·ε_tot = 100) and PDSYEVX
//! (1 node) — total / objective / modeling / search seconds for the
//! single-task and multitask settings. Multitask spends *less* objective
//! time (the 9 extra tasks are cheaper) but *more* modeling time (the LCM
//! covariance is δ× larger).
//!
//! Paper (lower): M3D_C1 (single: t=3, ε_tot=80 vs multi: t=1,1,1,3,
//! ε_tot=20) and NIMROD (single: t=15 vs multi: t=3,3,3,15) — similar
//! best runtime, much smaller total application time for multitask.
//!
//! Objective seconds are the simulator's virtual seconds; modeling/search
//! are wall-clock of this implementation (so their absolute scale differs
//! from the paper's Python/Cori numbers, but the single-vs-multi *shape*
//! is the comparison).

use gptune::apps::{HpcApp, M3dc1App, MachineModel, NimrodApp, PdgeqrfApp, PdsyevxApp};
use gptune::core::{mla, MlaOptions};
use gptune::problem_from_app;
use gptune::space::Value;
use gptune_bench::banner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn opts(budget: usize, seed: u64) -> MlaOptions {
    let mut o = MlaOptions::default().with_budget(budget).with_seed(seed);
    o.lcm.n_starts = 3;
    o.lcm.lbfgs.max_iters = 25;
    o.runs_per_eval = 3;
    o
}

fn print_row(label: &str, stats: &gptune::runtime::PhaseStats) {
    println!(
        "{:<14} {:>11.1} {:>11.1} {:>11.3} {:>11.3}",
        label,
        stats.total_secs(),
        stats.objective_virtual_secs,
        stats.modeling_wall.as_secs_f64(),
        stats.search_wall.as_secs_f64()
    );
}

fn main() {
    banner(
        "Table 3 — phase-time breakdown, single-task vs multitask",
        "PDGEQRF/PDSYEVX upper; M3D_C1/NIMROD lower (best runtime + total app time)",
        "identical protocol; objective = simulated seconds, modeling/search = wall",
    );

    // ---------------- PDGEQRF ----------------
    let app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(MachineModel::cori(64), 40_000));
    let big = vec![Value::Int(23_324), Value::Int(26_545)];
    let mut rng = StdRng::seed_from_u64(17);
    let mut tasks = vec![big.clone()];
    for _ in 0..9 {
        tasks.push(vec![
            Value::Int(rng.gen_range(1000..40_000)),
            Value::Int(rng.gen_range(1000..40_000)),
        ]);
    }
    let problem = problem_from_app(Arc::clone(&app), tasks);

    println!("\nPDGEQRF (δ·ε_tot = 100):");
    println!(
        "{:<14} {:>11} {:>11} {:>11} {:>11}",
        "", "total(s)", "objective", "modeling", "search"
    );
    let single_problem = gptune::core::TuningProblem {
        tasks: vec![big.clone()],
        ..problem.clone()
    };
    let st = mla::tune(&single_problem, &opts(100, 19));
    print_row("single-task", &st.stats);
    let mt = mla::tune(&problem, &opts(10, 19));
    print_row("multitask", &mt.stats);
    println!(
        "  best on (23324,26545): single {:.3}s vs multi {:.3}s",
        st.per_task[0].best_value, mt.per_task[0].best_value
    );

    // ---------------- PDSYEVX ----------------
    let eig_app: Arc<dyn HpcApp> = Arc::new(PdsyevxApp::new(MachineModel::cori(1), 8000));
    let ms: Vec<i64> = vec![3000, 3500, 4000, 4500, 5000, 5500, 6000, 6500, 7000];
    let eig_tasks: Vec<Vec<Value>> = ms.iter().map(|&m| vec![Value::Int(m)]).collect();
    let eig_problem = problem_from_app(Arc::clone(&eig_app), eig_tasks);

    println!("\nPDSYEVX:");
    println!(
        "{:<14} {:>11} {:>11} {:>11} {:>11}",
        "", "total(s)", "objective", "modeling", "search"
    );
    let eig_single = gptune::core::TuningProblem {
        tasks: vec![vec![Value::Int(7000)]],
        ..eig_problem.clone()
    };
    let es = mla::tune(&eig_single, &opts(90, 23));
    print_row("single-task", &es.stats);
    let em = mla::tune(&eig_problem, &opts(10, 23));
    print_row("multitask", &em.stats);
    println!(
        "  best at m=7000: single {:.3}s vs multi {:.3}s",
        es.per_task[0].best_value,
        em.per_task[ms.len() - 1].best_value
    );

    // ---------------- M3D_C1 ----------------
    let m3d: Arc<dyn HpcApp> = Arc::new(M3dc1App::new(MachineModel::cori(1)));
    println!("\nM3D_C1 (single: t=3, ε_tot=80 | multi: t=1,1,1,3, ε_tot=20):");
    println!("{:<14} {:>11} {:>11}", "", "minimum(s)", "total app(s)");
    let m3d_single = problem_from_app(Arc::clone(&m3d), vec![vec![Value::Int(3)]]);
    let mut o = opts(80, 29);
    o.runs_per_eval = 1;
    let s = mla::tune(&m3d_single, &o);
    println!(
        "{:<14} {:>11.2} {:>11.0}",
        "single-task", s.per_task[0].best_value, s.stats.objective_virtual_secs
    );
    let m3d_multi = problem_from_app(
        Arc::clone(&m3d),
        vec![
            vec![Value::Int(1)],
            vec![Value::Int(1)],
            vec![Value::Int(1)],
            vec![Value::Int(3)],
        ],
    );
    let mut o = opts(20, 29);
    o.runs_per_eval = 1;
    let m = mla::tune(&m3d_multi, &o);
    println!(
        "{:<14} {:>11.2} {:>11.0}",
        "multitask", m.per_task[3].best_value, m.stats.objective_virtual_secs
    );

    // ---------------- NIMROD ----------------
    let nim: Arc<dyn HpcApp> = Arc::new(NimrodApp::new(MachineModel::cori(6)));
    println!("\nNIMROD (single: t=15, ε_tot=80 | multi: t=3,3,3,15, ε_tot=20):");
    println!("{:<14} {:>11} {:>11}", "", "minimum(s)", "total app(s)");
    let nim_single = problem_from_app(Arc::clone(&nim), vec![vec![Value::Int(15)]]);
    let mut o = opts(80, 37);
    o.runs_per_eval = 1;
    let s = mla::tune(&nim_single, &o);
    println!(
        "{:<14} {:>11.2} {:>11.0}",
        "single-task", s.per_task[0].best_value, s.stats.objective_virtual_secs
    );
    let nim_multi = problem_from_app(
        Arc::clone(&nim),
        vec![
            vec![Value::Int(3)],
            vec![Value::Int(3)],
            vec![Value::Int(3)],
            vec![Value::Int(15)],
        ],
    );
    let mut o = opts(20, 37);
    o.runs_per_eval = 1;
    let m = mla::tune(&nim_multi, &o);
    println!(
        "{:<14} {:>11.2} {:>11.0}",
        "multitask", m.per_task[3].best_value, m.stats.objective_virtual_secs
    );

    println!("\nShape check vs paper: multitask attains similar minima with much lower total");
    println!("objective/application time; its modeling phase costs more (larger joint LCM).");
}
