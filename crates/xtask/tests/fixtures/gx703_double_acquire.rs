// GX703 triggering fixture: a helper re-acquires the sessions lock its
// caller already holds — a guaranteed self-deadlock with std Mutex.

fn evict(s: &ServerState) {
    let table = s.sessions.lock().unwrap();
    let victim = pick_victim(s);
    table.remove(victim);
}

fn pick_victim(s: &ServerState) -> u64 {
    let table = s.sessions.lock().unwrap();
    table.oldest()
}
