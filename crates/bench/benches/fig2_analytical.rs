//! Fig. 2 — the analytical objective `y(t, x)` of Eq. 11 for four task
//! values, with the located global minimum of each curve.
//!
//! The paper plots the four curves; this harness prints each as a dense
//! series (ASCII sparkline + CSV-style samples) and reports the minima.

use gptune::apps::AnalyticalApp;
use gptune_bench::{banner, sparkline};

fn main() {
    banner(
        "Fig. 2 — analytical objective y(t,x), Eq. 11",
        "curves for four values of t with marked minima",
        "identical (exact formula, 400-point series, 100k-point minima)",
    );

    let ts = [0.0, 2.0, 4.5, 8.0];
    let n = 400;
    for &t in &ts {
        let ys: Vec<f64> = (0..n)
            .map(|j| AnalyticalApp::exact(t, j as f64 / (n - 1) as f64))
            .collect();
        let (xmin, ymin) = AnalyticalApp::true_minimum(t, 100_000);
        println!("\n t = {t}");
        println!("   {}", sparkline(&ys));
        println!("   min at x* = {xmin:.6}, y* = {ymin:.6}");
        // A coarse series for external plotting.
        print!("   series x,y: ");
        for j in (0..n).step_by(40) {
            print!("({:.2},{:.3}) ", j as f64 / (n - 1) as f64, ys[j]);
        }
        println!();
    }
    println!(
        "\nShape check: larger t ⇒ faster oscillation near x = 0 and a deeper envelope decay,"
    );
    println!("matching the paper's description of increasingly hard black-box problems.");
}
