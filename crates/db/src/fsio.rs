//! Crash-safe filesystem primitives.
//!
//! Two write disciplines cover every durable artifact of the database:
//!
//! * **Snapshots** (checkpoints, compacted journals, `History` files) use
//!   write-to-temp → fsync → atomic rename → fsync(dir). A crash at any
//!   point leaves either the complete old file or the complete new file,
//!   never a torn mixture.
//! * **Journals** use append + fsync of whole lines; a crash can only tear
//!   the final line, which recovery drops (see [`crate::journal`]).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the destination, then fsync the directory so the
/// rename itself is durable.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(d) = dir {
        fs::create_dir_all(d)?;
    }
    let tmp = temp_sibling(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    match fs::rename(&tmp, path) {
        Ok(()) => {}
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
    }
    if let Some(d) = dir {
        sync_dir(d);
    }
    Ok(())
}

/// A unique temp-file path in the same directory as `path` (same
/// filesystem, so the rename is atomic).
fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    name.push_str(&format!(".tmp.{}", std::process::id()));
    // Disambiguate concurrent writers within one process.
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    name.push_str(&format!(".{}", COUNTER.fetch_add(1, Ordering::Relaxed)));
    path.with_file_name(name)
}

/// Best-effort directory fsync (makes renames/creates durable on POSIX;
/// a no-op failure on platforms that refuse to open directories).
pub fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Opens a file for durable appending, creating it (and its directory)
/// when missing.
pub fn open_append(path: &Path) -> io::Result<File> {
    if let Some(d) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(d)?;
    }
    OpenOptions::new().create(true).append(true).open(path)
}

/// Appends `bytes` as one durable write: single `write_all` + `sync_data`.
pub fn append_durable(file: &mut File, bytes: &[u8]) -> io::Result<()> {
    file.write_all(bytes)?;
    file.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gptune_db_fsio_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_creates_and_replaces() {
        let d = tmpdir("basic");
        let p = d.join("x.json");
        atomic_write(&p, b"first").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"first");
        atomic_write(&p, b"second").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"second");
        // No temp litter left behind.
        let leftovers: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn atomic_write_creates_missing_directory() {
        let d = tmpdir("mkdir").join("a").join("b");
        let p = d.join("y.json");
        atomic_write(&p, b"data").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"data");
        let _ = fs::remove_dir_all(d.parent().unwrap().parent().unwrap());
    }

    #[test]
    fn append_accumulates() {
        let d = tmpdir("append");
        let p = d.join("j.jsonl");
        let mut f = open_append(&p).unwrap();
        append_durable(&mut f, b"one\n").unwrap();
        append_durable(&mut f, b"two\n").unwrap();
        drop(f);
        let mut f = open_append(&p).unwrap();
        append_durable(&mut f, b"three\n").unwrap();
        drop(f);
        assert_eq!(fs::read_to_string(&p).unwrap(), "one\ntwo\nthree\n");
        let _ = fs::remove_dir_all(&d);
    }
}
