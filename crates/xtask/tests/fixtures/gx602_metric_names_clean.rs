//! GX602 clean fixture: the shipped idiom — every name a taxonomy
//! literal, dynamic dispatch resolved through a closed match so each
//! branch still hands the tracer a literal.
use gptune_trace::{HistogramHandle, MetricsSnapshot, Tracer};

pub fn request_path(tracer: &Tracer, op: &str, micros: u64) {
    latency_histogram(tracer, op).record(micros);
    tracer.counter("gptune.serve.requests").add(1);
    let span = tracer.span("gptune.serve.request").with("op", op);
    drop(span);
}

fn latency_histogram(tracer: &Tracer, op: &str) -> HistogramHandle {
    match op {
        "suggest" => tracer.histogram("gptune.serve.latency_us.suggest"),
        "report" => tracer.histogram("gptune.serve.latency_us.report"),
        _ => tracer.histogram("gptune.serve.latency_us.parse_error"),
    }
}

pub fn readout(m: &MetricsSnapshot) -> u64 {
    // Snapshot lookups share the taxonomy: literals lint clean.
    m.counter("gptune.serve.requests").unwrap_or(0)
}
