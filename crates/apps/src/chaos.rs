//! Deterministic fault injection for the simulated applications.
//!
//! Real tuning campaigns lose evaluations to crashes (invalid block sizes
//! aborting ScaLAPACK), hangs (deadlocked MPI collectives), and transient
//! node glitches. [`FaultyApp`] wraps any [`HpcApp`] and injects those
//! faults *deterministically*: whether a given `(task, config)` crashes or
//! hangs is a pure function of the point and the chaos seed, exactly like
//! the run-to-run noise in [`noise`]. That makes chaos tests reproducible —
//! the same chaos seed always kills the same configurations, so a killed
//! and resumed run sees the same fault pattern as an uninterrupted one.
//!
//! Fault bands are carved out of a single uniform draw per point:
//! `[0, crash_rate)` crashes, `[crash_rate, crash_rate + hang_rate)` hangs.
//! Transient faults additionally mix in the evaluation seed, so a retry
//! (which the executor salts with the attempt number) can succeed where
//! the first attempt failed.

use crate::{noise, HpcApp};
use gptune_runtime::TransientSignal;
use gptune_space::{Config, Space, Value};
use std::time::Duration;

/// Salt for the persistent (per-point) fault draw.
const PERSISTENT_SALT: u64 = 0x7c3a_11e5_9d2f_0b61;
/// Salt for the transient (per-point-per-seed) fault draw.
const TRANSIENT_SALT: u64 = 0x2b99_4c6d_e0f7_8a13;

/// A persistent, deterministic fault attached to a `(task, config)` point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Every evaluation of the point panics.
    Crash,
    /// Every evaluation of the point sleeps for [`FaultSpec::hang`] before
    /// returning normally (long enough to trip a watchdog deadline, short
    /// enough that the worker thread eventually frees itself).
    Hang,
}

/// Fault-injection rates and seed for a [`FaultyApp`].
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Fraction of `(task, config)` points that crash every evaluation.
    pub crash_rate: f64,
    /// Fraction of `(task, config)` points that hang every evaluation.
    pub hang_rate: f64,
    /// Per-evaluation probability of a retryable transient fault
    /// (signalled via [`TransientSignal`], varies with the seed).
    pub transient_rate: f64,
    /// How long a hanging point sleeps before returning.
    pub hang: Duration,
    /// Seed of the fault pattern: different seeds kill different points.
    pub chaos_seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            crash_rate: 0.0,
            hang_rate: 0.0,
            transient_rate: 0.0,
            hang: Duration::from_secs(1),
            chaos_seed: 0,
        }
    }
}

/// Wraps an application and injects deterministic faults per [`FaultSpec`].
pub struct FaultyApp<A: HpcApp> {
    inner: A,
    spec: FaultSpec,
    name: String,
}

impl<A: HpcApp> FaultyApp<A> {
    /// Wraps `inner`; the wrapper reports its name as `chaos(<inner>)`.
    pub fn new(inner: A, spec: FaultSpec) -> FaultyApp<A> {
        let name = format!("chaos({})", inner.name());
        FaultyApp { inner, spec, name }
    }

    /// The wrapped application.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The persistent fault injected at this point, if any — a pure
    /// function of `(task, config, chaos_seed)`, so tests can predict
    /// which configurations will fail.
    pub fn persistent_fault(&self, task: &[Value], config: &[Value]) -> Option<InjectedFault> {
        let u = noise::uniform01(noise::hash_point(
            task,
            config,
            self.spec.chaos_seed ^ PERSISTENT_SALT,
        ));
        if u < self.spec.crash_rate {
            Some(InjectedFault::Crash)
        } else if u < self.spec.crash_rate + self.spec.hang_rate {
            Some(InjectedFault::Hang)
        } else {
            None
        }
    }

    /// Whether this evaluation (point *and* seed) hits a transient fault.
    /// Distinct seeds redraw, so the executor's attempt-salted retries can
    /// succeed where the first attempt failed.
    pub fn injects_transient(&self, task: &[Value], config: &[Value], seed: u64) -> bool {
        let u = noise::uniform01(noise::hash_point(
            task,
            config,
            self.spec
                .chaos_seed
                .wrapping_add(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                ^ TRANSIENT_SALT,
        ));
        u < self.spec.transient_rate
    }
}

impl<A: HpcApp> HpcApp for FaultyApp<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn task_space(&self) -> &Space {
        self.inner.task_space()
    }

    fn tuning_space(&self) -> &Space {
        self.inner.tuning_space()
    }

    fn n_objectives(&self) -> usize {
        self.inner.n_objectives()
    }

    fn evaluate(&self, task: &[Value], config: &[Value], seed: u64) -> Vec<f64> {
        match self.persistent_fault(task, config) {
            Some(InjectedFault::Crash) => {
                panic!("injected crash at {:?} / {:?}", task, config);
            }
            Some(InjectedFault::Hang) => {
                std::thread::sleep(self.spec.hang);
            }
            None => {}
        }
        if self.injects_transient(task, config, seed) {
            std::panic::panic_any(TransientSignal(format!(
                "injected transient fault at {:?} / {:?} (seed {seed})",
                task, config
            )));
        }
        self.inner.evaluate(task, config, seed)
    }

    fn model_features(&self, task: &[Value], config: &[Value]) -> Option<Vec<f64>> {
        self.inner.model_features(task, config)
    }

    fn default_config(&self) -> Option<Config> {
        self.inner.default_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalyticalApp;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn spec(crash: f64, hang: f64, transient: f64) -> FaultSpec {
        FaultSpec {
            crash_rate: crash,
            hang_rate: hang,
            transient_rate: transient,
            hang: Duration::from_millis(5),
            chaos_seed: 42,
        }
    }

    fn points(n: usize) -> Vec<(Vec<Value>, Vec<Value>)> {
        (0..n)
            .map(|i| {
                (
                    vec![Value::Real(1.0 + (i % 7) as f64)],
                    vec![Value::Real(i as f64 / n as f64)],
                )
            })
            .collect()
    }

    #[test]
    fn fault_pattern_is_deterministic() {
        let a = FaultyApp::new(AnalyticalApp::new(0.0), spec(0.2, 0.1, 0.0));
        let b = FaultyApp::new(AnalyticalApp::new(0.0), spec(0.2, 0.1, 0.0));
        for (t, c) in points(200) {
            assert_eq!(a.persistent_fault(&t, &c), b.persistent_fault(&t, &c));
        }
    }

    #[test]
    fn different_chaos_seeds_kill_different_points() {
        let a = FaultyApp::new(AnalyticalApp::new(0.0), spec(0.3, 0.0, 0.0));
        let mut other = spec(0.3, 0.0, 0.0);
        other.chaos_seed = 43;
        let b = FaultyApp::new(AnalyticalApp::new(0.0), other);
        let differs = points(200)
            .iter()
            .any(|(t, c)| a.persistent_fault(t, c) != b.persistent_fault(t, c));
        assert!(differs, "chaos seed should reshuffle the fault pattern");
    }

    #[test]
    fn fault_rates_are_roughly_honored() {
        let app = FaultyApp::new(AnalyticalApp::new(0.0), spec(0.15, 0.1, 0.0));
        let pts = points(4000);
        let crashes = pts
            .iter()
            .filter(|(t, c)| app.persistent_fault(t, c) == Some(InjectedFault::Crash))
            .count() as f64
            / pts.len() as f64;
        let hangs = pts
            .iter()
            .filter(|(t, c)| app.persistent_fault(t, c) == Some(InjectedFault::Hang))
            .count() as f64
            / pts.len() as f64;
        assert!((crashes - 0.15).abs() < 0.03, "crash fraction {crashes}");
        assert!((hangs - 0.1).abs() < 0.03, "hang fraction {hangs}");
    }

    #[test]
    fn crash_point_panics_and_clean_point_delegates() {
        let app = FaultyApp::new(AnalyticalApp::new(0.0), spec(0.3, 0.0, 0.0));
        let pts = points(100);
        let crash = pts
            .iter()
            .find(|(t, c)| app.persistent_fault(t, c) == Some(InjectedFault::Crash))
            .expect("30% crash rate should hit within 100 points");
        let clean = pts
            .iter()
            .find(|(t, c)| app.persistent_fault(t, c).is_none())
            .expect("most points should be clean");

        let r = catch_unwind(AssertUnwindSafe(|| app.evaluate(&crash.0, &crash.1, 7)));
        assert!(r.is_err(), "crash point must panic");

        let y = app.evaluate(&clean.0, &clean.1, 7);
        assert_eq!(y, app.inner().evaluate(&clean.0, &clean.1, 7));
    }

    #[test]
    fn hang_point_sleeps_then_returns_inner_value() {
        let app = FaultyApp::new(AnalyticalApp::new(0.0), spec(0.0, 0.5, 0.0));
        let pts = points(50);
        let hang = pts
            .iter()
            .find(|(t, c)| app.persistent_fault(t, c) == Some(InjectedFault::Hang))
            .expect("50% hang rate should hit within 50 points");
        let start = std::time::Instant::now();
        let y = app.evaluate(&hang.0, &hang.1, 3);
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(y, app.inner().evaluate(&hang.0, &hang.1, 3));
    }

    #[test]
    fn transient_fault_panics_with_signal_and_varies_with_seed() {
        let app = FaultyApp::new(AnalyticalApp::new(0.0), spec(0.0, 0.0, 0.3));
        let t = vec![Value::Real(2.0)];
        let c = vec![Value::Real(0.4)];
        let faulty_seed = (0..200u64)
            .find(|&s| app.injects_transient(&t, &c, s))
            .expect("30% transient rate should hit within 200 seeds");
        let clean_seed = (0..200u64)
            .find(|&s| !app.injects_transient(&t, &c, s))
            .expect("some seed must be clean");

        let r = catch_unwind(AssertUnwindSafe(|| app.evaluate(&t, &c, faulty_seed)));
        let payload = r.expect_err("transient evaluation must panic");
        assert!(
            payload.downcast_ref::<TransientSignal>().is_some(),
            "panic payload must be TransientSignal so the executor retries"
        );

        let y = app.evaluate(&t, &c, clean_seed);
        assert!(y[0].is_finite());
    }

    #[test]
    fn zero_rates_are_transparent() {
        let app = FaultyApp::new(AnalyticalApp::new(0.0), FaultSpec::default());
        for (t, c) in points(50) {
            assert_eq!(app.persistent_fault(&t, &c), None);
            assert!(!app.injects_transient(&t, &c, 9));
            assert_eq!(app.evaluate(&t, &c, 9), app.inner().evaluate(&t, &c, 9));
        }
    }
}
