//! Householder QR factorization and least squares.
//!
//! The performance-model update phase of the paper (Sec. 3.3) fits the
//! hyperparameters `(t_flop, t_msg, t_vol)` of Eq. 7 to observed samples by
//! linear least squares; QR is the numerically stable way to do that.

use crate::ord::feq;
use crate::{LaError, Matrix, Result};

/// Compact Householder QR of an `m × n` matrix with `m ≥ n`.
///
/// Stores the Householder vectors below the diagonal of the packed factor
/// and `R` on and above it, LAPACK-style.
#[derive(Debug, Clone)]
pub struct Qr {
    qr: Matrix,
    /// Householder scalars `tau_k` with `H_k = I − tau_k v vᵀ`.
    tau: Vec<f64>,
}

impl Qr {
    /// Factorizes `a` (requires `rows ≥ cols`).
    pub fn factor(a: &Matrix) -> Qr {
        let (m, n) = (a.rows(), a.cols());
        assert!(m >= n, "Qr: requires rows >= cols");
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm2 = 0.0;
            for i in k..m {
                let v = qr.get(i, k);
                norm2 += v * v;
            }
            let norm = norm2.sqrt();
            if feq(norm, 0.0) {
                tau[k] = 0.0;
                continue;
            }
            let akk = qr.get(k, k);
            let alpha = if akk >= 0.0 { -norm } else { norm };
            // v = x − alpha e1, normalised so v[k] = 1.
            let v0 = akk - alpha;
            tau[k] = -v0 / alpha; // standard tau = (alpha − x1)/alpha sign-adjusted
            for i in (k + 1)..m {
                let v = qr.get(i, k) / v0;
                qr.set(i, k, v);
            }
            qr.set(k, k, alpha);
            // Apply H_k to trailing columns.
            for j in (k + 1)..n {
                let mut s = qr.get(k, j);
                for i in (k + 1)..m {
                    s += qr.get(i, k) * qr.get(i, j);
                }
                s *= tau[k];
                qr.add_at(k, j, -s);
                for i in (k + 1)..m {
                    let vik = qr.get(i, k);
                    qr.add_at(i, j, -s * vik);
                }
            }
        }
        Qr { qr, tau }
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Applies `Qᵀ` to a vector in place.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = (self.rows(), self.cols());
        assert_eq!(b.len(), m);
        for k in 0..n {
            if feq(self.tau[k], 0.0) {
                continue;
            }
            let mut s = b[k];
            for i in (k + 1)..m {
                s += self.qr.get(i, k) * b[i];
            }
            s *= self.tau[k];
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.qr.get(i, k);
            }
        }
    }

    /// The upper-triangular factor `R` (n × n).
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r.set(i, j, self.qr.get(i, j));
            }
        }
        r
    }

    /// Explicitly forms the thin `Q` (m × n) — mainly for tests.
    pub fn q(&self) -> Matrix {
        let (m, n) = (self.rows(), self.cols());
        let mut q = Matrix::zeros(m, n);
        let mut e = vec![0.0; m];
        for j in 0..n {
            e.iter_mut().for_each(|v| *v = 0.0);
            e[j] = 1.0;
            // Q e_j = H_1 … H_n e_j: apply reflectors in reverse.
            for k in (0..n).rev() {
                if feq(self.tau[k], 0.0) {
                    continue;
                }
                let mut s = e[k];
                for i in (k + 1)..m {
                    s += self.qr.get(i, k) * e[i];
                }
                s *= self.tau[k];
                e[k] -= s;
                for i in (k + 1)..m {
                    e[i] -= s * self.qr.get(i, k);
                }
            }
            for i in 0..m {
                q.set(i, j, e[i]);
            }
        }
        q
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// Returns `Err(RankDeficient)` when `R` has a (near-)zero diagonal.
    pub fn solve_lstsq(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = (self.rows(), self.cols());
        assert_eq!(b.len(), m, "solve_lstsq: dims");
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution on R.
        let tol = 1e-13 * self.qr.get(0, 0).abs().max(1.0);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let d = self.qr.get(i, i);
            if d.abs() <= tol {
                return Err(LaError::RankDeficient { rank: i });
            }
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.qr.get(i, j) * x[j];
            }
            x[i] = s / d;
        }
        Ok(x)
    }
}

/// One-shot least squares `min ‖A x − b‖₂` via Householder QR.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factor(a).solve_lstsq(b)
}

/// Least squares with nonnegativity clamping: solves the unconstrained
/// problem, then iteratively removes (zeroes and drops) negative
/// coefficients and re-solves on the remaining columns. A simple active-set
/// scheme that suffices for the 3-coefficient performance-model fit, where
/// machine-time coefficients must be ≥ 0.
pub fn lstsq_nonneg(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.cols();
    let mut active: Vec<usize> = (0..n).collect();
    loop {
        if active.is_empty() {
            return Ok(vec![0.0; n]);
        }
        let sub = {
            let mut s = Matrix::zeros(a.rows(), active.len());
            for i in 0..a.rows() {
                for (cj, &j) in active.iter().enumerate() {
                    s.set(i, cj, a.get(i, j));
                }
            }
            s
        };
        let x = lstsq(&sub, b)?;
        if let Some(worst) = x
            .iter()
            .enumerate()
            .filter(|(_, v)| **v < 0.0)
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
        {
            active.remove(worst);
            continue;
        }
        let mut full = vec![0.0; n];
        for (cj, &j) in active.iter().enumerate() {
            full[j] = x[cj];
        }
        return Ok(full);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::matmul;

    fn test_matrix(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |i, j| {
            (((i * 7 + j * 3 + 1) % 11) as f64 - 5.0) / 5.0 + if i == j { 2.0 } else { 0.0 }
        })
    }

    #[test]
    fn qr_reconstructs() {
        let a = test_matrix(8, 5);
        let f = Qr::factor(&a);
        let rec = matmul(&f.q(), &f.r());
        for i in 0..8 {
            for j in 0..5 {
                assert!((rec.get(i, j) - a.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn q_is_orthonormal() {
        let a = test_matrix(10, 4);
        let q = Qr::factor(&a).q();
        let qtq = matmul(&q.transpose(), &q);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((qtq.get(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lstsq_exact_system() {
        let a = test_matrix(6, 6);
        let x_true: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let mut b = vec![0.0; 6];
        for i in 0..6 {
            b[i] = (0..6).map(|j| a.get(i, j) * x_true[j]).sum();
        }
        let x = lstsq(&a, &b).unwrap();
        for i in 0..6 {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn lstsq_overdetermined_line_fit() {
        // Fit y = 2 + 3 t to noiseless data.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let b: Vec<f64> = ts.iter().map(|t| 2.0 + 3.0 * t).collect();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_residual_is_orthogonal() {
        let a = test_matrix(9, 3);
        let b: Vec<f64> = (0..9).map(|i| ((i * 5 + 2) % 7) as f64).collect();
        let x = lstsq(&a, &b).unwrap();
        // Residual r = b − Ax must satisfy Aᵀ r = 0.
        let mut r = b.clone();
        for i in 0..9 {
            let ax: f64 = (0..3).map(|j| a.get(i, j) * x[j]).sum();
            r[i] -= ax;
        }
        for j in 0..3 {
            let dot: f64 = (0..9).map(|i| a.get(i, j) * r[i]).sum();
            assert!(dot.abs() < 1e-10, "col {j} dot {dot}");
        }
    }

    #[test]
    fn rank_deficient_detected() {
        // Two identical columns.
        let a = Matrix::from_fn(5, 2, |i, _| i as f64 + 1.0);
        assert!(matches!(
            lstsq(&a, &[1.0, 2.0, 3.0, 4.0, 5.0]),
            Err(LaError::RankDeficient { .. })
        ));
    }

    #[test]
    fn nonneg_clamps_negative_coefficient() {
        // b strongly anti-correlated with column 1 → unconstrained fit gives
        // a negative coefficient which must be clamped to 0.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [3.0, 2.0, 1.0];
        let x = lstsq_nonneg(&a, &b).unwrap();
        assert!(x.iter().all(|&v| v >= 0.0));
        // Unconstrained solution is [4, −1]; clamped should keep col 0 only.
        assert!(x[1] == 0.0);
        assert!(x[0] > 0.0);
    }

    #[test]
    fn nonneg_keeps_positive_solution() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let b = [1.0, 2.0, 3.0];
        let x = lstsq_nonneg(&a, &b).unwrap();
        let u = lstsq(&a, &b).unwrap();
        assert!((x[0] - u[0]).abs() < 1e-12);
        assert!((x[1] - u[1]).abs() < 1e-12);
    }
}
