//! End-to-end observability suite: request-id correlation across the
//! wire, and windowed-vs-lifetime metrics behavior through a server
//! kill-restart.
//!
//! Both tests install the process-global tracer (the server records into
//! it), so they serialize on a local lock. The client side always records
//! into its own private tracer via `with_tracer`, exactly as a real
//! deployment would: two processes, two dumps, one shared request id
//! space.

use gptune::serve::{
    correlate, parse_jsonl, serve, BackoffPolicy, ChaosProxy, FaultSpec, ProblemSpec, ServeClient,
    ServeOptions, SessionOptions,
};
use gptune::space::{Param, Value};
use gptune::trace::{jsonl, Tracer, WindowSpec};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tmp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gptune_it_obs_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn spec(name: &str) -> ProblemSpec {
    ProblemSpec {
        name: name.into(),
        task_params: vec![Param::real("t", 0.0, 1.0)],
        tuning_params: vec![Param::real("x", 0.0, 1.0)],
        tasks: vec![vec![Value::Real(0.5)]],
        n_objectives: 1,
    }
}

fn config_at(i: usize) -> Vec<Value> {
    vec![Value::Real(((i * 37 + 11) % 101) as f64 / 101.0)]
}

/// A chaos-proxied workload's acknowledged calls all correlate to
/// server-side spans by request id — the acceptance gate for the wire
/// propagation: ≥95% of acked client rpcs must be found in the server
/// dump (here it is exactly 100%: the in-process ring drops nothing).
#[test]
fn chaos_run_correlates_acked_reports_to_server_spans() {
    let _guard = trace_lock();
    // Server side records into the process-global tracer.
    drop(gptune::trace::install(Tracer::ring(1 << 16)));
    let root = tmp_root("corr");
    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let proxy = ChaosProxy::launch(
        server.local_addr(),
        FaultSpec {
            seed: 0x0b5,
            // Resets must be rarer than a full WAL replay (open + up to
            // N journaled reports per reconnect), or the deterministic
            // per-connection schedule guarantees every replay dies
            // mid-flight and no reconnect can ever complete.
            reset_every: 41,
            duplicate_every: 5,
            delay_every: 3,
            delay_ms: 2,
            ..FaultSpec::default()
        },
    )
    .unwrap();

    // Client side records into its own tracer — a separate "process".
    let client_tracer = Tracer::ring(1 << 14);
    let mut client = ServeClient::connect(proxy.local_addr())
        .unwrap()
        .with_tracer(client_tracer.clone())
        .with_wal(root.join("client.wal"))
        .with_backoff(BackoffPolicy {
            // More patient than the serve_chaos workload: WAL replay
            // re-sends the whole journal on every reconnect, so each
            // proxy reset costs several frames of its own.
            max_retries: 40,
            base_ms: 2,
            cap_ms: 50,
            jitter_seed: 0x0b5,
        });
    client
        .open_session("obs", &spec("corr"), &SessionOptions::default())
        .unwrap();
    const N: usize = 18;
    for i in 0..N {
        if i % 3 == 0 {
            let _ = client.suggest(0);
        }
        client.report(0, &config_at(i), &[i as f64 * 0.1]).unwrap();
    }
    assert_eq!(client.history().unwrap().len(), N);
    proxy.shutdown();
    server.shutdown();

    // Two dumps — through the real JSONL encode/decode path, as
    // `trace_tool correlate` would consume them.
    let client_dump = jsonl::to_string(&client_tracer.drain());
    let server_dump = jsonl::to_string(&gptune::trace::global().drain());
    let report = correlate(
        &parse_jsonl(&client_dump).unwrap(),
        &parse_jsonl(&server_dump).unwrap(),
    );

    assert!(
        report.acked >= N,
        "expected at least {N} acked calls, saw {}",
        report.acked
    );
    assert!(
        report.link_rate() >= 0.95,
        "link rate {:.3} below the 95% acceptance bar ({} acked, {} linked)",
        report.link_rate(),
        report.acked,
        report.linked
    );
    // Every reported row was journaled under its request id before the
    // send, and the linked reports show real server-side session work.
    // WAL replay after a proxy reset re-sends reports under their
    // journaled ids, so rpc spans may repeat a rid — distinct ids must
    // count exactly the N logical reports.
    let reports: Vec<_> = report
        .requests
        .iter()
        .filter(|r| r.op == "report")
        .collect();
    let mut rids: Vec<&str> = reports.iter().map(|r| r.rid.as_str()).collect();
    rids.sort_unstable();
    rids.dedup();
    assert_eq!(rids.len(), N, "one request id per logical report");
    assert!(reports.iter().all(|r| r.wal_appended));
    assert!(reports.iter().filter(|r| r.acked).all(|r| r
        .server_spans
        .iter()
        .any(|s| s == "gptune.core.session.report")));
    let _ = std::fs::remove_dir_all(&root);
}

/// Kill-restart drill: the rolling windows forget a dead server's burst
/// within one horizon while the lifetime registry keeps the full story —
/// windowed p99/rates describe "now", lifetime histograms describe
/// "ever". (One global tracer spans both server incarnations here, just
/// like one scrape endpoint surviving a worker restart.)
#[test]
fn windowed_metrics_recover_after_kill_restart_while_lifetime_persists() {
    let _guard = trace_lock();
    let windows = WindowSpec {
        width: Duration::from_millis(250),
        count: 8,
    };
    drop(gptune::trace::install(Tracer::ring_with_windows(
        1 << 14,
        windows,
    )));

    let opts = || ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    };
    let server = serve("127.0.0.1:0", opts()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client
        .open_session("obs", &spec("drill"), &SessionOptions::default())
        .unwrap();
    const N: usize = 12;
    for i in 0..N {
        client.report(0, &config_at(i), &[i as f64 * 0.1]).unwrap();
    }
    // Mid-burst state: the report histogram is hot in both views.
    let snap = gptune::trace::global().metrics();
    let life_hot = snap
        .histogram("gptune.serve.latency_us.report")
        .expect("lifetime report histogram")
        .count;
    let win_hot = snap
        .windowed
        .histogram("gptune.serve.latency_us.report")
        .map_or(0, |h| h.count);
    assert_eq!(life_hot, N as u64);
    assert!(win_hot > 0, "burst must be visible in the rolling window");

    // Kill — not drain — then restart on a fresh port and go quiet for
    // longer than the window horizon.
    server.shutdown();
    let server = serve("127.0.0.1:0", opts()).unwrap();
    std::thread::sleep(windows.horizon() + Duration::from_millis(300));

    // Scrape the replacement over the wire, through the exposition text.
    let mut probe = ServeClient::connect(server.local_addr()).unwrap();
    let snap = probe.metrics().unwrap();
    let life_after = snap
        .histogram("gptune.serve.latency_us.report")
        .expect("lifetime histogram survives the restart")
        .count;
    let win_after = snap
        .windowed
        .histogram("gptune.serve.latency_us.report")
        .map_or(0, |h| h.count);
    assert_eq!(
        life_after, N as u64,
        "lifetime histograms must persist through the drill"
    );
    assert_eq!(
        win_after, 0,
        "the rolling window must have forgotten the pre-kill burst"
    );
    assert!(snap.windowed.horizon_ns > 0, "windows stay enabled");
    server.shutdown();
}
