//! OpenTuner-style ensemble tuner.
//!
//! OpenTuner (Ansel et al., cited in paper Sec. 5) "relies on
//! meta-heuristics to solve a multi-armed bandit problem … it allocates and
//! distributes the function evaluations over a collection of optimization
//! methods in multiple arms in order to adaptively select the best
//! performing method". This stand-in reproduces that architecture:
//!
//! * all techniques share one results database (the sample archive);
//! * an AUC bandit (sliding-window, recency-weighted) picks which
//!   technique proposes the next configuration;
//! * the technique's reward is whether its proposal improved the
//!   incumbent best.
//!
//! The technique set mirrors OpenTuner's default ensemble: uniform random,
//! greedy mutation, crossover, differential-evolution step, Nelder–Mead
//! reflection, and annealed jitter.

use crate::{random_valid, repair, Tuner, TunerRun};
use gptune_core::TuningProblem;
use gptune_opt::bandit::AucBandit;
use gptune_space::{Config, Space};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The model-free proposal techniques in the ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Technique {
    Random,
    MutateBest,
    Crossover,
    DifferentialStep,
    SimplexReflect,
    AnnealedJitter,
}

const TECHNIQUES: [Technique; 6] = [
    Technique::Random,
    Technique::MutateBest,
    Technique::Crossover,
    Technique::DifferentialStep,
    Technique::SimplexReflect,
    Technique::AnnealedJitter,
];

/// OpenTuner-style tuner: AUC bandit over a technique ensemble.
#[derive(Debug)]
pub struct OpenTunerLike {
    /// Bandit sliding-window length.
    pub window: usize,
    /// Bandit exploration constant.
    pub exploration: f64,
}

impl Default for OpenTunerLike {
    fn default() -> Self {
        // OpenTuner's AUCBanditMetaTechnique defaults.
        OpenTunerLike {
            window: 500,
            exploration: 0.05,
        }
    }
}

impl OpenTunerLike {
    fn propose(
        tech: Technique,
        space: &Space,
        samples: &[(Config, f64)],
        step: usize,
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let dim = space.dim();
        let norm = |c: &Config| space.normalize(c);
        // Sorted finite history, best first.
        let mut ranked: Vec<&(Config, f64)> =
            samples.iter().filter(|(_, y)| y.is_finite()).collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1));

        let uniform = |rng: &mut StdRng| (0..dim).map(|_| rng.gen::<f64>()).collect::<Vec<f64>>();
        if ranked.is_empty() {
            return uniform(rng);
        }

        match tech {
            Technique::Random => uniform(rng),
            Technique::MutateBest => {
                let base = norm(&ranked[0].0);
                base.iter()
                    .map(|v| (v + gauss(rng) * 0.08).clamp(0.0, 1.0))
                    .collect()
            }
            Technique::Crossover => {
                if ranked.len() < 2 {
                    return uniform(rng);
                }
                let k = ranked.len().min(5);
                let a = norm(&ranked[rng.gen_range(0..k)].0);
                let b = norm(&ranked[rng.gen_range(0..k)].0);
                a.iter()
                    .zip(&b)
                    .map(|(x, y)| {
                        let w: f64 = rng.gen();
                        (w * x + (1.0 - w) * y).clamp(0.0, 1.0)
                    })
                    .collect()
            }
            Technique::DifferentialStep => {
                if ranked.len() < 3 {
                    return uniform(rng);
                }
                let best = norm(&ranked[0].0);
                let a = norm(&ranked[rng.gen_range(0..ranked.len())].0);
                let b = norm(&ranked[rng.gen_range(0..ranked.len())].0);
                best.iter()
                    .zip(a.iter().zip(&b))
                    .map(|(x, (u, v))| (x + 0.7 * (u - v)).clamp(0.0, 1.0))
                    .collect()
            }
            Technique::SimplexReflect => {
                if ranked.len() < dim + 1 {
                    return uniform(rng);
                }
                // Reflect the worst of the top (dim+1) through the centroid
                // of the others.
                let simplex: Vec<Vec<f64>> =
                    ranked.iter().take(dim + 1).map(|(c, _)| norm(c)).collect();
                let worst = simplex.last().unwrap();
                let mut centroid = vec![0.0; dim];
                for p in &simplex[..dim] {
                    for d in 0..dim {
                        centroid[d] += p[d] / dim as f64;
                    }
                }
                centroid
                    .iter()
                    .zip(worst)
                    .map(|(c, w)| (c + (c - w)).clamp(0.0, 1.0))
                    .collect()
            }
            Technique::AnnealedJitter => {
                // Jitter a random good point with a temperature that decays
                // over the budget.
                let temp = 0.3 * (1.0 - step as f64 / budget.max(1) as f64) + 0.02;
                let k = ranked.len().min(3);
                let base = norm(&ranked[rng.gen_range(0..k)].0);
                base.iter()
                    .map(|v| (v + gauss(rng) * temp).clamp(0.0, 1.0))
                    .collect()
            }
        }
    }
}

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl Tuner for OpenTunerLike {
    fn name(&self) -> &str {
        "opentuner"
    }

    fn tune_task(
        &self,
        problem: &TuningProblem,
        task_idx: usize,
        budget: usize,
        seed: u64,
    ) -> TunerRun {
        assert!(budget > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let space = &problem.tuning_space;
        let mut bandit = AucBandit::new(TECHNIQUES.len(), self.window, self.exploration);
        let mut samples: Vec<(Config, f64)> = Vec::with_capacity(budget);
        let mut best = f64::INFINITY;

        // One seed sample so every technique has something to work with.
        if let Some(c) = random_valid(space, &mut rng, 500) {
            let y = problem.evaluate(task_idx, &c, seed)[0];
            if y.is_finite() {
                best = y;
            }
            samples.push((c, y));
        }

        while samples.len() < budget {
            let arm = bandit.select();
            let u = Self::propose(
                TECHNIQUES[arm],
                space,
                &samples,
                samples.len(),
                budget,
                &mut rng,
            );
            let cfg = repair(space, &u, &samples, &mut rng);
            let y =
                problem.evaluate(task_idx, &cfg, seed.wrapping_add(samples.len() as u64 * 13))[0];
            let improved = y < best;
            if improved {
                best = y;
            }
            bandit.reward(arm, improved);
            samples.push((cfg, y));
        }
        TunerRun::from_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_space::{Param, Space, Value};

    fn problem() -> TuningProblem {
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder()
            .param(Param::real("x", 0.0, 1.0))
            .param(Param::real("y", 0.0, 1.0))
            .build();
        TuningProblem::new("ot", ts, ps, vec![vec![Value::Real(0.0)]], |_, x, _| {
            vec![(x[0].as_real() - 0.3).powi(2) + (x[1].as_real() - 0.7).powi(2) + 0.1]
        })
    }

    #[test]
    fn converges_on_smooth_problem() {
        let run = OpenTunerLike::default().tune_task(&problem(), 0, 60, 3);
        assert_eq!(run.samples.len(), 60);
        assert!(run.best_value < 0.12, "best {}", run.best_value);
    }

    #[test]
    fn beats_pure_random_on_average() {
        let p = problem();
        let mut ot_total = 0.0;
        let mut rnd_total = 0.0;
        for s in 0..5 {
            ot_total += OpenTunerLike::default().tune_task(&p, 0, 40, s).best_value;
            rnd_total += crate::RandomTuner.tune_task(&p, 0, 40, s).best_value;
        }
        assert!(
            ot_total <= rnd_total * 1.05,
            "opentuner {ot_total} vs random {rnd_total}"
        );
    }

    #[test]
    fn constraint_respected() {
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder()
            .param(Param::int("a", 0, 20))
            .param(Param::int("b", 0, 20))
            .constraint("a<=b", |c| c[0].as_int() <= c[1].as_int())
            .build();
        let p = TuningProblem::new("c", ts, ps, vec![vec![Value::Real(0.0)]], |_, x, _| {
            vec![(x[1].as_int() - x[0].as_int()) as f64 + 1.0]
        });
        let run = OpenTunerLike::default().tune_task(&p, 0, 30, 1);
        for (c, _) in &run.samples {
            assert!(c[0].as_int() <= c[1].as_int());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        let a = OpenTunerLike::default().tune_task(&p, 0, 20, 9);
        let b = OpenTunerLike::default().tune_task(&p, 0, 20, 9);
        assert_eq!(a.best_value, b.best_value);
    }
}
