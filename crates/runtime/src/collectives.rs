//! Collective operations over a [`WorkerGroup`](crate::WorkerGroup).
//!
//! GPTune's master/worker processes communicate through MPI
//! inter-communicators (paper Sec. 4.1, Fig. 1): the master scatters task
//! parameters and sample batches to workers and gathers/reduces their
//! results. These helpers provide the same collective vocabulary on top of
//! the thread-based worker group, so tuner code reads like its MPI
//! counterpart.

use crate::executor::WorkerGroup;
use std::sync::Arc;

/// Broadcast: every worker slot (`0..parts`) receives a clone of `value`
/// and maps it through `f`; results return in slot order. The analogue of
/// `MPI_Bcast` followed by independent local work.
pub fn broadcast_map<T, R, F>(group: &WorkerGroup, value: T, parts: usize, f: F) -> Vec<R>
where
    T: Clone + Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    let value = Arc::new(value);
    let items: Vec<(usize, Arc<T>)> = (0..parts).map(|i| (i, Arc::clone(&value))).collect();
    let f = Arc::new(f);
    group.map(items, move |(rank, v)| f(rank, &v))
}

/// Scatter + gather: distributes `chunks` to the workers, applies `f` to
/// each, and gathers the transformed chunks in order — `MPI_Scatter` /
/// `MPI_Gather`.
pub fn scatter_gather<T, R, F>(group: &WorkerGroup, chunks: Vec<T>, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    group.map(chunks, f)
}

/// Reduce: applies `f` to every item in parallel, then folds the partial
/// results on the master with `combine` — `MPI_Reduce` to rank 0.
///
/// `combine` must be associative for the result to be well-defined
/// independent of chunking (it is applied left-to-right in item order, so
/// commutativity is not required).
pub fn map_reduce<T, R, F, C>(group: &WorkerGroup, items: Vec<T>, f: F, combine: C) -> Option<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
    C: Fn(R, R) -> R,
{
    let partials = group.map(items, f);
    partials.into_iter().reduce(combine)
}

/// All-reduce flavour: like [`map_reduce`], but clones the combined result
/// back out for every "rank" — `MPI_Allreduce`.
pub fn map_allreduce<T, R, F, C>(group: &WorkerGroup, items: Vec<T>, f: F, combine: C) -> Vec<R>
where
    T: Send + 'static,
    R: Clone + Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
    C: Fn(R, R) -> R,
{
    let n = items.len();
    match map_reduce(group, items, f, combine) {
        Some(r) => vec![r; n],
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_reaches_every_rank() {
        let g = WorkerGroup::spawn(3);
        let out = broadcast_map(&g, 21u64, 5, |rank, v| rank as u64 * 100 + v);
        assert_eq!(out, vec![21, 121, 221, 321, 421]);
        g.shutdown();
    }

    #[test]
    fn scatter_gather_order() {
        let g = WorkerGroup::spawn(4);
        let out = scatter_gather(&g, vec!["a", "bb", "ccc"], |s| s.len());
        assert_eq!(out, vec![1, 2, 3]);
        g.shutdown();
    }

    #[test]
    fn reduce_sums() {
        let g = WorkerGroup::spawn(4);
        let sum = map_reduce(&g, (1..=100).collect(), |x: i64| x * x, |a, b| a + b);
        assert_eq!(sum, Some((1..=100).map(|x: i64| x * x).sum()));
        g.shutdown();
    }

    #[test]
    fn reduce_respects_order_for_nonassociative_check() {
        // combine is applied in item order, so string concatenation (which
        // is associative but not commutative) must come out in order.
        let g = WorkerGroup::spawn(2);
        let joined = map_reduce(
            &g,
            vec![1, 2, 3, 4],
            |x: i32| x.to_string(),
            |a, b| format!("{a}{b}"),
        );
        assert_eq!(joined.as_deref(), Some("1234"));
        g.shutdown();
    }

    #[test]
    fn reduce_empty_is_none() {
        let g = WorkerGroup::spawn(2);
        let r = map_reduce(&g, Vec::<i32>::new(), |x| x, |a, b| a + b);
        assert_eq!(r, None);
        g.shutdown();
    }

    #[test]
    fn allreduce_replicates_result() {
        let g = WorkerGroup::spawn(3);
        let out = map_allreduce(&g, vec![1, 2, 3], |x: i32| x, |a, b| a.max(b));
        assert_eq!(out, vec![3, 3, 3]);
        assert!(map_allreduce(&g, Vec::<i32>::new(), |x| x, |a, b| a + b).is_empty());
        g.shutdown();
    }
}
