//! Limited-memory BFGS with strong-Wolfe line search.
//!
//! This is the optimizer of GPTune's modeling phase (paper Sec. 3.1): the
//! LCM hyperparameters are found by minimizing the negative log-likelihood,
//! restarted from several random initial guesses. The implementation is the
//! standard two-loop recursion of Liu & Nocedal with a bracketing/zoom line
//! search enforcing the strong Wolfe conditions.

/// Configuration for [`minimize`].
#[derive(Debug, Clone)]
pub struct LbfgsOptions {
    /// History size `m` (number of correction pairs).
    pub memory: usize,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Convergence tolerance on `‖g‖∞ / max(1, ‖x‖∞)`.
    pub grad_tol: f64,
    /// Convergence tolerance on relative objective decrease.
    pub f_tol: f64,
    /// Sufficient-decrease (Armijo) constant `c₁`.
    pub c1: f64,
    /// Curvature constant `c₂`.
    pub c2: f64,
    /// Maximum line-search function evaluations per iteration.
    pub max_ls: usize,
}

impl Default for LbfgsOptions {
    fn default() -> Self {
        LbfgsOptions {
            memory: 10,
            max_iters: 200,
            grad_tol: 1e-6,
            f_tol: 1e-10,
            c1: 1e-4,
            c2: 0.9,
            max_ls: 25,
        }
    }
}

/// Why the optimizer stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LbfgsStatus {
    /// Gradient norm below tolerance.
    GradConverged,
    /// Relative objective decrease below tolerance.
    FConverged,
    /// Iteration budget exhausted.
    MaxIters,
    /// Line search failed to find an acceptable step (often a sign that the
    /// objective is returning non-finite values).
    LineSearchFailed,
}

/// Result of an L-BFGS run.
#[derive(Debug, Clone)]
pub struct LbfgsResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Objective at the final iterate.
    pub value: f64,
    /// Gradient at the final iterate.
    pub grad: Vec<f64>,
    /// Iterations performed.
    pub iters: usize,
    /// Objective/gradient evaluations performed.
    pub evals: usize,
    /// Termination reason.
    pub status: LbfgsStatus,
}

/// Minimizes `f` starting from `x0`.
///
/// The objective closure fills `grad` and returns the value; it is expected
/// to be deterministic. Non-finite values at the starting point yield an
/// immediate `LineSearchFailed` result.
pub fn minimize<F>(mut f: F, x0: &[f64], opts: &LbfgsOptions) -> LbfgsResult
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut g = vec![0.0; n];
    let mut fx = f(&x, &mut g);
    let mut evals = 1;

    if !fx.is_finite() || g.iter().any(|v| !v.is_finite()) {
        return LbfgsResult {
            x,
            value: fx,
            grad: g,
            iters: 0,
            evals,
            status: LbfgsStatus::LineSearchFailed,
        };
    }

    let m = opts.memory.max(1);
    let mut s_hist: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut y_hist: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rho_hist: Vec<f64> = Vec::with_capacity(m);

    let mut status = LbfgsStatus::MaxIters;
    let mut iter = 0;
    while iter < opts.max_iters {
        // Convergence on gradient.
        let xmax = x.iter().fold(1.0_f64, |a, v| a.max(v.abs()));
        let gmax = g.iter().fold(0.0_f64, |a, v| a.max(v.abs()));
        if gmax / xmax <= opts.grad_tol {
            status = LbfgsStatus::GradConverged;
            break;
        }

        // Two-loop recursion: d = −H g.
        let mut q = g.clone();
        let k = s_hist.len();
        let mut alpha = vec![0.0; k];
        for i in (0..k).rev() {
            alpha[i] = rho_hist[i] * dot(&s_hist[i], &q);
            for (qj, yj) in q.iter_mut().zip(&y_hist[i]) {
                *qj -= alpha[i] * yj;
            }
        }
        // Initial Hessian scaling γ = sᵀy / yᵀy.
        if k > 0 {
            let sy = dot(&s_hist[k - 1], &y_hist[k - 1]);
            let yy = dot(&y_hist[k - 1], &y_hist[k - 1]);
            if yy > 0.0 {
                let gamma = sy / yy;
                for qj in q.iter_mut() {
                    *qj *= gamma;
                }
            }
        }
        for i in 0..k {
            let beta = rho_hist[i] * dot(&y_hist[i], &q);
            for (qj, sj) in q.iter_mut().zip(&s_hist[i]) {
                *qj += (alpha[i] - beta) * sj;
            }
        }
        let mut d: Vec<f64> = q.iter().map(|v| -v).collect();

        // Ensure descent; fall back to steepest descent otherwise.
        let mut dg = dot(&d, &g);
        if !(dg < 0.0) {
            d = g.iter().map(|v| -v).collect();
            dg = dot(&d, &g);
            s_hist.clear();
            y_hist.clear();
            rho_hist.clear();
            if !(dg < 0.0) {
                status = LbfgsStatus::GradConverged;
                break;
            }
        }

        // Strong-Wolfe line search.
        let t0 = if s_hist.is_empty() {
            (1.0 / g.iter().map(|v| v.abs()).fold(0.0, f64::max)).min(1.0)
        } else {
            1.0
        };
        match wolfe_search(&mut f, &x, fx, &g, &d, dg, t0, opts, &mut evals) {
            Some((t, fx_new, x_new, g_new)) => {
                let _ = t;
                // Update history.
                let s: Vec<f64> = x_new.iter().zip(&x).map(|(a, b)| a - b).collect();
                let yv: Vec<f64> = g_new.iter().zip(&g).map(|(a, b)| a - b).collect();
                let sy = dot(&s, &yv);
                if sy > 1e-12 * nrm2(&s) * nrm2(&yv) {
                    if s_hist.len() == m {
                        s_hist.remove(0);
                        y_hist.remove(0);
                        rho_hist.remove(0);
                    }
                    rho_hist.push(1.0 / sy);
                    s_hist.push(s);
                    y_hist.push(yv);
                }
                let rel_dec = (fx - fx_new).abs() / fx.abs().max(1.0);
                x = x_new;
                g = g_new;
                let f_converged = rel_dec <= opts.f_tol;
                fx = fx_new;
                iter += 1;
                if f_converged {
                    status = LbfgsStatus::FConverged;
                    break;
                }
            }
            None => {
                status = LbfgsStatus::LineSearchFailed;
                break;
            }
        }
    }

    LbfgsResult {
        x,
        value: fx,
        grad: g,
        iters: iter,
        evals,
        status,
    }
}

/// Bracketing/zoom strong-Wolfe line search (Nocedal & Wright Alg. 3.5/3.6).
/// Returns `(t, f(x+td), x+td, g(x+td))` or `None` on failure.
#[allow(clippy::too_many_arguments)]
fn wolfe_search<F>(
    f: &mut F,
    x: &[f64],
    f0: f64,
    _g0: &[f64],
    d: &[f64],
    dg0: f64,
    t0: f64,
    opts: &LbfgsOptions,
    evals: &mut usize,
) -> Option<(f64, f64, Vec<f64>, Vec<f64>)>
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    let n = x.len();
    let probe = |f: &mut F, t: f64, evals: &mut usize| -> (f64, Vec<f64>, Vec<f64>) {
        let xt: Vec<f64> = x.iter().zip(d).map(|(xi, di)| xi + t * di).collect();
        let mut gt = vec![0.0; n];
        let ft = f(&xt, &mut gt);
        *evals += 1;
        (ft, xt, gt)
    };

    let mut t_prev = 0.0;
    let mut f_prev = f0;
    let mut t = t0.max(1e-16);
    let t_max = 1e10;
    let mut lo: Option<(f64, f64)> = None; // (t, f)
    let mut hi: Option<(f64, f64)> = None;

    // Bracketing phase.
    for i in 0..opts.max_ls {
        let (ft, xt, gt) = probe(f, t, evals);
        if !ft.is_finite() {
            // Step into a bad region; shrink.
            hi = Some((t, f64::INFINITY));
            lo = Some((t_prev, f_prev));
            break;
        }
        let dgt = dot(&gt, d);
        if ft > f0 + opts.c1 * t * dg0 || (i > 0 && ft >= f_prev) {
            lo = Some((t_prev, f_prev));
            hi = Some((t, ft));
            break;
        }
        if dgt.abs() <= -opts.c2 * dg0 {
            return Some((t, ft, xt, gt));
        }
        if dgt >= 0.0 {
            lo = Some((t, ft));
            hi = Some((t_prev, f_prev));
            break;
        }
        t_prev = t;
        f_prev = ft;
        t = (2.0 * t).min(t_max);
    }

    let (mut t_lo, mut f_lo) = lo?;
    let (mut t_hi, mut _f_hi) = hi?;

    // Zoom phase.
    for _ in 0..opts.max_ls {
        let t_mid = 0.5 * (t_lo + t_hi);
        if (t_hi - t_lo).abs() < 1e-16 * t_lo.abs().max(1.0) {
            break;
        }
        let (ft, xt, gt) = probe(f, t_mid, evals);
        if !ft.is_finite() || ft > f0 + opts.c1 * t_mid * dg0 || ft >= f_lo {
            t_hi = t_mid;
            _f_hi = ft;
        } else {
            let dgt = dot(&gt, d);
            if dgt.abs() <= -opts.c2 * dg0 {
                return Some((t_mid, ft, xt, gt));
            }
            if dgt * (t_hi - t_lo) >= 0.0 {
                t_hi = t_lo;
            }
            t_lo = t_mid;
            f_lo = ft;
        }
    }

    // Accept the best sufficient-decrease point found, if any.
    if f_lo < f0 && t_lo > 0.0 {
        let (ft, xt, gt) = {
            let xt: Vec<f64> = x.iter().zip(d).map(|(xi, di)| xi + t_lo * di).collect();
            let mut gt = vec![0.0; n];
            let ft = f(&xt, &mut gt);
            *evals += 1;
            (ft, xt, gt)
        };
        if ft.is_finite() && ft < f0 {
            return Some((t_lo, ft, xt, gt));
        }
    }
    None
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn nrm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(x: &[f64], g: &mut [f64]) -> f64 {
        // f = Σ i (x_i − i)², minimum at x_i = i.
        let mut f = 0.0;
        for (i, (xi, gi)) in x.iter().zip(g.iter_mut()).enumerate() {
            let c = (i + 1) as f64;
            let d = xi - i as f64;
            f += c * d * d;
            *gi = 2.0 * c * d;
        }
        f
    }

    #[test]
    fn quadratic_converges_to_exact_minimum() {
        let r = minimize(quadratic, &[5.0; 6], &LbfgsOptions::default());
        assert!(matches!(
            r.status,
            LbfgsStatus::GradConverged | LbfgsStatus::FConverged
        ));
        for (i, xi) in r.x.iter().enumerate() {
            assert!((xi - i as f64).abs() < 1e-5, "x[{i}]={xi}");
        }
        assert!(r.value < 1e-9);
    }

    #[test]
    fn rosenbrock_2d() {
        let rosen = |x: &[f64], g: &mut [f64]| {
            let (a, b) = (x[0], x[1]);
            g[0] = -400.0 * a * (b - a * a) - 2.0 * (1.0 - a);
            g[1] = 200.0 * (b - a * a);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let r = minimize(
            rosen,
            &[-1.2, 1.0],
            &LbfgsOptions {
                max_iters: 500,
                ..Default::default()
            },
        );
        assert!(r.value < 1e-8, "value {}", r.value);
        assert!((r.x[0] - 1.0).abs() < 1e-3);
        assert!((r.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn already_at_minimum_stops_immediately() {
        let r = minimize(quadratic, &[0.0, 1.0, 2.0], &LbfgsOptions::default());
        assert_eq!(r.status, LbfgsStatus::GradConverged);
        assert_eq!(r.iters, 0);
    }

    #[test]
    fn nan_objective_reports_failure() {
        let bad = |_x: &[f64], g: &mut [f64]| {
            g[0] = f64::NAN;
            f64::NAN
        };
        let r = minimize(bad, &[1.0], &LbfgsOptions::default());
        assert_eq!(r.status, LbfgsStatus::LineSearchFailed);
    }

    #[test]
    fn objective_with_barrier_region() {
        // f = −log(x) + x: minimum at x = 1; NaN for x ≤ 0 exercises the
        // shrinking bracket.
        let barrier = |x: &[f64], g: &mut [f64]| {
            if x[0] <= 0.0 {
                g[0] = f64::NAN;
                return f64::NAN;
            }
            g[0] = -1.0 / x[0] + 1.0;
            -x[0].ln() + x[0]
        };
        let r = minimize(barrier, &[3.0], &LbfgsOptions::default());
        assert!((r.x[0] - 1.0).abs() < 1e-5, "x={}", r.x[0]);
    }

    #[test]
    fn high_dimensional_ill_conditioned() {
        // f = Σ κ_i x_i² with condition number 1e4.
        let f = |x: &[f64], g: &mut [f64]| {
            let n = x.len();
            let mut fx = 0.0;
            for i in 0..n {
                let k = 10f64.powf(4.0 * i as f64 / (n - 1) as f64);
                fx += k * x[i] * x[i];
                g[i] = 2.0 * k * x[i];
            }
            fx
        };
        let r = minimize(
            f,
            &[1.0; 20],
            &LbfgsOptions {
                max_iters: 2000,
                grad_tol: 1e-8,
                f_tol: 0.0,
                ..Default::default()
            },
        );
        assert!(r.value < 1e-10, "value {}", r.value);
    }
}
