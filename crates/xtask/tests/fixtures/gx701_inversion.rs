// GX701 triggering fixture: a seeded A→B / B→A lock-order inversion on
// two registry locks, with each second acquisition buried in a helper so
// only the interprocedural summaries can see it.

fn session_then_inflight(s: &ServerState) {
    let table = s.sessions.lock().unwrap();
    bump_inflight(s);
    drop(table);
}

fn bump_inflight(s: &ServerState) {
    let mut counts = s.inflight.lock().unwrap();
    counts.bump();
}

fn inflight_then_session(s: &ServerState) {
    let counts = s.inflight.lock().unwrap();
    touch_sessions(s);
    drop(counts);
}

fn touch_sessions(s: &ServerState) {
    let table = s.sessions.lock().unwrap();
    table.touch();
}
