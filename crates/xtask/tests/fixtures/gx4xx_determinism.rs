//! Fixture: the GX4xx determinism tier — ambient RNGs, time-derived
//! seeds, and hash-ordered iteration feeding recorded output.

use std::collections::HashMap;

pub fn gx401() -> f64 {
    let mut rng = rand::thread_rng(); // GX401
    rng.gen_range(0.0..1.0)
}

pub fn gx402() -> u64 {
    let seed = std::time::SystemTime::now() // GX402
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or_default();
    seed
}

pub fn gx403(pairs: &[(String, f64)]) -> Vec<String> {
    let m: HashMap<String, f64> = pairs.iter().cloned().collect();
    let mut out = Vec::new();
    for k in m.keys() {
        // GX403
        out.push(k.clone());
    }
    out
}

pub fn clean(pairs: &[(String, f64)], seed: u64) -> u64 {
    let sorted: std::collections::BTreeMap<_, _> = pairs.iter().cloned().collect();
    seed.wrapping_add(sorted.len() as u64)
}
