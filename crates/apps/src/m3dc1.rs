//! M3D_C1 (fusion-plasma MHD) simulator.
//!
//! Task `t = [steps]`: the number of time steps (paper Sec. 6.5 — "using
//! MLA one can run applications with both small and large number of steps
//! to reduce the tuning time"). Tuning
//! `x = [ROWPERM, COLPERM, p_r, NSUP, NREL]` — the SuperLU_DIST options of
//! the block-Jacobi preconditioner inside the implicit time integrator
//! (Sec. 6.2). MPI count `p` is fixed by the allocation (1 Cori node).
//!
//! Per step the code assembles and factorizes poloidal-plane systems with
//! SuperLU_DIST and runs preconditioned GMRES; total cost is essentially
//! linear in the step count with a step-independent optimum — exactly the
//! structure that lets multitask learning transfer from cheap 1-step tasks
//! to the expensive production setting.

use crate::{noise, HpcApp, MachineModel};
use gptune_space::{Config, Param, Space, Value};

/// Row-permutation choices (SuperLU_DIST `RowPerm_t`).
pub const ROWPERM_CHOICES: [&str; 2] = ["NOROWPERM", "LargeDiag_MC64"];
/// Column-permutation choices (shared with the SuperLU app).
pub use crate::superlu::COLPERM_CHOICES;

/// M3D_C1 simulator bound to a machine (paper: 1 Cori node per simulation).
pub struct M3dc1App {
    machine: MachineModel,
    task_space: Space,
    tuning_space: Space,
    /// Poloidal-plane system dimension (fixed geometry/discretization).
    n_plane: f64,
    /// Nonzeros of the plane system.
    nnz_plane: f64,
}

impl M3dc1App {
    /// Creates the app with the paper's fixed geometry discretization.
    pub fn new(machine: MachineModel) -> M3dc1App {
        let p_max = machine.total_cores() as i64;
        let task_space = Space::builder().param(Param::int("steps", 1, 200)).build();
        let tuning_space = Space::builder()
            .param(Param::categorical("ROWPERM", &ROWPERM_CHOICES)) // 0
            .param(Param::categorical("COLPERM", &COLPERM_CHOICES)) // 1
            .param(Param::int_log("p_r", 1, p_max)) // 2
            .param(Param::int_log("NSUP", 16, 512)) // 3
            .param(Param::int("NREL", 4, 64)) // 4
            .constraint("NREL<=NSUP", |c| c[4].as_int() <= c[3].as_int())
            .build();
        M3dc1App {
            machine,
            task_space,
            tuning_space,
            n_plane: 600_000.0,
            nnz_plane: 24_000_000.0,
        }
    }

    /// Noise-free cost of one run with the given step count.
    pub fn runtime_model(
        &self,
        steps: f64,
        rowperm: usize,
        colperm: usize,
        p_r: f64,
        nsup: f64,
        nrel: f64,
    ) -> f64 {
        let p = self.machine.total_cores() as f64;
        let p_c = (p / p_r).floor().max(1.0);
        let p_used = p_r * p_c;

        // Fill from the column ordering (same qualitative shape as SuperLU).
        let fill = match colperm {
            0 => 9.0,
            1 => 2.0,
            2 => 1.5,
            3 => 1.8,
            _ => 1.3,
        };
        let pad = 1.0 + 0.0022 * nsup + 0.004 * nrel;
        let nnz_lu = self.nnz_plane * fill * pad;

        // Numerical stability: the MC64 row permutation is a serial
        // per-factorization cost, but it keeps GMRES iteration counts low;
        // skipping it makes the block-Jacobi preconditioner weaker. Both
        // effects are per-step, so total cost stays linear in the step
        // count and the optimum is step-independent — the structure MLA
        // exploits in Sec. 6.5.
        let (rowperm_step, gmres_iters) = match rowperm {
            0 => (0.0, 34.0),
            _ => (2.0e-8 * self.nnz_plane, 22.0),
        };

        // Factorization (once per step: the Jacobian changes each step).
        let flops_fact = 2.0 * nnz_lu * (nnz_lu / self.n_plane) * 0.35;
        let eff = self.machine.block_efficiency(nsup) * 0.55;
        let p_eff = p_used.powf(0.70);
        let ideal_pr = (p_used.sqrt() * 0.8).max(1.0);
        let aspect = 1.0 + 0.07 * ((p_r / ideal_pr).ln()).powi(2);
        let t_fact = flops_fact / (self.machine.flop_rate * eff * p_eff) * aspect;

        // GMRES: triangular solves + SpMV per iteration (latency-bound).
        let t_iter = (4.0 * nnz_lu / (self.machine.flop_rate * 0.03 * p_used.powf(0.5)))
            + 60.0 * self.machine.latency * (p_used.max(2.0)).log2();
        let t_gmres = gmres_iters * t_iter;

        // Assembly (finite-element residual/Jacobian) per step.
        let t_assembly = 18.0 * self.nnz_plane / (self.machine.flop_rate * 0.05 * p_used.powf(0.9));

        steps * (rowperm_step + t_fact + t_gmres + t_assembly)
    }
}

impl HpcApp for M3dc1App {
    fn name(&self) -> &str {
        "m3d_c1"
    }

    fn task_space(&self) -> &Space {
        &self.task_space
    }

    fn tuning_space(&self) -> &Space {
        &self.tuning_space
    }

    fn evaluate(&self, task: &[Value], config: &[Value], seed: u64) -> Vec<f64> {
        if !self.tuning_space.is_valid(config) {
            return vec![f64::INFINITY];
        }
        let steps = task[0].as_int() as f64;
        let y = self.runtime_model(
            steps,
            config[0].as_cat(),
            config[1].as_cat(),
            config[2].as_int() as f64,
            config[3].as_int() as f64,
            config[4].as_int() as f64,
        );
        let f = noise::lognormal_factor(
            noise::hash_point(task, config, seed),
            self.machine.noise_sigma,
        );
        vec![y * f]
    }

    fn default_config(&self) -> Option<Config> {
        let p = self.machine.total_cores() as i64;
        Some(vec![
            Value::Cat(1),
            Value::Cat(4),
            Value::Int(((p as f64).sqrt() as i64).max(1)),
            Value::Int(128),
            Value::Int(20),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> M3dc1App {
        M3dc1App::new(MachineModel::cori_noiseless(1))
    }

    fn cfg(rp: usize, cp: usize, p_r: i64, nsup: i64, nrel: i64) -> Vec<Value> {
        vec![
            Value::Cat(rp),
            Value::Cat(cp),
            Value::Int(p_r),
            Value::Int(nsup),
            Value::Int(nrel),
        ]
    }

    #[test]
    fn cost_linear_in_steps() {
        let a = app();
        let c = cfg(1, 4, 4, 128, 20);
        let t1 = a.evaluate(&[Value::Int(1)], &c, 0)[0];
        let t10 = a.evaluate(&[Value::Int(10)], &c, 0)[0];
        let ratio = t10 / t1;
        assert!(ratio > 8.0 && ratio < 10.5, "ratio {ratio}");
    }

    #[test]
    fn optimum_is_step_independent() {
        // The best configuration among a probe set must be the same for
        // 1 step and for 50 steps — the property MLA exploits.
        let a = app();
        let probes = [
            cfg(0, 0, 1, 16, 4),
            cfg(1, 4, 4, 128, 20),
            cfg(1, 2, 8, 256, 32),
            cfg(0, 4, 32, 64, 8),
            cfg(1, 1, 2, 512, 64),
        ];
        let best_at = |steps: i64| {
            probes
                .iter()
                .enumerate()
                .min_by(|(_, x), (_, y)| {
                    let tx = a.evaluate(&[Value::Int(steps)], x, 0)[0];
                    let ty = a.evaluate(&[Value::Int(steps)], y, 0)[0];
                    tx.partial_cmp(&ty).unwrap()
                })
                .unwrap()
                .0
        };
        assert_eq!(best_at(1), best_at(50));
    }

    #[test]
    fn mc64_tradeoff() {
        // MC64 pays a serial per-factorization cost but wins through fewer
        // GMRES iterations.
        let a = app();
        let long = [Value::Int(50)];
        let no_mc64 = a.evaluate(&long, &cfg(0, 4, 4, 128, 20), 0)[0];
        let mc64 = a.evaluate(&long, &cfg(1, 4, 4, 128, 20), 0)[0];
        assert!(mc64 < no_mc64, "{mc64} vs {no_mc64}");
    }

    #[test]
    fn default_valid() {
        let a = app();
        let d = a.default_config().unwrap();
        assert!(a.tuning_space().is_valid(&d));
        assert!(a.evaluate(&[Value::Int(3)], &d, 0)[0].is_finite());
    }
}
