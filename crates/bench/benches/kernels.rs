//! Criterion microbenchmarks for the computational substrates: blocked
//! GEMM, sequential vs parallel Cholesky (the modeling-phase bottleneck),
//! LCM likelihood+gradient evaluation, LCM fitting, and the EI/PSO search.
//!
//! These quantify the building blocks behind Fig. 3's phase times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gptune::gp::gp::expected_improvement;
use gptune::gp::{LcmFitOptions, LcmModel, Prediction};
use gptune::la::{blas, Cholesky, CholeskyOptions, Matrix};
use gptune::opt::pso::{self, PsoOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn spd(n: usize) -> Matrix {
    let b = Matrix::from_fn(n, n, |i, j| {
        (((i * 31 + j * 17 + 7) % 23) as f64 - 11.0) / 11.0
    });
    let mut a = blas::matmul(&b, &b.transpose());
    a.add_diagonal(n as f64);
    a
}

fn lcm_data(n_per_task: usize, tasks: usize) -> (Vec<Vec<f64>>, Vec<usize>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut xs = Vec::new();
    let mut task_of = Vec::new();
    let mut y = Vec::new();
    for t in 0..tasks {
        for _ in 0..n_per_task {
            let x: f64 = rng.gen();
            xs.push(vec![x]);
            task_of.push(t);
            y.push((6.0 * x).sin() + 0.3 * t as f64 + 0.01 * rng.gen::<f64>());
        }
    }
    (xs, task_of, y)
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[64usize, 128, 256] {
        let a = Matrix::from_fn(n, n, |i, j| ((i + j) % 7) as f64);
        let b = Matrix::from_fn(n, n, |i, j| ((i * j) % 5) as f64);
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |bench, _| {
            bench.iter(|| black_box(blas::matmul(&a, &b)))
        });
        g.bench_with_input(BenchmarkId::new("parallel", n), &n, |bench, _| {
            bench.iter(|| black_box(blas::par_matmul(&a, &b)))
        });
    }
    g.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut g = c.benchmark_group("cholesky");
    g.sample_size(20);
    for &n in &[128usize, 256, 512] {
        let a = spd(n);
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |bench, _| {
            bench.iter(|| black_box(Cholesky::factor(&a).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("parallel", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(Cholesky::factor_parallel(&a, &CholeskyOptions::default()).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_lcm(c: &mut Criterion) {
    let mut g = c.benchmark_group("lcm");
    g.sample_size(10);
    for &n_per in &[20usize, 40] {
        let (xs, task_of, y) = lcm_data(n_per, 5);
        // One likelihood+gradient evaluation at fixed hyperparameters.
        let hp = gptune::gp::LcmHyperparams {
            q: 2,
            n_tasks: 5,
            dim: 1,
            lengthscales: vec![vec![0.3], vec![0.6]],
            a: vec![vec![0.5; 5], vec![0.2; 5]],
            b: vec![vec![0.01; 5]; 2],
            d: vec![0.01; 5],
        };
        let theta = hp.pack();
        g.bench_with_input(
            BenchmarkId::new("nll_grad", n_per * 5),
            &n_per,
            |bench, _| {
                let mut grad = vec![0.0; theta.len()];
                bench.iter(|| {
                    black_box(LcmModel::nll_at(&xs, &task_of, &y, 5, 2, &theta, &mut grad))
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("fit", n_per * 5), &n_per, |bench, _| {
            let opts = LcmFitOptions {
                n_starts: 1,
                ..Default::default()
            };
            bench.iter(|| black_box(LcmModel::fit(&xs, &task_of, &y, 5, &opts)))
        });
    }
    g.finish();
}

/// Multi-dimensional two-task data matching the hot-path acceptance
/// configuration (n points, dim 4, 2 tasks).
fn hot_path_data(n: usize, dim: usize, tasks: usize) -> (Vec<Vec<f64>>, Vec<usize>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(9);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let task_of: Vec<usize> = (0..n).map(|i| i % tasks).collect();
    let y: Vec<f64> = xs
        .iter()
        .zip(&task_of)
        .map(|(x, &t)| (x[0] * 5.0).sin() + x[1] + 0.2 * t as f64)
        .collect();
    (xs, task_of, y)
}

fn hot_path_theta(dim: usize, tasks: usize) -> Vec<f64> {
    gptune::gp::LcmHyperparams {
        q: 2,
        n_tasks: tasks,
        dim,
        lengthscales: vec![vec![0.4; dim], vec![0.8; dim]],
        a: vec![vec![0.6; tasks], vec![0.3; tasks]],
        b: vec![vec![0.02; tasks]; 2],
        d: vec![0.05; tasks],
    }
    .pack()
}

/// Distance-cached likelihood vs the retained pre-refactor reference, and
/// batched prediction vs the per-point loop — the two hot-path claims of
/// the BLAS-3 refactor, at the same sizes `scripts/bench_perf.sh` records
/// into `BENCH_lcm.json`.
fn bench_lcm_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("lcm_hot_path");
    g.sample_size(10);
    let (dim, tasks) = (4usize, 2usize);
    for &n in &[64usize, 256] {
        let (xs, task_of, y) = hot_path_data(n, dim, tasks);
        let theta = hot_path_theta(dim, tasks);
        let mut grad = vec![0.0; theta.len()];
        g.bench_with_input(BenchmarkId::new("nll_grad_cached", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(LcmModel::nll_at(
                    &xs, &task_of, &y, tasks, 2, &theta, &mut grad,
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("nll_grad_reference", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(LcmModel::nll_at_reference(
                    &xs, &task_of, &y, tasks, 2, &theta, &mut grad,
                ))
            })
        });
    }

    let (xs, task_of, y) = hot_path_data(256, dim, tasks);
    let opts = LcmFitOptions {
        n_starts: 1,
        ..Default::default()
    };
    let model = LcmModel::fit(&xs, &task_of, &y, tasks, &opts);
    let mut rng = StdRng::seed_from_u64(17);
    let cands: Vec<Vec<f64>> = (0..512)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect();
    g.bench_function("predict_per_point_m512", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for cand in &cands {
                acc += black_box(model.predict(0, cand)).mean;
            }
            acc
        })
    });
    g.bench_function("predict_batch_m512", |bench| {
        bench.iter(|| black_box(model.predict_batch(0, &cands)))
    });
    g.finish();
}

fn bench_acquisition(c: &mut Criterion) {
    let mut g = c.benchmark_group("acquisition");
    g.bench_function("expected_improvement", |bench| {
        let p = Prediction {
            mean: 0.5,
            variance: 0.2,
        };
        bench.iter(|| black_box(expected_improvement(&p, 0.4)))
    });
    g.bench_function("pso_search_2d", |bench| {
        let opts = PsoOptions {
            particles: 30,
            iters: 30,
            ..Default::default()
        };
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut f = |x: &[f64]| (x[0] - 0.3).powi(2) + (x[1] - 0.6).powi(2);
            black_box(pso::minimize(&mut f, 2, &[], &opts, &mut rng))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_cholesky,
    bench_lcm,
    bench_lcm_hot_path,
    bench_acquisition
);
criterion_main!(benches);
