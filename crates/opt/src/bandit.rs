//! Sliding-window AUC multi-armed bandit.
//!
//! OpenTuner's meta-technique (paper Sec. 5) "allocates and distributes the
//! function evaluations over a collection of optimization methods in
//! multiple arms in order to adaptively select the best performing method".
//! The concrete algorithm is Ansel et al.'s area-under-curve credit
//! assignment over a sliding window of improvement outcomes, plus an
//! exploration bonus `C·sqrt(2·ln t / n_arm)`.

/// AUC bandit over a fixed set of arms.
#[derive(Debug, Clone)]
pub struct AucBandit {
    window: usize,
    c: f64,
    /// Per-arm sliding window of outcomes (true = proposal improved best).
    history: Vec<Vec<bool>>,
    /// Per-arm total use count.
    uses: Vec<usize>,
    /// Total decisions made.
    t: usize,
}

impl AucBandit {
    /// Creates a bandit over `arms` arms with the given sliding-window size
    /// and exploration constant (OpenTuner defaults: window 500, C = 0.05).
    pub fn new(arms: usize, window: usize, c: f64) -> Self {
        assert!(arms > 0, "AucBandit: need at least one arm");
        AucBandit {
            window: window.max(1),
            c,
            history: vec![Vec::new(); arms],
            uses: vec![0; arms],
            t: 0,
        }
    }

    /// Number of arms.
    pub fn arms(&self) -> usize {
        self.history.len()
    }

    /// Selects the next arm: any never-used arm first (round-robin), then
    /// highest AUC + exploration score.
    pub fn select(&mut self) -> usize {
        self.t += 1;
        if let Some(unused) = self.uses.iter().position(|&u| u == 0) {
            return unused;
        }
        let lnt = (self.t as f64).ln().max(0.0);
        let (best, _) = (0..self.arms())
            .map(|a| {
                let exploit = self.auc(a);
                let explore = self.c * (2.0 * lnt / self.uses[a] as f64).sqrt();
                (a, exploit + explore)
            })
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .unwrap();
        best
    }

    /// Records the outcome of using `arm` (`improved` = the proposal beat
    /// the incumbent best).
    pub fn reward(&mut self, arm: usize, improved: bool) {
        self.uses[arm] += 1;
        let h = &mut self.history[arm];
        h.push(improved);
        if h.len() > self.window {
            h.remove(0);
        }
    }

    /// Area-under-curve credit: recent improvements weigh more
    /// (weight i+1 for the i-th oldest outcome), normalised to [0,1].
    fn auc(&self, arm: usize) -> f64 {
        let h = &self.history[arm];
        if h.is_empty() {
            return 0.0;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &ok) in h.iter().enumerate() {
            let w = (i + 1) as f64;
            den += w;
            if ok {
                num += w;
            }
        }
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explores_all_arms_first() {
        let mut b = AucBandit::new(3, 100, 0.05);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            let a = b.select();
            seen.insert(a);
            b.reward(a, false);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn converges_to_winning_arm() {
        let mut b = AucBandit::new(3, 50, 0.05);
        // Arm 1 always improves, others never.
        let mut picks = vec![0usize; 3];
        for _ in 0..200 {
            let a = b.select();
            picks[a] += 1;
            b.reward(a, a == 1);
        }
        assert!(picks[1] > 150, "picks = {picks:?}");
    }

    #[test]
    fn recency_weighting_adapts() {
        let mut b = AucBandit::new(2, 20, 0.0);
        // Arm 0 good early, then goes cold; arm 1 warms up.
        for i in 0..40 {
            let a = b.select();
            let improved = if i < 20 { a == 0 } else { a == 1 };
            b.reward(a, improved);
        }
        // After the switch, fresh selections should favour arm 1.
        let mut recent = vec![0usize; 2];
        for _ in 0..20 {
            let a = b.select();
            recent[a] += 1;
            b.reward(a, a == 1);
        }
        assert!(recent[1] > recent[0], "recent = {recent:?}");
    }

    #[test]
    fn window_bounds_history() {
        let mut b = AucBandit::new(1, 5, 0.05);
        for _ in 0..20 {
            b.reward(0, true);
        }
        assert_eq!(b.history[0].len(), 5);
    }
}
