#!/usr/bin/env bash
# Tier-1 gate: everything must build, pass tests, and be lint-clean.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# Chaos gate: MLA under injected crashes/hangs/transients must complete,
# resume deterministically, and skip journaled crashers.
cargo test -q --test chaos
cargo fmt --check
cargo clippy -- -D warnings
