//! Parallel runtime for GPTune-rs — the stand-in for GPTune's MPI-spawning
//! master/worker model (paper Sec. 4).
//!
//! In the reference implementation a single master process runs the GPTune
//! driver and dynamically spawns groups of MPI worker processes for three
//! jobs: objective-function evaluation, the modeling phase (parallel over
//! L-BFGS restarts, with a ScaLAPACK-parallel covariance factorization), and
//! the search phase (parallel over tasks). Here:
//!
//! * [`WorkerGroup`] reproduces the spawn/inter-communicator structure with
//!   OS threads and crossbeam channels (master keeps one endpoint, the
//!   worker group the other — the channel pair plays the role of the
//!   `SpawnedComm`/`ParentComm` inter-communicators of Fig. 1);
//! * [`with_pool`] runs a closure inside a rayon pool of a prescribed
//!   worker count, bounding the parallelism of the modeling phase exactly
//!   like a `-np N` spawn would;
//! * [`stats`] collects the per-phase time breakdown that GPTune prints
//!   after "stats:" in its runlogs (used by Table 3 and Fig. 3);
//! * [`collectives`] offers the MPI collective vocabulary (broadcast,
//!   scatter/gather, reduce, allreduce) over a worker group, so tuner code
//!   reads like its MPI counterpart;
//! * [`fault`] is the fault model: every job is panic-isolated, deadlines
//!   are enforced by a master-side watchdog, transient faults retry with
//!   exponential backoff, and [`WorkerGroup::try_map`] surfaces it all as
//!   typed [`EvalOutcome`]s — real tuned applications crash, hang, and
//!   OOM, and a dead measurement must never kill the tuner.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod collectives;
pub mod executor;
pub mod fault;
pub mod stats;

pub use collectives::{broadcast_map, map_allreduce, map_reduce, scatter_gather};
pub use executor::{with_pool, SharedCounter, WorkerGroup};
pub use fault::{EvalOutcome, FailureKind, FaultPolicy, GroupClosed, JobStatus, TransientSignal};
pub use stats::{Phase, PhaseStats, PhaseTimer};
