//! JSONL sink: one JSON object per line, hand-serialized (std-only).
//!
//! Line shapes (`type` discriminates):
//!
//! ```text
//! {"type":"track","id":3,"name":"gptune-worker-0"}
//! {"type":"event","name":"gptune.runtime.job","ph":"span","ts_ns":12,"dur_ns":900,"track":3,"args":{"job":0}}
//! {"type":"event","name":"gptune.runtime.retry","ph":"instant","ts_ns":40,"track":3,"args":{}}
//! {"type":"metric","metric":"counter","name":"gptune.core.evals","value":32}
//! {"type":"metric","metric":"gauge","name":"...","value":1.5}
//! {"type":"metric","metric":"histogram","name":"...","count":5,"sum":1007,"buckets":[[0,1],[2,2]]}
//! {"type":"meta","dropped":0}
//! ```
//!
//! `examples/trace_tool.rs` consumes this format and re-exports it to the
//! Chrome trace-event format via [`crate::chrome`].

use crate::tracer::{Event, EventKind, Field, TraceData};
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes a field value as a JSON value. Non-finite floats become
/// `null` (JSON has no NaN/Inf).
pub(crate) fn field_json(f: &Field) -> String {
    match f {
        Field::I64(v) => v.to_string(),
        Field::U64(v) => v.to_string(),
        Field::F64(v) if v.is_finite() => {
            let mut s = format!("{v}");
            if !s.contains('.') && !s.contains('e') {
                s.push_str(".0");
            }
            s
        }
        Field::F64(_) => "null".to_string(),
        Field::Bool(v) => v.to_string(),
        Field::Str(v) => format!("\"{}\"", esc(v)),
    }
}

/// `{"k":v,...}` for an event's fields.
pub(crate) fn args_json(fields: &[(crate::tracer::Name, Field)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", esc(k), field_json(v));
    }
    out.push('}');
    out
}

fn event_line(ev: &Event) -> String {
    let mut line = format!("{{\"type\":\"event\",\"name\":\"{}\"", esc(&ev.name));
    match ev.kind {
        EventKind::Span { dur_ns } => {
            let _ = write!(
                line,
                ",\"ph\":\"span\",\"ts_ns\":{},\"dur_ns\":{dur_ns}",
                ev.ts_ns
            );
        }
        EventKind::Instant => {
            let _ = write!(line, ",\"ph\":\"instant\",\"ts_ns\":{}", ev.ts_ns);
        }
    }
    let _ = write!(
        line,
        ",\"track\":{},\"args\":{}}}",
        ev.track,
        args_json(&ev.fields)
    );
    line
}

/// Serializes a full [`TraceData`] to JSONL.
pub fn to_string(data: &TraceData) -> String {
    let mut out = String::new();
    for (id, name) in &data.tracks {
        let _ = writeln!(
            out,
            "{{\"type\":\"track\",\"id\":{id},\"name\":\"{}\"}}",
            esc(name)
        );
    }
    for ev in &data.events {
        out.push_str(&event_line(ev));
        out.push('\n');
    }
    for (name, v) in &data.metrics.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"metric\",\"metric\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
            esc(name)
        );
    }
    for (name, v) in &data.metrics.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"metric\",\"metric\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            esc(name),
            field_json(&Field::F64(*v))
        );
    }
    for (name, h) in &data.metrics.histograms {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|(i, n)| format!("[{i},{n}]"))
            .collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"metric\",\"metric\":\"histogram\",\"name\":\"{}\",\
             \"count\":{},\"sum\":{},\"buckets\":[{}]}}",
            esc(name),
            h.count,
            h.sum,
            buckets.join(",")
        );
    }
    let _ = writeln!(out, "{{\"type\":\"meta\",\"dropped\":{}}}", data.dropped);
    out
}

/// Writes a full [`TraceData`] to `w` in JSONL form.
pub fn write<W: std::io::Write>(w: &mut W, data: &TraceData) -> std::io::Result<()> {
    w.write_all(to_string(data).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use std::time::Duration;

    #[test]
    fn jsonl_contains_tracks_events_metrics_meta() {
        let t = Tracer::ring(16);
        t.record_span(
            "gptune.test.op",
            10,
            Duration::from_nanos(500),
            vec![("n".into(), Field::U64(3)), ("tag".into(), "a\"b".into())],
        );
        t.instant("gptune.test.mark").emit();
        t.counter("gptune.test.count").add(2);
        t.gauge("gptune.test.level").set(0.5);
        t.histogram("gptune.test.lat").record(7);
        let out = to_string(&t.drain());
        assert!(out.contains("\"type\":\"track\""));
        assert!(out.contains("\"ph\":\"span\",\"ts_ns\":10,\"dur_ns\":500"));
        assert!(out.contains("\"args\":{\"n\":3,\"tag\":\"a\\\"b\"}"));
        assert!(out.contains("\"ph\":\"instant\""));
        assert!(out.contains("\"metric\":\"counter\",\"name\":\"gptune.test.count\",\"value\":2"));
        assert!(out.contains("\"metric\":\"gauge\""));
        assert!(out.contains("\"metric\":\"histogram\""));
        assert!(out.contains("\"buckets\":[[3,1]]"));
        assert!(out.ends_with("{\"type\":\"meta\",\"dropped\":0}\n"));
    }

    #[test]
    fn escapes_and_nonfinite_floats() {
        assert_eq!(esc("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(field_json(&Field::F64(f64::NAN)), "null");
        assert_eq!(field_json(&Field::F64(2.0)), "2.0");
        assert_eq!(field_json(&Field::I64(-3)), "-3");
    }
}
