//! Tree Parzen Estimator (TPE).
//!
//! HpBandSter's Bayesian-optimization component selects the next
//! configuration by kernel-density estimation instead of optimizing EI
//! directly (paper Sec. 5: "it uses a kernel density estimator … to select a
//! new configuration to evaluate, instead of directly optimizing EI as
//! GPTune does. This is faster, but less accurate."). This module implements
//! that estimator: observations are split into a *good* and a *bad* set at a
//! quantile `γ`; per-dimension Gaussian KDEs `l(x)` (good) and `g(x)` (bad)
//! are built; candidates are drawn from `l` and ranked by `l(x)/g(x)`.

use rand::Rng;

/// TPE configuration.
#[derive(Debug, Clone)]
pub struct TpeOptions {
    /// Quantile of observations treated as "good" (HpBandSter default ~0.15,
    /// with a floor on the set size).
    pub gamma: f64,
    /// Minimum number of good observations before the model activates.
    pub min_good: usize,
    /// Number of candidates drawn from `l` per proposal.
    pub candidates: usize,
    /// Bandwidth floor (unit-box units) to avoid degenerate spikes.
    pub min_bandwidth: f64,
}

impl Default for TpeOptions {
    fn default() -> Self {
        TpeOptions {
            gamma: 0.25,
            min_good: 3,
            candidates: 24,
            min_bandwidth: 0.03,
        }
    }
}

/// Proposes the next point in `[0,1]^dim` given evaluation history.
///
/// Falls back to uniform random when the history is too small for a useful
/// split (matching HpBandSter's `min_points_in_model` behaviour).
pub fn propose(
    xs: &[Vec<f64>],
    ys: &[f64],
    dim: usize,
    opts: &TpeOptions,
    rng: &mut impl Rng,
) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len());
    let usable: Vec<usize> = (0..ys.len()).filter(|&i| ys[i].is_finite()).collect();
    if usable.len() < opts.min_good + 2 {
        return (0..dim).map(|_| rng.gen::<f64>()).collect();
    }

    // Split at the γ quantile (at least `min_good` in the good set).
    let mut order = usable.clone();
    order.sort_by(|&a, &b| ys[a].total_cmp(&ys[b]));
    let n_good = ((opts.gamma * order.len() as f64).ceil() as usize)
        .max(opts.min_good)
        .min(order.len() - 1);
    let good: Vec<&Vec<f64>> = order[..n_good].iter().map(|&i| &xs[i]).collect();
    let bad: Vec<&Vec<f64>> = order[n_good..].iter().map(|&i| &xs[i]).collect();

    let bw_good = bandwidths(&good, dim, opts.min_bandwidth);
    let bw_bad = bandwidths(&bad, dim, opts.min_bandwidth);

    // Draw candidates from l(x): pick a good point, jitter per-dimension.
    let mut best: Option<(f64, Vec<f64>)> = None;
    for _ in 0..opts.candidates.max(1) {
        let base = good[rng.gen_range(0..good.len())];
        let cand: Vec<f64> = (0..dim)
            .map(|d| (base[d] + crate::ga::gaussian(rng) * bw_good[d]).clamp(0.0, 1.0))
            .collect();
        let score = log_kde(&cand, &good, &bw_good) - log_kde(&cand, &bad, &bw_bad);
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, cand));
        }
    }
    best.expect("candidates >= 1").1
}

/// Per-dimension Scott's-rule bandwidths with a floor.
fn bandwidths(points: &[&Vec<f64>], dim: usize, floor: f64) -> Vec<f64> {
    let n = points.len() as f64;
    let factor = n.powf(-1.0 / (dim as f64 + 4.0));
    (0..dim)
        .map(|d| {
            let mean: f64 = points.iter().map(|p| p[d]).sum::<f64>() / n;
            let var: f64 = points.iter().map(|p| (p[d] - mean).powi(2)).sum::<f64>() / n;
            (var.sqrt() * factor).max(floor)
        })
        .collect()
}

/// Log of a product-form Gaussian KDE at `x`.
fn log_kde(x: &[f64], points: &[&Vec<f64>], bw: &[f64]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    // log( (1/n) Σ_k Π_d N(x_d; p_kd, bw_d) ) computed via log-sum-exp.
    let logs: Vec<f64> = points
        .iter()
        .map(|p| {
            x.iter()
                .zip(p.iter())
                .zip(bw)
                .map(|((xi, pi), b)| {
                    let z = (xi - pi) / b;
                    -0.5 * z * z - b.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
                })
                .sum::<f64>()
        })
        .collect();
    let m = logs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    if gptune_la::ord::feq(m, f64::NEG_INFINITY) {
        return f64::NEG_INFINITY;
    }
    m + (logs.iter().map(|l| (l - m).exp()).sum::<f64>() / points.len() as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_history_falls_back_to_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = propose(&[vec![0.5]], &[1.0], 1, &TpeOptions::default(), &mut rng);
        assert_eq!(p.len(), 1);
        assert!((0.0..=1.0).contains(&p[0]));
    }

    #[test]
    fn proposes_near_good_region() {
        let mut rng = StdRng::seed_from_u64(2);
        // Good points cluster at 0.2; bad at 0.8.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            let x = 0.2 + 0.01 * i as f64;
            xs.push(vec![x]);
            ys.push(0.0 + 0.001 * i as f64);
        }
        for i in 0..10 {
            let x = 0.8 + 0.01 * i as f64;
            xs.push(vec![x]);
            ys.push(10.0 + 0.001 * i as f64);
        }
        let mut hits = 0;
        for _ in 0..20 {
            let p = propose(&xs, &ys, 1, &TpeOptions::default(), &mut rng);
            if p[0] < 0.5 {
                hits += 1;
            }
        }
        assert!(hits >= 18, "only {hits}/20 proposals near the good cluster");
    }

    #[test]
    fn optimizes_quadratic_in_loop() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = |x: &[f64]| (x[0] - 0.62).powi(2) + (x[1] - 0.31).powi(2);
        let mut xs: Vec<Vec<f64>> = (0..5)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| f(x)).collect();
        for _ in 0..60 {
            let p = propose(&xs, &ys, 2, &TpeOptions::default(), &mut rng);
            ys.push(f(&p));
            xs.push(p);
        }
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(best < 5e-3, "best {best}");
    }

    #[test]
    fn infinite_values_ignored() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs = vec![
            vec![0.1],
            vec![0.2],
            vec![0.3],
            vec![0.9],
            vec![0.95],
            vec![0.85],
            vec![0.5],
        ];
        let ys = vec![f64::INFINITY, 0.1, 0.2, 5.0, 6.0, 7.0, f64::NAN];
        let p = propose(&xs, &ys, 1, &TpeOptions::default(), &mut rng);
        assert!(p[0].is_finite());
    }

    #[test]
    fn kde_prefers_density_peak() {
        let pts_owned = [vec![0.3], vec![0.31], vec![0.29]];
        let pts: Vec<&Vec<f64>> = pts_owned.iter().collect();
        let bw = vec![0.05];
        assert!(log_kde(&[0.3], &pts, &bw) > log_kde(&[0.7], &pts, &bw));
    }
}
