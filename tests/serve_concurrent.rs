//! Concurrent integration tests for the gptune-serve subsystem.
//!
//! The contracts under test:
//!
//! * N client threads hammering one server lose no reports and every
//!   client observes its own session's history growing monotonically;
//! * the final history is bit-identical to a serialized replay of the
//!   same reports through an in-process [`TunerSession`] — concurrency
//!   must not change *what* is stored, only when;
//! * killing the server mid-burst while clients journal to write-ahead
//!   caches loses nothing: a replacement server rebuilt from WAL replays
//!   holds every report that was ever journaled.

use gptune::core::TunerSession;
use gptune::serve::{
    serve, serving_mla_options, ProblemSpec, ServeClient, ServeOptions, SessionOptions,
};
use gptune::space::{Param, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn tmp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gptune_it_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn spec(name: &str) -> ProblemSpec {
    ProblemSpec {
        name: name.into(),
        task_params: vec![Param::real("t", 0.0, 1.0)],
        tuning_params: vec![Param::real("x", 0.0, 1.0), Param::real("y", 0.0, 1.0)],
        tasks: vec![vec![Value::Real(0.2)], vec![Value::Real(0.8)]],
        n_objectives: 1,
    }
}

/// A deterministic fake measurement, so serialized replays produce the
/// exact same outputs as the concurrent run.
fn measure(cfg: &[Value], task: usize) -> f64 {
    let x = match cfg.first() {
        Some(Value::Real(x)) => *x,
        _ => 0.0,
    };
    (x * 7.0).sin() + task as f64
}

#[test]
fn concurrent_clients_lose_no_reports_and_grow_monotonically() {
    const CLIENTS: usize = 8;
    const REPORTS_EACH: usize = 6;
    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: CLIENTS,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let lost = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let lost = Arc::clone(&lost);
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                let tenant = format!("tenant-{c}");
                client
                    .open_session(
                        &tenant,
                        &spec("mono"),
                        &SessionOptions {
                            seed: c as u64,
                            n_initial: Some(2),
                        },
                    )
                    .unwrap();
                let mut prev = 0usize;
                for r in 0..REPORTS_EACH {
                    let task = r % 2;
                    let cfg = client.suggest(task).unwrap();
                    let y = measure(&cfg, task);
                    if client.report(task, &cfg, &[y]).is_err() {
                        lost.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    // Monotone growth: this client's own history can only
                    // get longer (sessions are per-tenant, so no other
                    // thread appends to it).
                    let n = client.history().unwrap().len();
                    assert!(n > prev, "history shrank: {prev} -> {n}");
                    prev = n;
                }
                assert_eq!(prev, REPORTS_EACH, "tenant {tenant} lost reports");
            });
        }
    });

    assert_eq!(lost.load(Ordering::Relaxed), 0, "no report may error");
    assert_eq!(server.n_sessions(), CLIENTS);
    server.shutdown();
}

#[test]
fn concurrent_history_matches_serialized_replay_bit_for_bit() {
    // One shared tenant+problem: many threads race suggest/report into
    // the *same* session. The final history must be a permutation-free
    // superset check: replaying the exact (task, config, outputs) triples
    // through a fresh in-process TunerSession in sorted order must yield
    // the identical sorted history, bit for bit.
    const THREADS: usize = 6;
    const REPORTS_EACH: usize = 4;
    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: THREADS + 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let opts = SessionOptions {
        seed: 42,
        n_initial: Some(3),
    };

    std::thread::scope(|scope| {
        for th in 0..THREADS {
            let opts = opts.clone();
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                client.open_session("shared", &spec("race"), &opts).unwrap();
                for r in 0..REPORTS_EACH {
                    let task = (th + r) % 2;
                    let cfg = client.suggest(task).unwrap();
                    let y = measure(&cfg, task);
                    // Racing suggests may collide on an identical initial
                    // config; the duplicate-absorbing report keeps that a
                    // success, so no thread ever errors here.
                    client.report(task, &cfg, &[y]).unwrap();
                }
            });
        }
    });

    let mut client = ServeClient::connect(addr).unwrap();
    client.open_session("shared", &spec("race"), &opts).unwrap();
    let mut concurrent = client.history().unwrap();
    assert!(!concurrent.is_empty());
    // Duplicate-collapsed: every stored (task, config) pair is unique.
    {
        let mut keys: Vec<String> = concurrent
            .iter()
            .map(|(t, c, _)| format!("{t}:{c:?}"))
            .collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "server stored a duplicate config");
    }

    // Serialized replay through the in-process session type.
    let problem = spec("race").to_problem().unwrap();
    let mut replay = TunerSession::new(
        problem,
        serving_mla_options(&opts, &ServeOptions::default()),
    );
    let sort_key = |(t, c, o): &(usize, Vec<Value>, Vec<f64>)| format!("{t}|{c:?}|{o:?}");
    concurrent.sort_by_key(sort_key);
    for (t, c, o) in &concurrent {
        replay.report(*t, c.clone(), o.clone()).unwrap();
    }
    let mut replayed: Vec<(usize, Vec<Value>, Vec<f64>)> = replay
        .history()
        .map(|(t, c, o)| (t, c.clone(), o.to_vec()))
        .collect();
    replayed.sort_by_key(sort_key);
    assert_eq!(
        concurrent, replayed,
        "concurrent history must equal the serialized replay bit-for-bit"
    );
    server.shutdown();
}

#[test]
fn kill_mid_burst_replays_from_wal_with_zero_lost_reports() {
    const CLIENTS: usize = 4;
    const REPORTS_EACH: usize = 10;
    let root = tmp_root("kill");
    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: CLIENTS,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Phase 1: journaled clients burst reports; the server dies while
    // they are mid-burst. Clients tolerate send errors — the WAL is the
    // source of truth.
    let mut server = Some(server);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let wal = root.join(format!("wal-{c}.jsonl"));
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).unwrap().with_wal(&wal);
                    let tenant = format!("tenant-{c}");
                    client
                        .open_session(&tenant, &spec("dur"), &SessionOptions::default())
                        .unwrap();
                    let mut journaled = 0usize;
                    for r in 0..REPORTS_EACH {
                        let cfg = vec![
                            Value::Real((c * REPORTS_EACH + r) as f64 / 64.0),
                            Value::Real(0.5),
                        ];
                        // Journaled regardless of whether the send lands.
                        journaled += 1;
                        let _ = client.report(r % 2, &cfg, &[r as f64]);
                    }
                    journaled
                })
            })
            .collect();
        // Kill the server while the bursts are in flight.
        std::thread::sleep(std::time::Duration::from_millis(2));
        server.take().unwrap().shutdown();
        let journaled: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(journaled, CLIENTS * REPORTS_EACH);
    });

    // Phase 2: replacement server; fresh clients replay their WALs.
    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: CLIENTS,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let mut recovered_total = 0usize;
    for c in 0..CLIENTS {
        let wal = root.join(format!("wal-{c}.jsonl"));
        let mut client = ServeClient::connect(server.local_addr())
            .unwrap()
            .with_wal(&wal);
        let tenant = format!("tenant-{c}");
        client
            .open_session(&tenant, &spec("dur"), &SessionOptions::default())
            .unwrap();
        let n = client.history().unwrap().len();
        assert_eq!(
            n, REPORTS_EACH,
            "tenant {tenant}: {n}/{REPORTS_EACH} reports after WAL replay"
        );
        recovered_total += n;
    }
    assert_eq!(recovered_total, CLIENTS * REPORTS_EACH, "zero lost reports");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
