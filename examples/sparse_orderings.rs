//! Why COLPERM matters: a fill-in study on the sparse substrate.
//!
//! SuperLU_DIST's biggest tuning lever (paper Table 5: `COLPERM` default 4,
//! time/memory optima at 2) is the fill-reducing ordering. This example
//! uses `gptune-sparse` to make that concrete: for PARSEC-like geometric
//! graphs and a 2-D grid, it computes the exact Cholesky fill and symbolic
//! flop counts under natural, reverse Cuthill–McKee, and minimum-degree
//! orderings — the quantities the SuperLU simulator's symbolic calibration
//! (`SuperluApp::new_with_symbolic`) feeds into the tuning landscape.
//!
//! Run with:
//! ```text
//! cargo run --release --example sparse_orderings
//! ```

use gptune::apps::{HpcApp, MachineModel, SuperluApp, PARSEC_MATRICES};
use gptune_sparse::{
    fill_count, minimum_degree, natural_order, reverse_cuthill_mckee, SparsePattern,
};

fn study(name: &str, pattern: &SparsePattern) {
    let orderings: [(&str, Vec<usize>); 3] = [
        ("natural", natural_order(pattern.n())),
        ("RCM", reverse_cuthill_mckee(pattern)),
        ("min-degree", minimum_degree(pattern)),
    ];
    println!("\n{name}: n = {}, nnz = {}", pattern.n(), pattern.nnz());
    println!(
        "  {:<12} {:>12} {:>10} {:>14}",
        "ordering", "nnz(L)", "fill", "sym. flops"
    );
    for (label, perm) in &orderings {
        let s = fill_count(&pattern.permute(perm));
        println!(
            "  {:<12} {:>12} {:>9.1}x {:>14.3e}",
            label, s.nnz_l, s.fill_ratio, s.flops
        );
    }
}

fn main() {
    println!("Fill-in under different orderings (the physics behind COLPERM tuning)");

    // A PARSEC-like electronic-structure graph (atoms in a box).
    let geo = SparsePattern::geometric(1200, 0.09, 42);
    study("geometric graph (PARSEC-like)", &geo);

    // A 2-D grid Laplacian (hypre-like structure).
    let grid = SparsePattern::grid2d(40, 40);
    study("40x40 grid Laplacian", &grid);

    // The calibrated SuperLU simulator built from these computations.
    println!("\nSymbolically calibrated SuperLU_DIST fill multipliers (relative to best):");
    let app = SuperluApp::new_with_symbolic(MachineModel::cori(8), 500);
    println!(
        "  {:<10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "matrix", "NATURAL", "MMD_ATA", "MMD_A+A", "COLAMD", "METIS"
    );
    for (i, m) in PARSEC_MATRICES.iter().enumerate() {
        println!(
            "  {:<10} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            m.name,
            app.fill(i, 0),
            app.fill(i, 1),
            app.fill(i, 2),
            app.fill(i, 3),
            app.fill(i, 4)
        );
    }
    let _ = app.n_objectives(); // (time, memory) — both driven by these fills
    println!("\nReading: natural ordering fills several times more than the fill-reducing");
    println!("orderings — which is exactly why tuning COLPERM moves both time and memory.");
}
