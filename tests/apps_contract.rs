//! Contract tests every simulated application must satisfy — the
//! guarantees the tuner relies on.

use gptune::apps::{
    AnalyticalApp, HpcApp, HypreApp, M3dc1App, MachineModel, NimrodApp, PdgeqrfApp, PdsyevxApp,
    SuperluApp,
};
use gptune::space::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn all_apps() -> Vec<Arc<dyn HpcApp>> {
    vec![
        Arc::new(AnalyticalApp::new(0.05)),
        Arc::new(PdgeqrfApp::new(MachineModel::cori(4), 20_000)),
        Arc::new(PdsyevxApp::new(MachineModel::cori(1), 8000)),
        Arc::new(SuperluApp::new(MachineModel::cori(8))),
        Arc::new(HypreApp::new(MachineModel::cori(1))),
        Arc::new(M3dc1App::new(MachineModel::cori(1))),
        Arc::new(NimrodApp::new(MachineModel::cori(6))),
    ]
}

fn sample_task(app: &dyn HpcApp, rng: &mut StdRng) -> Vec<gptune::space::Value> {
    sampling::sample_space(app.task_space(), 1, rng, 200)
        .into_iter()
        .next()
        .expect("task space must be samplable")
}

#[test]
fn feasible_configs_evaluate_finite_and_positive() {
    let mut rng = StdRng::seed_from_u64(1);
    for app in all_apps() {
        let task = sample_task(app.as_ref(), &mut rng);
        let configs = sampling::sample_space(app.tuning_space(), 10, &mut rng, 300);
        assert!(!configs.is_empty(), "{}: no feasible configs", app.name());
        for cfg in configs {
            let out = app.evaluate(&task, &cfg, 0);
            assert_eq!(out.len(), app.n_objectives(), "{}", app.name());
            for (k, v) in out.iter().enumerate() {
                assert!(
                    v.is_finite() && *v > 0.0,
                    "{}: objective {k} = {v} at {:?}",
                    app.name(),
                    cfg
                );
            }
        }
    }
}

#[test]
fn evaluation_is_reproducible_per_seed() {
    let mut rng = StdRng::seed_from_u64(2);
    for app in all_apps() {
        let task = sample_task(app.as_ref(), &mut rng);
        let cfg = sampling::sample_space(app.tuning_space(), 1, &mut rng, 300)
            .into_iter()
            .next()
            .unwrap();
        let a = app.evaluate(&task, &cfg, 42);
        let b = app.evaluate(&task, &cfg, 42);
        assert_eq!(a, b, "{}: same seed must reproduce", app.name());
    }
}

#[test]
fn default_configs_are_feasible() {
    for app in all_apps() {
        if let Some(d) = app.default_config() {
            assert!(
                app.tuning_space().is_valid(&d),
                "{}: default violates {:?}",
                app.name(),
                app.tuning_space().violated_constraints(&d)
            );
        }
    }
}

#[test]
fn defaults_are_beatable_by_search() {
    // The entire premise of autotuning: some sampled configuration beats
    // the default on at least one objective.
    // Real defaults can be near-optimal on some inputs, so check across
    // several tasks: at least one task must have tuning headroom.
    let mut rng = StdRng::seed_from_u64(3);
    for app in all_apps() {
        let Some(default) = app.default_config() else {
            continue;
        };
        let mut beaten_any = false;
        for _ in 0..3 {
            let task = sample_task(app.as_ref(), &mut rng);
            let d_out = app.evaluate(&task, &default, 0);
            let configs = sampling::sample_space(app.tuning_space(), 80, &mut rng, 300);
            if configs
                .iter()
                .any(|c| app.evaluate(&task, c, 0)[0] < d_out[0])
            {
                beaten_any = true;
                break;
            }
        }
        assert!(
            beaten_any,
            "{}: no sampled config beats the default on any task — nothing to tune",
            app.name()
        );
    }
}

#[test]
fn tuning_parameter_dimensions_match_paper_table2() {
    // Table 2's β column (PDGEQRF listed with its 4 independent tunables
    // per Table 1/Sec. 6.2; PDSYEVX with b_r = b_c collapsed).
    let checks: Vec<(Arc<dyn HpcApp>, usize)> = vec![
        (Arc::new(AnalyticalApp::new(0.0)), 1),
        (Arc::new(PdgeqrfApp::new(MachineModel::cori(1), 10_000)), 4),
        (Arc::new(PdsyevxApp::new(MachineModel::cori(1), 8000)), 3),
        (Arc::new(SuperluApp::new(MachineModel::cori(1))), 6),
        (Arc::new(HypreApp::new(MachineModel::cori(1))), 12),
        (Arc::new(M3dc1App::new(MachineModel::cori(1))), 5),
        (Arc::new(NimrodApp::new(MachineModel::cori(1))), 7),
    ];
    for (app, beta) in checks {
        assert_eq!(app.tuning_space().dim(), beta, "{}", app.name());
    }
}

#[test]
fn model_features_finite_where_advertised() {
    let mut rng = StdRng::seed_from_u64(4);
    let app = PdgeqrfApp::new(MachineModel::cori(4), 20_000);
    let task = sample_task(&app, &mut rng);
    for cfg in sampling::sample_space(app.tuning_space(), 10, &mut rng, 300) {
        let f = app.model_features(&task, &cfg).unwrap();
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|v| v.is_finite() && *v > 0.0));
    }
}

#[test]
fn infeasible_configs_rejected_with_infinity() {
    // Build a deliberately infeasible config per constrained app by
    // violating the grid constraint.
    use gptune::space::Value;
    let app = PdgeqrfApp::new(MachineModel::cori(2), 10_000);
    let bad = vec![
        Value::Int(64),
        Value::Int(64),
        Value::Int(4),
        Value::Int(32),
    ];
    let out = app.evaluate(&[Value::Int(4000), Value::Int(4000)], &bad, 0);
    assert!(out[0].is_infinite());
}
