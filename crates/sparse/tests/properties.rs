//! Property-based tests for the sparse symbolic-analysis substrate.

use gptune_sparse::{
    elimination_tree, fill_count, minimum_degree, natural_order, reverse_cuthill_mckee,
    SparsePattern,
};
use proptest::prelude::*;

/// Strategy: a random symmetric pattern on `n` vertices.
fn random_pattern(n: usize, max_edges: usize) -> impl Strategy<Value = SparsePattern> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges)
        .prop_map(move |edges| SparsePattern::from_edges(n, &edges))
}

/// Brute-force fill by explicit elimination.
fn brute_force_nnz_l(pattern: &SparsePattern) -> usize {
    let n = pattern.n();
    let mut adj: Vec<std::collections::BTreeSet<usize>> = (0..n)
        .map(|i| pattern.neighbors(i).iter().copied().collect())
        .collect();
    let mut nnz_l = n;
    for v in 0..n {
        let later: Vec<usize> = adj[v].iter().copied().filter(|&u| u > v).collect();
        nnz_l += later.len();
        for (ai, &a) in later.iter().enumerate() {
            for &b in &later[ai + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
    }
    nnz_l
}

fn is_permutation(p: &[usize], n: usize) -> bool {
    let mut seen = vec![false; n];
    p.len() == n
        && p.iter().all(|&v| {
            if v < n && !seen[v] {
                seen[v] = true;
                true
            } else {
                false
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fill_count_matches_brute_force(p in random_pattern(14, 40)) {
        prop_assert_eq!(fill_count(&p).nnz_l, brute_force_nnz_l(&p));
    }

    #[test]
    fn permutation_preserves_nnz(p in random_pattern(12, 30), seed in 0u64..100) {
        // A deterministic shuffle from the seed.
        let n = p.n();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut s = seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let q = p.permute(&perm);
        prop_assert_eq!(q.nnz(), p.nnz());
        // Fill of the identity permutation equals the original fill.
        prop_assert_eq!(
            fill_count(&p.permute(&natural_order(n))).nnz_l,
            fill_count(&p).nnz_l
        );
    }

    #[test]
    fn etree_parents_point_upward(p in random_pattern(15, 40)) {
        let t = elimination_tree(&p);
        for (v, &par) in t.iter().enumerate() {
            if par != usize::MAX {
                prop_assert!(par > v, "parent {par} not above {v}");
            }
        }
    }

    #[test]
    fn orderings_are_permutations(p in random_pattern(16, 40)) {
        prop_assert!(is_permutation(&reverse_cuthill_mckee(&p), p.n()));
        prop_assert!(is_permutation(&minimum_degree(&p), p.n()));
    }

    #[test]
    fn fill_never_below_original(p in random_pattern(12, 30)) {
        // nnz(L + Lᵀ) ≥ nnz(A): elimination only adds entries.
        let s = fill_count(&p);
        prop_assert!(s.fill_ratio >= 1.0 - 1e-12);
        prop_assert!(s.nnz_l >= p.n());
    }

    #[test]
    fn minimum_degree_no_worse_than_natural_on_average(seed in 0u64..30) {
        // On geometric graphs MD should essentially always beat natural.
        let p = SparsePattern::geometric(120, 0.2, seed);
        let nat = fill_count(&p.permute(&natural_order(p.n()))).nnz_l;
        let md = fill_count(&p.permute(&minimum_degree(&p))).nnz_l;
        prop_assert!(md <= nat, "md {md} vs natural {nat}");
    }
}
